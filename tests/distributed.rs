//! Distributed-simulation integration tests: machine-count and
//! storage-mode sweeps must never change the answer, and the virtual-time
//! accounting must follow the §5 design.

use ceci::distributed::{run_distributed, ClusterConfig, CostModel, StorageMode};
use ceci::prelude::*;
use ceci_graph::generators::{attach_pendants, kronecker_default};

fn data() -> Graph {
    let core = kronecker_default(9, 6, 42);
    attach_pendants(&core, 400, 43)
}

fn expected(graph: &Graph, plan: &QueryPlan) -> u64 {
    let ceci = Ceci::build(graph, plan);
    ceci::core::count_embeddings(graph, plan, &ceci)
}

#[test]
fn counts_invariant_over_cluster_shape() {
    let graph = data();
    for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
        let plan = QueryPlan::new(q.build(), &graph);
        let want = expected(&graph, &plan);
        assert!(want > 0);
        for machines in [1usize, 2, 4, 8] {
            for threads in [1usize, 2] {
                for storage in [StorageMode::Replicated, StorageMode::Shared] {
                    let result = run_distributed(
                        &graph,
                        &plan,
                        &ClusterConfig {
                            machines,
                            threads_per_machine: threads,
                            storage,
                            ..Default::default()
                        },
                    );
                    assert_eq!(
                        result.total_embeddings,
                        want,
                        "{} machines={machines} threads={threads} {storage:?}",
                        q.name()
                    );
                }
            }
        }
    }
}

#[test]
fn work_stealing_rebalances_imbalanced_assignments() {
    // Jaccard colocation + skew can leave one machine with most clusters;
    // with stealing enabled, other machines must pick up work.
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let result = run_distributed(
        &graph,
        &plan,
        &ClusterConfig {
            machines: 4,
            threads_per_machine: 1,
            work_stealing: true,
            ..Default::default()
        },
    );
    let processed: Vec<usize> = result
        .reports
        .iter()
        .map(|r| r.processed_clusters)
        .collect();
    // Every machine did something (the assignment spreads pivots, stealing
    // fills any gap).
    assert!(
        processed.iter().all(|&p| p > 0),
        "processed = {processed:?}"
    );
}

#[test]
fn io_charges_scale_with_cost_model() {
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let cheap = run_distributed(
        &graph,
        &plan,
        &ClusterConfig {
            machines: 2,
            storage: StorageMode::Shared,
            costs: CostModel {
                per_entry_io: std::time::Duration::from_nanos(10),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let pricey = run_distributed(
        &graph,
        &plan,
        &ClusterConfig {
            machines: 2,
            storage: StorageMode::Shared,
            costs: CostModel {
                per_entry_io: std::time::Duration::from_nanos(1000),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let (io_cheap, _, _) = cheap.build_breakdown();
    let (io_pricey, _, _) = pricey.build_breakdown();
    assert!(io_pricey > io_cheap * 10);
}

#[test]
fn makespan_includes_virtual_time() {
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let result = run_distributed(
        &graph,
        &plan,
        &ClusterConfig {
            machines: 2,
            storage: StorageMode::Shared,
            ..Default::default()
        },
    );
    for report in &result.reports {
        let modeled = report.modeled_time(4);
        assert!(modeled >= report.io_virtual);
        assert!(modeled >= report.comm_virtual);
    }
    assert!(result.makespan > std::time::Duration::ZERO);
}

#[test]
fn partition_respects_machine_count() {
    use ceci::distributed::distribute_pivots;
    let graph = data();
    let pivots: Vec<VertexId> = graph.vertices().collect();
    for machines in [1usize, 3, 7] {
        let p = distribute_pivots(
            &graph,
            &pivots,
            &ClusterConfig {
                machines,
                ..Default::default()
            },
        );
        assert_eq!(p.assignment.len(), machines);
        let total: usize = p.assignment.iter().map(|a| a.len()).sum();
        assert_eq!(total, pivots.len());
    }
}
