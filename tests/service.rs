//! Integration tests for `ceci-serve`: a real server on a loopback
//! ephemeral port, exercised over TCP through the real client.
//!
//! Covers the acceptance criteria of the serving layer: correct counts vs
//! direct enumeration, LIMIT, index-cache hits on repeated templates,
//! DEADLINE returning partial counts in bounded time, BUSY under queue
//! overflow, and 8 concurrent clients sustained without error.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ceci_core::{count_embeddings, Ceci};
use ceci_graph::extract::extract_query;
use ceci_graph::generators::{erdos_renyi, inject_random_labels};
use ceci_graph::io;
use ceci_graph::Graph;
use ceci_query::{QueryGraph, QueryPlan};
use ceci_service::{
    run_load, start_with_state, Client, LoadConfig, ServeConfig, ServerHandle, ServerState,
};

/// A per-test scratch directory under the target-adjacent temp dir.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("ceci-service-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write_graph(&self, name: &str, graph: &Graph) -> String {
        let path = self.0.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        io::write_labeled(graph, &mut f).unwrap();
        path.display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn small_graph() -> Graph {
    inject_random_labels(&erdos_renyi(300, 900, 11), 3, 12)
}

fn query_from(graph: &Graph, size: usize, seed: u64) -> Graph {
    extract_query(graph, size, seed, 50)
        .expect("extractable query")
        .pattern
}

fn direct_count(graph: &Graph, pattern: &Graph) -> u64 {
    let query = QueryGraph::from_graph(pattern).unwrap();
    let plan = QueryPlan::new(query, graph);
    let ceci = Ceci::build(graph, &plan);
    count_embeddings(graph, &plan, &ceci)
}

fn serve(config: ServeConfig) -> (ServerHandle, Arc<ServerState>) {
    let state = Arc::new(ServerState::new(config));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");
    (handle, state)
}

#[test]
fn load_match_agrees_with_direct_enumeration() {
    let scratch = Scratch::new("basic");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 3);
    let expected = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let resp = client.request("PING").unwrap();
    assert_eq!(resp.terminal, "OK PONG");

    let resp = client.request(&format!("LOAD g {graph_path}")).unwrap();
    assert!(resp.is_ok(), "LOAD failed: {}", resp.terminal);
    assert_eq!(
        resp.field_u64("vertices"),
        Some(graph.num_vertices() as u64)
    );
    assert_eq!(resp.field_u64("edges"), Some(graph.num_edges() as u64));

    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "MATCH failed: {}", resp.terminal);
    assert_eq!(resp.field_u64("count"), Some(expected));
    assert_eq!(resp.field("status"), Some("OK"));
    assert_eq!(resp.field("cache"), Some("MISS"));

    handle.shutdown();
}

#[test]
fn limit_truncates_and_repeat_hits_cache() {
    let scratch = Scratch::new("cache");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 5);
    let expected = direct_count(&graph, &pattern);
    assert!(expected > 1, "need a query with multiple embeddings");
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Cold: builds and caches the index.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field("cache"), Some("MISS"));
    // Warm, with LIMIT: same template skips the build and truncates.
    let resp = client
        .request(&format!("MATCH g {query_path} LIMIT 1"))
        .unwrap();
    assert!(resp.is_ok());
    assert_eq!(resp.field_u64("count"), Some(1));
    assert_eq!(resp.field("cache"), Some("HIT"));
    assert_eq!(
        resp.field_u64("build_us"),
        Some(0),
        "cache hit must skip build"
    );

    // STATS reflects it.
    let resp = client.request("STATS").unwrap();
    assert_eq!(resp.terminal, "OK STATS");
    let stat = |key: &str| -> u64 {
        resp.payload
            .iter()
            .find_map(|l| l.strip_prefix(&format!("STAT {key} ")))
            .unwrap_or_else(|| panic!("missing STAT {key} in {:?}", resp.payload))
            .parse()
            .unwrap()
    };
    assert!(stat("cache_hits") >= 1);
    assert_eq!(stat("cache_misses"), 1);
    assert_eq!(stat("graphs_loaded"), 1);
    assert!(stat("cache_bytes") > 0);
    // Exactly one cache-miss build happened, and its filter/refine phase
    // split is surfaced (one observation each; phase times can round to 0 µs
    // on tiny graphs, so only the counts and p99 presence are asserted).
    assert_eq!(stat("build_latency_count"), 1);
    assert!(stat("build_latency_p50_us") <= stat("build_latency_p99_us"));
    // Quantiles are midpoint-interpolated bucket estimates: with power-of-
    // two buckets the estimate is within 2x of any observation, so the
    // exact mean is bounded by twice the p99 estimate (+2 for bucket 0).
    assert!(stat("build_filter_mean_us") <= 2 * stat("build_filter_p99_us") + 2);
    assert!(stat("build_refine_mean_us") <= 2 * stat("build_refine_p99_us") + 2);
    assert_eq!(
        state
            .metrics
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed),
        stat("cache_hits")
    );

    handle.shutdown();
}

#[test]
fn automorphic_query_presentations_share_one_cache_entry() {
    let scratch = Scratch::new("iso");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 9);
    // Re-present the same pattern with vertices renumbered in reverse.
    let n = pattern.num_vertices();
    let relabel: Vec<u32> = (0..n as u32).rev().collect();
    let labels: Vec<_> = (0..n)
        .map(|i| {
            let orig = relabel.iter().position(|&r| r as usize == i).unwrap();
            pattern.labels(ceci_graph::VertexId(orig as u32)).clone()
        })
        .collect();
    let mut edges = Vec::new();
    for v in pattern.vertices() {
        for &nb in pattern.neighbors(v) {
            if v < nb {
                edges.push((
                    ceci_graph::VertexId(relabel[v.index()]),
                    ceci_graph::VertexId(relabel[nb.index()]),
                ));
            }
        }
    }
    let renumbered = Graph::new(labels, &edges, false);

    let graph_path = scratch.write_graph("data.graph", &graph);
    let q1 = scratch.write_graph("q1.graph", &pattern);
    let q2 = scratch.write_graph("q2.graph", &renumbered);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let r1 = client.request(&format!("MATCH g {q1}")).unwrap();
    let r2 = client.request(&format!("MATCH g {q2}")).unwrap();
    assert_eq!(r1.field("cache"), Some("MISS"));
    assert_eq!(
        r2.field("cache"),
        Some("HIT"),
        "isomorphic presentation must hit the same entry"
    );
    assert_eq!(r1.field_u64("count"), r2.field_u64("count"));
    assert_eq!(state.cache.len(), 1);
    handle.shutdown();
}

#[test]
fn deadline_returns_partial_count_in_bounded_time() {
    let scratch = Scratch::new("deadline");
    // Big enough that full enumeration takes well over the deadline.
    let graph = inject_random_labels(&erdos_renyi(3000, 30_000, 21), 2, 22);
    let pattern = query_from(&graph, 4, 7);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    // Warm the cache so DEADLINE 1 exercises *enumeration* cancellation
    // rather than tripping during the index build.
    let warm = client
        .request(&format!("MATCH g {query_path} LIMIT 1"))
        .unwrap();
    assert!(warm.is_ok(), "warmup failed: {}", warm.terminal);

    // EXACT opts out of deadline-aware degradation, so the request runs
    // the exact enumeration and gets cancelled mid-flight.
    let t0 = Instant::now();
    let resp = client
        .request(&format!("MATCH g {query_path} DEADLINE 1 EXACT"))
        .unwrap();
    let elapsed = t0.elapsed();
    assert!(resp.is_ok(), "deadline response: {}", resp.terminal);
    assert_eq!(resp.field("status"), Some("DEADLINE_EXCEEDED"));
    assert_eq!(resp.field("cache"), Some("HIT"));
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline response took {elapsed:?}"
    );

    // Without EXACT the adaptive layer answers the same hopeless deadline
    // from the estimator (or refuses), never burning the full deadline on
    // a worker: either way no DEADLINE_EXCEEDED partial count.
    let t0 = Instant::now();
    let resp = client
        .request(&format!("MATCH g {query_path} DEADLINE 1"))
        .unwrap();
    let elapsed = t0.elapsed();
    if resp.is_ok() {
        assert_eq!(resp.field("mode"), Some("APPROX"), "{}", resp.terminal);
        assert!(resp.field("mean").is_some());
        assert!(resp.field("ci95_lo").is_some());
    } else {
        assert!(
            resp.terminal.starts_with("ERR E_INFEASIBLE"),
            "{}",
            resp.terminal
        );
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "degraded response took {elapsed:?}"
    );
    handle.shutdown();
}

#[test]
fn queue_overflow_answers_busy() {
    let (handle, state) = serve(ServeConfig {
        pool_workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    // Two parked SLEEPs: one occupies the single worker, one fills the
    // queue. Each needs its own connection (a connection blocks on its
    // in-flight request), and they are staggered so the first is popped by
    // the worker before the second is submitted — submitting both at once
    // would race the second sleeper against the pop and bounce it.
    let addr = handle.addr();
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let t = std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.request("SLEEP 2000").unwrap()
            });
            std::thread::sleep(Duration::from_millis(400));
            t
        })
        .collect();

    let mut probe = Client::connect(addr).unwrap();
    let resp = probe.request("SLEEP 1").unwrap();
    assert!(resp.is_busy(), "expected BUSY, got {}", resp.terminal);
    // Control plane stays responsive while the data plane is saturated.
    let resp = probe.request("PING").unwrap();
    assert_eq!(resp.terminal, "OK PONG");

    for s in sleepers {
        let r = s.join().unwrap();
        assert!(r.is_ok(), "sleeper got {}", r.terminal);
    }
    assert!(
        state
            .metrics
            .rejected_busy
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_sustained_without_error() {
    let scratch = Scratch::new("load");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 13);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig {
        pool_workers: 4,
        queue_cap: 64,
        ..ServeConfig::default()
    });
    state.registry.insert("g", graph);

    let report = run_load(
        handle.addr(),
        &LoadConfig {
            clients: 8,
            requests_per_client: 20,
            request: format!("MATCH g {query_path}"),
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.ok, 8 * 20, "all requests succeed: {report:?}");
    assert_eq!(report.err, 0);
    assert_eq!(report.io_errors, 0);
    assert_eq!(report.busy, 0, "queue_cap=64 admits the closed loop");
    // The repeated template is served from cache after the cold start.
    let hits = state
        .metrics
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits >= 8 * 20 - 8, "expected mostly cache hits, got {hits}");
    handle.shutdown();
}

#[test]
fn errors_and_explain() {
    let scratch = Scratch::new("errs");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 17);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown graph / bad paths produce ERR with context, not hangs.
    let resp = client.request(&format!("MATCH nope {query_path}")).unwrap();
    assert!(resp.terminal.starts_with("ERR"), "{}", resp.terminal);
    assert!(resp.terminal.contains("nope"));

    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request("MATCH g /no/such/query.graph").unwrap();
    assert!(resp.terminal.starts_with("ERR"));
    assert!(resp.terminal.contains("query.graph"), "{}", resp.terminal);

    let resp = client.request("FROBNICATE").unwrap();
    assert!(resp.terminal.starts_with("ERR"));

    // EXPLAIN produces a payload report with `| ` prefixed lines.
    let resp = client.request(&format!("EXPLAIN g {query_path}")).unwrap();
    assert_eq!(resp.terminal, "OK EXPLAIN");
    assert!(!resp.payload.is_empty());
    assert!(resp.payload.iter().all(|l| l.starts_with("| ")));

    // QUIT closes cleanly.
    let resp = client.request("QUIT").unwrap();
    assert_eq!(resp.terminal, "OK BYE");
    handle.shutdown();
}

#[test]
fn stats_prom_emits_valid_exposition_format() {
    let scratch = Scratch::new("prom");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 17);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    let resp = client.request("STATS PROM").unwrap();
    assert_eq!(resp.terminal, "OK STATS");
    let text = resp.payload.join("\n") + "\n";
    // The output must pass the strict exposition-format validator
    // (histogram invariants included: +Inf bucket present, cumulative
    // counts monotone, +Inf == _count).
    let summary = ceci_trace::prom::validate(&text)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}\n{text}"));
    assert!(summary.families >= 20, "families: {}", summary.families);
    assert_eq!(summary.histograms, 6, "latency histogram families");

    let samples = ceci_trace::prom::parse(&text).unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    };
    assert_eq!(value("ceci_match_requests_total"), Some(1.0));
    assert_eq!(value("ceci_load_requests_total"), Some(1.0));
    assert_eq!(value("ceci_cache_misses_total"), Some(1.0));
    assert_eq!(value("ceci_graphs_loaded"), Some(1.0));
    // Adaptive-execution counters are exported (zero is fine — nothing
    // degraded here) and the planner scored exactly one cache-miss build.
    assert_eq!(value("ceci_approx_answers_total"), Some(0.0));
    assert_eq!(value("ceci_infeasible_rejects_total"), Some(0.0));
    assert!(value("ceci_adaptive_replans_total").is_some());
    assert_eq!(
        samples
            .iter()
            .find(|s| s.name == "ceci_plan_score_us_count")
            .map(|s| s.value),
        Some(1.0)
    );
    // The match latency histogram observed exactly one request.
    assert_eq!(
        samples
            .iter()
            .find(|s| s.name == "ceci_match_latency_us_count")
            .map(|s| s.value),
        Some(1.0)
    );
    handle.shutdown();
}

#[test]
fn explain_analyze_profile_sums_match_global_counters() {
    let scratch = Scratch::new("analyze");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 29);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    let resp = client
        .request(&format!("EXPLAIN g {query_path} ANALYZE"))
        .unwrap();
    assert_eq!(resp.terminal, "OK EXPLAIN");
    assert!(resp.payload.iter().all(|l| l.starts_with("| ")));

    // Pull `key=value` fields out of the profile rows.
    let kv = |line: &str, key: &str| -> Option<u64> {
        line.split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.parse().ok())
    };
    let depth_rows: Vec<&String> = resp
        .payload
        .iter()
        .filter(|l| l.starts_with("| depth="))
        .collect();
    assert!(!depth_rows.is_empty(), "per-depth rows missing:\n{resp:?}");
    let totals = resp
        .payload
        .iter()
        .find(|l| l.starts_with("| totals"))
        .expect("totals row");

    // Acceptance criterion: per-depth intersection ops are exact, so their
    // sum equals the run's global intersection counter bit-for-bit.
    let depth_isect: u64 = depth_rows.iter().map(|l| kv(l, "isect").unwrap()).sum();
    assert_eq!(Some(depth_isect), kv(totals, "intersection_ops"));
    // Same for emitted embeddings and recursive calls.
    let depth_emit: u64 = depth_rows.iter().map(|l| kv(l, "emit").unwrap()).sum();
    assert_eq!(Some(depth_emit), kv(totals, "embeddings"));
    let depth_calls: u64 = depth_rows.iter().map(|l| kv(l, "calls").unwrap()).sum();
    assert_eq!(Some(depth_calls), kv(totals, "recursive_calls"));

    // The profiled count matches the unprofiled MATCH and the direct
    // enumeration — ANALYZE must not perturb results.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(
        resp.field_u64("count"),
        Some(direct_count(&graph, &pattern))
    );
    assert_eq!(
        Some(direct_count(&graph, &pattern)),
        kv(totals, "embeddings")
    );
    handle.shutdown();
}

#[test]
fn traced_server_records_request_stage_spans() {
    let scratch = Scratch::new("spans");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 41);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, state) = serve(ServeConfig {
        trace: true,
        ..Default::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field("cache"), Some("HIT"));

    let spans = state.tracer.snapshot();
    let requests: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "service.request")
        .collect();
    assert_eq!(requests.len(), 2, "one request span per MATCH");
    for req in &requests {
        // Every stage child present, parented on the request, and the
        // stages tile the request span end to end.
        let children: Vec<_> = spans.iter().filter(|s| s.parent == req.id).collect();
        let names: Vec<&str> = children.iter().map(|s| s.name).collect();
        for stage in [
            "service.queue",
            "service.cache_probe",
            "service.build",
            "service.enumerate",
            "service.serialize",
        ] {
            assert!(names.contains(&stage), "{stage} missing: {names:?}");
        }
        let stage_total: u64 = children.iter().map(|s| s.dur_ns).sum();
        assert!(
            stage_total <= req.dur_ns,
            "stages ({stage_total}) exceed request ({})",
            req.dur_ns
        );
        for c in &children {
            assert!(c.ts_ns >= req.ts_ns);
            assert!(c.ts_ns + c.dur_ns <= req.ts_ns + req.dur_ns);
        }
    }
    // The cache-hit request records a zero-duration build stage.
    let hit_req = requests
        .iter()
        .find(|r| r.args.iter().any(|&(k, v)| k == "cache_hit" && v == 1))
        .expect("hit request span");
    let hit_build = spans
        .iter()
        .find(|s| s.parent == hit_req.id && s.name == "service.build")
        .unwrap();
    assert_eq!(hit_build.dur_ns, 0, "cache hit must not charge build time");
    handle.shutdown();
}

#[test]
fn admission_filter_rejects_impossible_query_before_any_build() {
    let scratch = Scratch::new("filter");
    // Data graph: a path A—B—C. The label pairs across edges are (A,B) and
    // (B,C); the pair (A,C) never occurs across any data edge.
    let lid = ceci_graph::lid;
    let vid = ceci_graph::vid;
    let data = Graph::new(
        vec![
            ceci_graph::LabelSet::single(lid(0)),
            ceci_graph::LabelSet::single(lid(1)),
            ceci_graph::LabelSet::single(lid(2)),
        ],
        &[(vid(0), vid(1)), (vid(1), vid(2))],
        false,
    );
    // Query: an A—C edge — provably zero embeddings by the pair test alone.
    let impossible = Graph::new(
        vec![
            ceci_graph::LabelSet::single(lid(0)),
            ceci_graph::LabelSet::single(lid(2)),
        ],
        &[(vid(0), vid(1))],
        false,
    );
    assert_eq!(direct_count(&data, &impossible), 0);
    let graph_path = scratch.write_graph("data.graph", &data);
    let query_path = scratch.write_graph("impossible.graph", &impossible);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // The filter answers count=0 without probing the cache or building.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("count"), Some(0));
    assert_eq!(resp.field("filter"), Some("REJECTED"));
    assert_eq!(resp.field("cache"), Some("NONE"));
    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.filter_rejected), 1);
    assert_eq!(g(&state.metrics.cache_misses), 0, "no cache probe");
    assert_eq!(state.metrics.build_latency.count(), 0, "no build");

    // RAW bypasses the filter: the full pipeline runs and agrees (0).
    let resp = client
        .request(&format!("MATCH g {query_path} RAW"))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("count"), Some(0));
    assert_eq!(resp.field("filter"), None, "RAW skips the filter");
    assert_eq!(resp.field("cache"), Some("MISS"));
    assert_eq!(state.metrics.build_latency.count(), 1, "RAW really built");

    // A satisfiable query on the same graph passes the filter untouched.
    let possible = Graph::new(
        vec![
            ceci_graph::LabelSet::single(lid(0)),
            ceci_graph::LabelSet::single(lid(1)),
        ],
        &[(vid(0), vid(1))],
        false,
    );
    let ok_path = scratch.write_graph("possible.graph", &possible);
    let resp = client.request(&format!("MATCH g {ok_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(
        resp.field_u64("count"),
        Some(direct_count(&data, &possible))
    );
    assert_eq!(resp.field("filter"), None);
    assert_eq!(g(&state.metrics.filter_rejected), 1, "no false rejection");
    handle.shutdown();
}

#[test]
fn concurrent_identical_matches_build_once_single_flight() {
    let scratch = Scratch::new("singleflight");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 13);
    let expected = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    // 8 pool workers so all 8 MATCHes are genuinely in flight at once;
    // chaos mode for the BUILDDELAY lever that widens the window.
    let (handle, state) = serve(ServeConfig {
        pool_workers: 8,
        chaos: true,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request("CHAOS BUILDDELAY 500").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    // 8 identical MATCHes released together: exactly one builds (and it
    // sleeps 500 ms first), the other 7 wait on its flight gate.
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let req = format!("MATCH g {query_path}");
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                c.request(&req).unwrap()
            })
        })
        .collect();
    for t in threads {
        let resp = t.join().unwrap();
        assert!(resp.is_ok(), "{}", resp.terminal);
        assert_eq!(resp.field_u64("count"), Some(expected));
    }

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        state.metrics.build_latency.count(),
        1,
        "exactly one CECI build across 8 identical concurrent MATCHes"
    );
    assert_eq!(g(&state.metrics.cache_misses), 1);
    assert_eq!(g(&state.metrics.singleflight_waits), 7, "N-1 waiters");
    assert_eq!(g(&state.metrics.cache_hits), 7, "waiters share the entry");

    // STATS surfaces the wait counter under its documented key.
    let resp = client.request("STATS").unwrap();
    assert!(resp
        .payload
        .iter()
        .any(|l| l == "STAT cache_singleflight_waits 7"));
    assert!(resp
        .payload
        .iter()
        .any(|l| l == "STAT build_latency_count 1"));
    handle.shutdown();
}

#[test]
fn batched_matches_share_one_frontier_with_identical_counts() {
    let scratch = Scratch::new("batch");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 27);
    let expected = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // First eligible MATCH leads the frontier build; a repeat of the same
    // prefix shape shares it. Counts are bit-identical to the direct
    // enumeration either way.
    let r1 = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(r1.is_ok(), "{}", r1.terminal);
    assert_eq!(r1.field_u64("count"), Some(expected));
    assert_eq!(r1.field("batch"), Some("LEAD"));

    let r2 = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(r2.field_u64("count"), Some(expected));
    assert_eq!(r2.field("batch"), Some("SHARED"));
    assert_eq!(r2.field("cache"), Some("HIT"));

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.batch_frontier_builds), 1);
    assert!(g(&state.metrics.batch_frontier_hits) >= 1);
    assert_eq!(state.frontiers.len(), 1);

    // RAW runs the classic unbatched path and still agrees bit-for-bit.
    let r3 = client
        .request(&format!("MATCH g {query_path} RAW"))
        .unwrap();
    assert_eq!(r3.field_u64("count"), Some(expected));
    assert_eq!(r3.field("batch"), None, "RAW never batches");

    // LIMIT and DEADLINE requests are ineligible (they need early-exit /
    // cancellation plumbing the batched path deliberately avoids).
    let r4 = client
        .request(&format!("MATCH g {query_path} LIMIT 1"))
        .unwrap();
    assert_eq!(r4.field("batch"), None);
    assert_eq!(r4.field_u64("count"), Some(1));

    // Re-LOAD invalidates the frontier cache along with the index cache.
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    assert_eq!(state.frontiers.len(), 0, "frontiers swept on reload");
    let r5 = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(r5.field_u64("count"), Some(expected));
    assert_eq!(r5.field("batch"), Some("LEAD"), "rebuilt for the new epoch");
    handle.shutdown();
}

#[test]
fn optimized_and_raw_counts_agree_across_query_mix() {
    // Differential sweep over a mixed workload: every optimization on
    // (default server) vs per-request RAW must agree bit-for-bit.
    let scratch = Scratch::new("rawdiff");
    let graph = small_graph();
    let graph_path = scratch.write_graph("data.graph", &graph);
    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    for (i, (size, seed)) in [(3usize, 5u64), (3, 9), (4, 3), (4, 13), (5, 7)]
        .into_iter()
        .enumerate()
    {
        let pattern = query_from(&graph, size, seed);
        let query_path = scratch.write_graph(&format!("q{i}.graph"), &pattern);
        let optimized = client.request(&format!("MATCH g {query_path}")).unwrap();
        let raw = client
            .request(&format!("MATCH g {query_path} RAW"))
            .unwrap();
        assert!(optimized.is_ok() && raw.is_ok());
        assert_eq!(
            optimized.field_u64("count"),
            raw.field_u64("count"),
            "size={size} seed={seed}: optimized vs RAW disagree"
        );
        assert_eq!(
            optimized.field_u64("count"),
            Some(direct_count(&graph, &pattern)),
            "size={size} seed={seed}: server vs direct disagree"
        );
    }
    handle.shutdown();
}

#[test]
fn reload_invalidates_cached_indexes() {
    let scratch = Scratch::new("reload");
    let g1 = small_graph();
    let g2 = inject_random_labels(&erdos_renyi(200, 600, 31), 3, 32);
    let pattern = query_from(&g1, 3, 19);
    let p1 = scratch.write_graph("g1.graph", &g1);
    let p2 = scratch.write_graph("g2.graph", &g2);
    let q = scratch.write_graph("q.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {p1}")).unwrap();
    client.request(&format!("MATCH g {q}")).unwrap();
    assert_eq!(state.cache.len(), 1);

    // Replacing the graph sweeps its cached indexes; the next MATCH is a
    // miss against the new epoch and counts against the new graph.
    let resp = client.request(&format!("LOAD g {p2}")).unwrap();
    assert!(resp.is_ok());
    assert_eq!(state.cache.len(), 0, "old epoch swept");
    let resp = client.request(&format!("MATCH g {q}")).unwrap();
    assert!(resp.is_ok());
    assert_eq!(resp.field("cache"), Some("MISS"));
    assert_eq!(resp.field_u64("count"), Some(direct_count(&g2, &pattern)));
    handle.shutdown();
}

/// Rebuilds a graph with the given undirected edges toggled: `adds` joined,
/// `dels` removed. Labels are carried over unchanged.
fn mutated_copy(graph: &Graph, adds: &[(u32, u32)], dels: &[(u32, u32)]) -> Graph {
    use std::collections::BTreeSet;
    let mut set: BTreeSet<(u32, u32)> = BTreeSet::new();
    for a in 0..graph.num_vertices() as u32 {
        for &b in graph.neighbors(ceci_graph::vid(a)) {
            if a < b.0 {
                set.insert((a, b.0));
            }
        }
    }
    for &(a, b) in dels {
        set.remove(&(a.min(b), a.max(b)));
    }
    for &(a, b) in adds {
        set.insert((a.min(b), a.max(b)));
    }
    let labels = (0..graph.num_vertices() as u32)
        .map(|v| graph.labels(ceci_graph::vid(v)).clone())
        .collect();
    let edges: Vec<_> = set
        .into_iter()
        .map(|(a, b)| (ceci_graph::vid(a), ceci_graph::vid(b)))
        .collect();
    Graph::new(labels, &edges, false)
}

/// A (add, del) pair guaranteed applicable to `graph`: the added edge is
/// absent, the deleted one present, and neither is a self-loop.
fn applicable_mutation(graph: &Graph, seed: u64) -> ((u32, u32), (u32, u32)) {
    let n = graph.num_vertices() as u32;
    let mut x = seed | 1;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % n as u64) as u32
    };
    let add = loop {
        let (a, b) = (rng(), rng());
        if a != b && !graph.has_edge(ceci_graph::vid(a), ceci_graph::vid(b)) {
            break (a, b);
        }
    };
    let del = loop {
        let a = rng();
        if let Some(&b) = graph.neighbors(ceci_graph::vid(a)).first() {
            break (a, b.0);
        }
    };
    (add, del)
}

#[test]
fn mutation_verbs_agree_with_direct_enumeration_and_repair_the_cache() {
    let scratch = Scratch::new("mutate");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 7);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Cold build caches the index at sub-epoch 0.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field("cache"), Some("MISS"));
    assert_eq!(
        resp.field_u64("count"),
        Some(direct_count(&graph, &pattern))
    );

    // ADDEDGE + DELEDGE, then a mixed BATCH; track a local reference copy.
    let ((a1, b1), (d1, d2)) = applicable_mutation(&graph, 97);
    let resp = client.request(&format!("ADDEDGE g {a1} {b1}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("added"), Some(1));
    assert_eq!(resp.field_u64("sub_epoch"), Some(1));
    let resp = client.request(&format!("DELEDGE g {d1} {d2}")).unwrap();
    assert_eq!(resp.field_u64("deleted"), Some(1));
    let reference = mutated_copy(&graph, &[(a1, b1)], &[(d1, d2)]);

    let ((a2, b2), (d3, d4)) = applicable_mutation(&reference, 131);
    let resp = client
        .request(&format!("BATCH g +{a2}:{b2} -{d3}:{d4}"))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("added"), Some(1));
    assert_eq!(resp.field_u64("deleted"), Some(1));
    assert_eq!(resp.field_u64("sub_epoch"), Some(3));
    let reference = mutated_copy(&reference, &[(a2, b2)], &[(d3, d4)]);

    // Re-applying a present edge is a net no-op and does not advance the
    // sub-epoch.
    let resp = client.request(&format!("ADDEDGE g {a2} {b2}")).unwrap();
    assert_eq!(resp.field_u64("added"), Some(0));
    assert_eq!(resp.field_u64("sub_epoch"), Some(3));

    // The cached frozen index is repaired, not rebuilt, and the count is
    // exactly the from-scratch count on the mutated graph. This also
    // guards against a stale shared frontier surviving the mutation.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field("cache"), Some("REPAIRED"));
    assert_eq!(
        resp.field_u64("count"),
        Some(direct_count(&reference, &pattern))
    );

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.mutation_batches), 3, "net-applied batches");
    assert_eq!(g(&state.metrics.edges_added), 2);
    assert_eq!(g(&state.metrics.edges_deleted), 2);
    assert_eq!(g(&state.metrics.index_repairs), 1);
    assert_eq!(state.metrics.index_repair_latency.count(), 1);

    // Out-of-range endpoints answer a typed mutation error.
    let resp = client.request("ADDEDGE g 0 99999").unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_MUTATION"),
        "{}",
        resp.terminal
    );
    handle.shutdown();
}

#[test]
fn batch_file_replays_a_temporal_stream() {
    let scratch = Scratch::new("batchfile");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 9);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    // Three timestamped additions, none already present.
    let (e1, _) = applicable_mutation(&graph, 11);
    let r1 = mutated_copy(&graph, &[e1], &[]);
    let (e2, _) = applicable_mutation(&r1, 23);
    let r2 = mutated_copy(&r1, &[e2], &[]);
    let (e3, _) = applicable_mutation(&r2, 37);
    let reference = mutated_copy(&r2, &[e3], &[]);
    let stream_path = scratch.0.join("stream.txt");
    std::fs::write(
        &stream_path,
        format!(
            "{} {} 1\n{} {} 2\n{} {} 3\n",
            e1.0, e1.1, e2.0, e2.1, e3.0, e3.1
        ),
    )
    .unwrap();

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client
        .request(&format!("BATCH g FILE {}", stream_path.display()))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("added"), Some(3));
    assert_eq!(resp.field_u64("sub_epoch"), Some(1));

    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(
        resp.field_u64("count"),
        Some(direct_count(&reference, &pattern))
    );

    // A missing stream file is a mutation error, not a hang or a panic.
    let resp = client
        .request("BATCH g FILE /nonexistent/stream.txt")
        .unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_MUTATION"),
        "{}",
        resp.terminal
    );
    handle.shutdown();
}

#[test]
fn register_emits_ordered_deltas_and_unregister_stops_them() {
    let scratch = Scratch::new("register");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 13);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    let resp = client
        .request(&format!("REGISTER q g {query_path}"))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let initial = resp.field_u64("total").unwrap();
    assert_eq!(initial, direct_count(&graph, &pattern));
    assert_eq!(state.continuous_len(), 1);

    // Three mutation batches; each must push one EVENT DELTA to this
    // connection, in sub-epoch order, with totals matching a from-scratch
    // count of the mutated snapshot.
    let mut reference = mutated_copy(&graph, &[], &[]);
    let mut running = initial;
    for round in 0..3u64 {
        let (add, del) = applicable_mutation(&reference, 61 + round);
        let resp = client
            .request(&format!(
                "BATCH g +{}:{} -{}:{}",
                add.0, add.1, del.0, del.1
            ))
            .unwrap();
        assert!(resp.is_ok(), "{}", resp.terminal);
        reference = mutated_copy(&reference, &[add], &[del]);

        let event = client.wait_event().unwrap();
        let fields: std::collections::HashMap<&str, &str> = event
            .split_whitespace()
            .filter_map(|t| t.split_once('='))
            .collect();
        assert!(event.starts_with("EVENT DELTA"), "{event}");
        assert_eq!(fields.get("query"), Some(&"q"), "{event}");
        assert_eq!(fields.get("graph"), Some(&"g"), "{event}");
        assert_eq!(
            fields.get("batch").and_then(|v| v.parse::<u64>().ok()),
            Some(round + 1),
            "events arrive in sub-epoch order: {event}"
        );
        let new: u64 = fields["new"].parse().unwrap();
        let retired: u64 = fields["retired"].parse().unwrap();
        let total: u64 = fields["total"].parse().unwrap();
        assert_eq!(total, running + new - retired, "{event}");
        running = total;
        assert_eq!(
            total,
            direct_count(&reference, &pattern),
            "delta total diverged from rebuild at round {round}"
        );
    }

    // Deltas keep flowing even between MATCH requests on the same
    // connection — EVENT lines must never corrupt a response payload.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field_u64("count"), Some(running));

    let resp = client.request("UNREGISTER q").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(state.continuous_len(), 0);
    let resp = client.request("UNREGISTER q").unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_REGISTER"),
        "{}",
        resp.terminal
    );

    // A post-unregister mutation emits nothing: the next round-trip sees
    // no stashed events.
    let (add, _) = applicable_mutation(&reference, 997);
    client
        .request(&format!("ADDEDGE g {} {}", add.0, add.1))
        .unwrap();
    client.request("PING").unwrap();
    assert!(client.take_events().is_empty(), "delta after UNREGISTER");

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.continuous_events), 3);
    handle.shutdown();
}

#[test]
fn reload_drops_continuous_registrations() {
    let scratch = Scratch::new("reload-cq");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 21);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    client
        .request(&format!("REGISTER q g {query_path}"))
        .unwrap();
    assert_eq!(state.continuous_len(), 1);

    // Replacing the graph invalidates the registration: its epoch no
    // longer matches, so mutations of the fresh load emit no stale deltas.
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let (add, _) = applicable_mutation(&graph, 43);
    let resp = client
        .request(&format!("ADDEDGE g {} {}", add.0, add.1))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    client.request("PING").unwrap();
    assert!(
        client.take_events().is_empty(),
        "stale registration survived a reload"
    );
    handle.shutdown();
}

#[test]
fn estimate_verb_reports_interval_and_shares_cache() {
    let scratch = Scratch::new("estimate");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 31);
    let expected = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // ESTIMATE builds (and caches) the index, then answers from walks.
    let resp = client.request(&format!("ESTIMATE g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert!(
        resp.terminal.starts_with("OK ESTIMATE"),
        "{}",
        resp.terminal
    );
    let mean: f64 = resp.field("mean").unwrap().parse().unwrap();
    let lo: f64 = resp.field("ci95_lo").unwrap().parse().unwrap();
    let hi: f64 = resp.field("ci95_hi").unwrap().parse().unwrap();
    assert!(resp.field("std_error").is_some());
    assert_eq!(resp.field("exact_zero"), Some("0"));
    assert_eq!(resp.field_u64("walks"), Some(1000), "server default budget");
    assert!(mean >= 0.0 && lo >= 0.0 && lo <= hi, "{}", resp.terminal);
    // Sanity, not statistics (the estimator's accuracy has its own
    // proptest suite): the estimate is the right order of magnitude.
    assert!(
        mean <= 100.0 * (expected as f64).max(1.0) + 100.0,
        "mean {mean} vs exact {expected}"
    );
    assert_eq!(state.cache.len(), 1, "ESTIMATE must populate the cache");

    // WALKS override round-trips.
    let resp = client
        .request(&format!("ESTIMATE g {query_path} WALKS 200"))
        .unwrap();
    assert_eq!(resp.field_u64("walks"), Some(200));
    assert_eq!(resp.field("cache"), Some("HIT"));

    // A later MATCH reuses the same entry: one build for both verbs.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field_u64("count"), Some(expected));
    assert_eq!(resp.field("cache"), Some("HIT"));

    // A query whose label cannot occur is answered exact-zero by the
    // admission filter without touching the index cache.
    let mut qb = ceci_graph::GraphBuilder::new();
    let a = qb.add_vertex(ceci_graph::LabelId(9));
    let b = qb.add_vertex(ceci_graph::LabelId(9));
    qb.add_edge(a, b);
    let zero_path = scratch.write_graph("zero.graph", &qb.build());
    let resp = client.request(&format!("ESTIMATE g {zero_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field("exact_zero"), Some("1"));
    assert_eq!(resp.field("mean"), Some("0.0"));
    assert_eq!(resp.field("cache"), Some("NONE"));
    handle.shutdown();
}

#[test]
fn adaptive_counts_bit_identical_to_raw_and_fixed() {
    let scratch = Scratch::new("adaptive-diff");
    let graph = small_graph();
    let graph_path = scratch.write_graph("data.graph", &graph);

    let (handle, _state) = serve(ServeConfig::default());
    let (fixed_handle, _fixed_state) = serve(ServeConfig {
        adaptive: false,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut fixed = Client::connect(fixed_handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    fixed.request(&format!("LOAD g {graph_path}")).unwrap();

    for (size, seed) in [(3, 41), (4, 42), (5, 43), (6, 44)] {
        let pattern = query_from(&graph, size, seed);
        let expected = direct_count(&graph, &pattern);
        let query_path = scratch.write_graph(&format!("q{size}-{seed}.graph"), &pattern);
        // Adaptive plan, first (profiled) run.
        let first = client.request(&format!("MATCH g {query_path}")).unwrap();
        // Second run exercises the pinned-kernel feedback path.
        let second = client.request(&format!("MATCH g {query_path}")).unwrap();
        // RAW bypasses every adaptive execution decision.
        let raw = client
            .request(&format!("MATCH g {query_path} RAW"))
            .unwrap();
        // And a --no-adaptive server plans fixed BFS.
        let base = fixed.request(&format!("MATCH g {query_path}")).unwrap();
        for (tag, resp) in [
            ("first", &first),
            ("second", &second),
            ("raw", &raw),
            ("fixed", &base),
        ] {
            assert_eq!(
                resp.field_u64("count"),
                Some(expected),
                "{tag} run of q{size}-{seed}: {}",
                resp.terminal
            );
        }
    }
    handle.shutdown();
    fixed_handle.shutdown();
}

// ---------------------------------------------------------------------------
// Connection lifecycle: the event-driven server core under malformed input,
// abrupt disconnects, half-open peers, dead subscribers, and thousands of
// concurrent connections.
// ---------------------------------------------------------------------------

/// Reads one `\n`-terminated line from a raw socket (no client framing).
fn read_raw_line(stream: &mut std::net::TcpStream) -> std::io::Result<String> {
    use std::io::Read;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("EOF after {:?}", String::from_utf8_lossy(&line)),
            ));
        }
        if byte[0] == b'\n' {
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
        line.push(byte[0]);
    }
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    probe()
}

#[test]
fn malformed_frames_get_typed_errors_not_crashes() {
    use std::io::Write;
    let scratch = Scratch::new("malformed");
    let graph = small_graph();
    let graph_path = scratch.write_graph("data.graph", &graph);
    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Exact malformed frames, each answered with a typed ERR on the same
    // connection — never a hang, a close, or a panic.
    for (frame, code) in [
        ("FROBNICATE", "ERR E_PARSE"),              // unknown verb
        ("MATCH g", "ERR E_PARSE"),                 // truncated MATCH
        ("MATCH", "ERR E_PARSE"),                   // bare verb
        ("ADDEDGE g 1 banana", "ERR E_PARSE"),      // bad mutation endpoint
        ("BATCH g +1:2 -x:y extra", "ERR E_PARSE"), // mangled batch token
        ("MATCH g /q LIMIT banana", "ERR E_PARSE"), // bad LIMIT operand
    ] {
        let resp = client.request(frame).unwrap();
        assert!(
            resp.terminal.starts_with(code),
            "{frame:?} answered {:?}",
            resp.terminal
        );
    }
    // The connection survives the whole gauntlet.
    assert_eq!(client.request("PING").unwrap().terminal, "OK PONG");

    // Raw non-UTF-8 bytes: typed parse error, connection still usable.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"MATCH g \xff\xfe\xfd\n").unwrap();
    let line = read_raw_line(&mut raw).unwrap();
    assert!(line.starts_with("ERR E_PARSE"), "{line:?}");
    raw.write_all(b"PING\n").unwrap();
    assert_eq!(read_raw_line(&mut raw).unwrap(), "OK PONG");
    handle.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_and_closed() {
    use std::io::Write;
    let (handle, state) = serve(ServeConfig::default());
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // > 1 MiB of garbage with no newline: the server must bound its buffer,
    // answer a typed parse error, and close — not accumulate forever.
    let chunk = vec![b'A'; 64 * 1024];
    for _ in 0..17 {
        if raw.write_all(&chunk).is_err() {
            break; // server already closed on us mid-send; fine
        }
    }
    raw.flush().ok();
    match read_raw_line(&mut raw) {
        Ok(line) => {
            assert!(line.starts_with("ERR E_PARSE"), "{line:?}");
            assert!(line.contains("exceeds"), "{line:?}");
            // After the error the server closes the connection.
            let mut rest = Vec::new();
            std::io::Read::read_to_end(&mut raw, &mut rest).ok();
        }
        Err(e) => panic!("no typed error before close: {e}"),
    }
    assert!(
        state
            .metrics
            .errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn abrupt_disconnect_mid_request_does_not_wedge_the_server() {
    use std::io::Write;
    let (handle, state) = serve(ServeConfig::default());

    // Park a request on the data plane, then vanish without reading the
    // response: the worker's completion lands on a dead connection and must
    // be discarded, not crash the loop or leak the slot.
    {
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"SLEEP 300\n").unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Drop: RST/FIN while the request is in flight.
    }
    // A half-written request (no newline) followed by a vanish exercises
    // the partial-read teardown path too.
    {
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"PIN").unwrap();
        raw.flush().unwrap();
    }

    // The server keeps serving and eventually reaps both connections.
    let gauge = || {
        state
            .metrics
            .connections_open
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    let mut probe = Client::connect(handle.addr()).unwrap();
    assert_eq!(probe.request("PING").unwrap().terminal, "OK PONG");
    assert!(
        wait_until(Duration::from_secs(5), || gauge() <= 1),
        "dead connections never reaped: {} still open",
        gauge()
    );
    assert_eq!(probe.request("PING").unwrap().terminal, "OK PONG");
    handle.shutdown();
}

#[test]
fn half_open_idle_connection_times_out_with_typed_notice() {
    let (handle, state) = serve(ServeConfig {
        io_timeout_ms: 200,
        ..ServeConfig::default()
    });
    // A peer that connects and then never sends a complete request — the
    // shape of a half-open socket — is expired by the idle sweep with a
    // typed notice instead of holding its slot forever.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let t0 = Instant::now();
    let line = read_raw_line(&mut raw).expect("timeout notice before close");
    assert!(line.starts_with("ERR E_TIMEOUT"), "{line:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "sweep took {:?}",
        t0.elapsed()
    );
    // ...and then the connection is closed.
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut raw, &mut rest).ok();
    assert!(
        state
            .metrics
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn eof_without_trailing_newline_still_answers() {
    use std::io::Write;
    let (handle, _state) = serve(ServeConfig::default());
    // "PING" + FIN, no newline: EOF terminates the final line, the request
    // runs, and the response comes back before the close.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(b"PING").unwrap();
    raw.flush().unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(read_raw_line(&mut raw).unwrap(), "OK PONG");
    handle.shutdown();
}

#[test]
fn dead_subscriber_is_auto_unregistered_on_push_failure() {
    let scratch = Scratch::new("dead-sub");
    let graph = small_graph();
    let pattern = query_from(&graph, 3, 13);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, state) = serve(ServeConfig::default());
    let mut mutator = Client::connect(handle.addr()).unwrap();
    mutator.request(&format!("LOAD g {graph_path}")).unwrap();

    // REGISTER from a connection that then dies without UNREGISTER.
    {
        let mut sub = Client::connect(handle.addr()).unwrap();
        let resp = sub.request(&format!("REGISTER q g {query_path}")).unwrap();
        assert!(resp.is_ok(), "{}", resp.terminal);
    }
    assert_eq!(state.continuous_len(), 1, "registration outlives the drop");

    // Wait for the server to reap the dead connection (its sink is then
    // closed), then mutate: the EVENT push fails, the registration is
    // auto-removed, and the failure is counted — no wedge, no leak.
    let gauge = || {
        state
            .metrics
            .connections_open
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    assert!(
        wait_until(Duration::from_secs(5), || gauge() <= 1),
        "subscriber connection never reaped"
    );
    let (add, _) = applicable_mutation(&graph, 53);
    let resp = mutator
        .request(&format!("ADDEDGE g {} {}", add.0, add.1))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert!(
        wait_until(Duration::from_secs(5), || state.continuous_len() == 0),
        "dead registration survived a failed push"
    );
    assert!(
        state
            .metrics
            .event_push_failures
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    // Later mutations no longer try the dead sink.
    let (add2, _) = applicable_mutation(&mutated_copy(&graph, &[add], &[]), 59);
    let resp = mutator
        .request(&format!("ADDEDGE g {} {}", add2.0, add2.1))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    handle.shutdown();
}

#[test]
fn event_loop_and_threaded_counts_are_bit_identical() {
    let scratch = Scratch::new("mode-diff");
    let graph = small_graph();
    let graph_path = scratch.write_graph("data.graph", &graph);

    let (event_handle, _es) = serve(ServeConfig::default());
    let (threaded_handle, _ts) = serve(ServeConfig {
        event_loop: false,
        ..ServeConfig::default()
    });
    let mut ev = Client::connect(event_handle.addr()).unwrap();
    let mut th = Client::connect(threaded_handle.addr()).unwrap();
    ev.request(&format!("LOAD g {graph_path}")).unwrap();
    th.request(&format!("LOAD g {graph_path}")).unwrap();

    for (size, seed) in [(3, 5), (4, 13), (5, 7)] {
        let pattern = query_from(&graph, size, seed);
        let expected = direct_count(&graph, &pattern);
        let query_path = scratch.write_graph(&format!("q{size}-{seed}.graph"), &pattern);
        let a = ev.request(&format!("MATCH g {query_path}")).unwrap();
        let b = th.request(&format!("MATCH g {query_path}")).unwrap();
        assert_eq!(
            a.field_u64("count"),
            Some(expected),
            "event: {}",
            a.terminal
        );
        assert_eq!(
            b.field_u64("count"),
            Some(expected),
            "threaded: {}",
            b.terminal
        );
    }
    assert!(event_handle.shutdown().clean());
    assert!(threaded_handle.shutdown().clean());
}

#[test]
fn connection_cap_rejects_with_busy_and_counts_it() {
    let (handle, state) = serve(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    assert_eq!(a.request("PING").unwrap().terminal, "OK PONG");
    assert_eq!(b.request("PING").unwrap().terminal, "OK PONG");

    // The third connection is answered BUSY and closed at accept time.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let line = read_raw_line(&mut raw).expect("BUSY before close");
    assert_eq!(line, "BUSY");
    assert!(
        state
            .metrics
            .connections_rejected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    // Existing connections are unaffected.
    assert_eq!(a.request("PING").unwrap().terminal, "OK PONG");
    assert_eq!(b.request("PING").unwrap().terminal, "OK PONG");
    handle.shutdown();
}

#[test]
fn two_thousand_concurrent_clients_sustained_without_drops() {
    let (handle, state) = serve(ServeConfig::default());
    let report = run_load(
        handle.addr(),
        &LoadConfig {
            clients: 2000,
            requests_per_client: 3,
            request: "PING".to_string(),
            // Closed loops with think time: ~2000 concurrent mostly-idle
            // connections at a bounded offered rate, which is exactly the
            // shape the event loop exists for.
            think_ms: 200,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.ok, 2000 * 3, "dropped responses: {report:?}");
    assert_eq!(report.err, 0, "{report:?}");
    assert_eq!(report.io_errors, 0, "{report:?}");
    assert_eq!(report.busy, 0, "{report:?}");
    let accepted = state
        .metrics
        .connections_accepted
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(accepted >= 2000, "accepted {accepted}");
    assert!(handle.shutdown().clean());
}

#[test]
fn shutdown_reports_clean_join_in_both_modes() {
    let (event_handle, _s1) = serve(ServeConfig::default());
    let report = event_handle.shutdown();
    assert!(report.clean(), "event-loop shutdown: {report:?}");

    let (threaded_handle, _s2) = serve(ServeConfig {
        event_loop: false,
        ..ServeConfig::default()
    });
    let report = threaded_handle.shutdown();
    assert!(report.clean(), "threaded shutdown: {report:?}");
}

#[test]
fn explain_shows_plan_choice_and_estimate_accuracy() {
    let scratch = Scratch::new("explain-choice");
    let graph = small_graph();
    let pattern = query_from(&graph, 4, 37);
    let graph_path = scratch.write_graph("data.graph", &graph);
    let query_path = scratch.write_graph("query.graph", &pattern);

    let (handle, _state) = serve(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    let resp = client
        .request(&format!("EXPLAIN g {query_path} ANALYZE"))
        .unwrap();
    assert_eq!(resp.terminal, "OK EXPLAIN");
    let has = |needle: &str| resp.payload.iter().any(|l| l.contains(needle));
    assert!(
        has("plan choice:"),
        "missing choice section: {:?}",
        resp.payload
    );
    assert!(has("chosen=1"), "no candidate marked chosen");
    assert!(has("exec: strategy="), "missing execution decision");
    assert!(has("kernels: d0="), "missing kernel pins");
    assert!(has("estimate depth="), "missing est-vs-actual table");
    assert!(has("qerr="), "missing q-error column");

    // A --no-adaptive server omits the section entirely.
    let (fixed_handle, _s) = serve(ServeConfig {
        adaptive: false,
        ..ServeConfig::default()
    });
    let mut fixed = Client::connect(fixed_handle.addr()).unwrap();
    fixed.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = fixed.request(&format!("EXPLAIN g {query_path}")).unwrap();
    assert_eq!(resp.terminal, "OK EXPLAIN");
    assert!(
        !resp.payload.iter().any(|l| l.contains("plan choice:")),
        "--no-adaptive must not report a plan choice"
    );
    fixed_handle.shutdown();
    handle.shutdown();
}
