//! Property-based tests (proptest) on the core invariants:
//!
//! * CECI completeness: everything the brute-force reference finds, CECI
//!   finds — and nothing else (Lemma 1).
//! * Parallel enumeration equals sequential enumeration for every strategy.
//! * Refinement only removes candidates; it never changes the result set.
//! * Cardinality upper-bounds the true embedding count per cluster (§4.3).
//! * Symmetry breaking yields exactly one representative per automorphism
//!   class.
//! * Index size accounting is internally consistent.

use ceci::baselines::enumerate_all;
use ceci::prelude::*;
use ceci_core::Strategy as DistStrategy;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// Random undirected graph: `n` in 4..=24, edge probability `p`, labels in
/// 1..=3 alphabets.
fn arb_graph() -> impl PropStrategy<Value = Graph> {
    (4usize..=24, 0.05f64..0.5, 1u32..=3, any::<u64>()).prop_map(|(n, p, labels, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((vid(a), vid(b)));
                }
            }
        }
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|_| LabelSet::single(lid(rng.gen_range(0..labels))))
            .collect();
        Graph::new(label_sets, &edges, false)
    })
}

/// One of a fixed set of query shapes, with labels drawn to match the data
/// alphabet (label 0 always exists).
fn arb_query() -> impl PropStrategy<Value = QueryGraph> {
    prop_oneof![
        Just(PaperQuery::Qg1.build()),
        Just(PaperQuery::Qg2.build()),
        Just(PaperQuery::Qg3.build()),
        Just(PaperQuery::Qg4.build()),
        Just(PaperQuery::Qg5.build()),
        Just(ceci_query::catalog::path(4)),
        Just(ceci_query::catalog::star(3)),
        Just(ceci_query::catalog::cycle(5)),
        Just(QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap()),
        Just(
            QueryGraph::with_labels(&[lid(0), lid(1), lid(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap()
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ceci_is_complete_and_sound(graph in arb_graph(), query in arb_query()) {
        let plan = QueryPlan::new(query, &graph);
        let expected = enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
        let ceci = Ceci::build(&graph, &plan);
        let got = ceci::core::collect_embeddings(&graph, &plan, &ceci);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn parallel_equals_sequential(graph in arb_graph(), query in arb_query(), workers in 1usize..=4) {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let seq = ceci::core::collect_embeddings(&graph, &plan, &ceci);
        for strategy in [
            DistStrategy::Static,
            DistStrategy::CoarseDynamic,
            DistStrategy::FineDynamic { beta: 0.2 },
        ] {
            let par = enumerate_parallel(&graph, &plan, &ceci, &ParallelOptions {
                workers,
                strategy,
                collect: true,
                ..Default::default()
            });
            prop_assert_eq!(par.embeddings.unwrap(), seq.clone());
        }
    }

    #[test]
    fn refinement_changes_size_not_results(graph in arb_graph(), query in arb_query()) {
        let plan = QueryPlan::new(query, &graph);
        let refined = Ceci::build_with(&graph, &plan, BuildOptions { build_nte: true, refine: true, ..BuildOptions::default() });
        let unrefined = Ceci::build_with(&graph, &plan, BuildOptions { build_nte: true, refine: false, ..BuildOptions::default() });
        // Refinement never grows the index.
        prop_assert!(refined.num_entries() <= unrefined.num_entries());
        // And results match.
        prop_assert_eq!(
            ceci::core::collect_embeddings(&graph, &plan, &refined),
            ceci::core::collect_embeddings(&graph, &plan, &unrefined)
        );
    }

    #[test]
    fn cardinality_bounds_cluster_embeddings(graph in arb_graph(), query in arb_query()) {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let root = plan.root();
        // Count embeddings per pivot and compare with cardinality.
        let all = ceci::core::collect_embeddings(&graph, &plan, &ceci);
        for &(pivot, card) in ceci.pivots() {
            let cluster_count = all
                .iter()
                .filter(|emb| emb[root.index()] == pivot)
                .count() as u64;
            prop_assert!(
                cluster_count <= card,
                "cluster {:?}: {} embeddings > cardinality {}",
                pivot, cluster_count, card
            );
        }
        // Total bound.
        prop_assert!(all.len() as u64 <= ceci.total_cardinality());
    }

    #[test]
    fn symmetry_breaking_lists_each_class_once(graph in arb_graph()) {
        // Use an unlabeled triangle so automorphisms are plentiful. Compare
        // |unbroken| == |broken| × |Aut|.
        let query = PaperQuery::Qg1.build();
        let autos = ceci_query::nec::automorphisms(&query, 1_000_000).unwrap().len() as u64;
        let plan_broken = QueryPlan::new(query.clone(), &graph);
        let plan_unbroken = QueryPlan::with_options(query, &graph, &PlanOptions {
            break_symmetry: false,
            ..Default::default()
        });
        let ceci_b = Ceci::build(&graph, &plan_broken);
        let ceci_u = Ceci::build(&graph, &plan_unbroken);
        let broken = ceci::core::count_embeddings(&graph, &plan_broken, &ceci_b);
        let unbroken = ceci::core::count_embeddings(&graph, &plan_unbroken, &ceci_u);
        prop_assert_eq!(unbroken, broken * autos);
    }

    #[test]
    fn size_accounting_consistent(graph in arb_graph(), query in arb_query()) {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let s = ceci.stats();
        prop_assert_eq!(s.size_bytes, ceci.size_bytes());
        prop_assert_eq!(
            ceci.num_entries(),
            s.te_entries_after_refine + s.nte_entries_after_refine
        );
        prop_assert!(s.te_entries_after_refine <= s.te_entries_after_filter);
        prop_assert!(s.nte_entries_after_refine <= s.nte_entries_after_filter);
        prop_assert!(s.pivots_final <= s.pivots_initial);
    }

    #[test]
    fn work_units_partition_the_embeddings(graph in arb_graph(), query in arb_query(), beta in 0.05f64..2.0) {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let units = ceci::core::decompose(&graph, &plan, &ceci, 4, beta);
        let mut enumerator = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        let mut counters = Counters::default();
        let mut sink = CollectSink::unbounded();
        for unit in &units {
            enumerator.enumerate_prefix(&unit.prefix, &mut sink, &mut counters);
        }
        let got = ceci::core::canonicalize(sink.into_embeddings());
        let expected = ceci::core::collect_embeddings(&graph, &plan, &ceci);
        // Partition: same set, no duplicates.
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn admission_filter_never_rejects_satisfiable_queries(graph in arb_graph(), query in arb_query()) {
        // Soundness of the label-pair admission filter (PR 6): a REJECTED
        // verdict is a proof of zero embeddings. Differential check: the
        // brute-force reference and all five baseline engines must agree on
        // the count, and whenever any of them finds >= 1 embedding the
        // filter must have passed the query.
        let mut graph = graph;
        graph.build_label_pair_index();
        let verdict = ceci_query::admission_check(&query, &graph);
        let plan = QueryPlan::new(query, &graph);
        let expected = enumerate_all(&graph, plan.query(), plan.symmetry_constraints()).len() as u64;

        let bare = ceci::baselines::enumerate_bare(
            &graph, &plan, &ceci::baselines::BareOptions { workers: 2, ..Default::default() });
        prop_assert_eq!(bare.total_embeddings, expected, "bare disagrees with reference");
        let psgl = ceci::baselines::enumerate_psgl(
            &graph, &plan, &ceci::baselines::PsglOptions { workers: 2, ..Default::default() });
        prop_assert_eq!(psgl.total_embeddings, expected, "psgl disagrees with reference");
        let turbo = ceci::baselines::enumerate_turboiso(
            &graph, &plan, &ceci::baselines::TurboOptions::default());
        prop_assert_eq!(turbo.total_embeddings, expected, "turboiso disagrees with reference");
        let cfl = ceci::baselines::enumerate_cfl(
            &graph, &plan, &ceci::baselines::CflOptions::default());
        prop_assert_eq!(cfl.total_embeddings, expected, "cfl disagrees with reference");
        let dual = ceci::baselines::enumerate_dualsim(
            &graph, &plan, &ceci::baselines::DualSimOptions::default());
        prop_assert_eq!(dual.total_embeddings, expected, "dualsim disagrees with reference");

        if verdict.rejected() {
            prop_assert_eq!(
                expected, 0,
                "filter rejected a satisfiable query: verdict={:?}", verdict
            );
        }
    }

    #[test]
    fn maintained_label_pair_index_is_sound_under_mutation(
        graph in arb_graph(),
        query in arb_query(),
        muts in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..24),
        batches in 1usize..4,
    ) {
        // Streaming soundness of the admission filter (PR 7): the
        // clone-and-absorb label-pair maintenance applied per mutation
        // batch may only ever *overestimate* the exact per-pair maxima, so
        // a REJECTED verdict on the mutated snapshot is still a proof of
        // zero embeddings.
        let mut graph = graph;
        graph.build_label_pair_index();
        let n = graph.num_vertices() as u32;
        let registry = ceci_service::GraphRegistry::new();
        let (entry, _) = registry.insert("g", graph);

        for chunk in muts.chunks(muts.len().div_ceil(batches)) {
            let mut adds = Vec::new();
            let mut dels = Vec::new();
            let snapshot = entry.graph();
            for &(a, b, is_add) in chunk {
                let (a, b) = (vid(a % n), vid(b % n));
                if a == b {
                    continue;
                }
                if is_add && !snapshot.has_edge(a, b) {
                    adds.push((a, b));
                } else if !is_add && snapshot.has_edge(a, b) {
                    dels.push((a, b));
                }
            }
            entry.apply_batch(&adds, &dels, usize::MAX, 64).unwrap();
        }

        let mutated = entry.graph();
        let maintained = mutated
            .label_pair_index()
            .expect("maintenance keeps the index alive");
        let mut exact = (*mutated).clone();
        exact.build_label_pair_index();
        let exact = exact.label_pair_index().unwrap();
        for l in 0..mutated.num_labels() {
            for m in 0..mutated.num_labels() {
                prop_assert!(
                    maintained.max_count(lid(l), lid(m)) >= exact.max_count(lid(l), lid(m)),
                    "pair ({l}, {m}): maintained {} < exact {}",
                    maintained.max_count(lid(l), lid(m)),
                    exact.max_count(lid(l), lid(m))
                );
            }
        }

        // End to end: a rejection on the mutated snapshot must imply zero
        // embeddings under brute force.
        let verdict = ceci_query::admission_check(&query, &mutated);
        if verdict.rejected() {
            let plan = QueryPlan::new(query, &mutated);
            let found = enumerate_all(&mutated, plan.query(), plan.symmetry_constraints()).len();
            prop_assert_eq!(found, 0, "filter rejected a satisfiable query on a mutated graph");
        }
    }

    #[test]
    fn matching_orders_do_not_change_results(graph in arb_graph(), query in arb_query()) {
        let mut results = Vec::new();
        for order in [OrderStrategy::Bfs, OrderStrategy::EdgeRank, OrderStrategy::PathRank] {
            let plan = QueryPlan::with_options(query.clone(), &graph, &PlanOptions {
                order,
                ..Default::default()
            });
            let ceci = Ceci::build(&graph, &plan);
            results.push(ceci::core::collect_embeddings(&graph, &plan, &ceci));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }
}
