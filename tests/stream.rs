//! Integration tests for the streaming-mutation subsystem: the temporal
//! edge-list loader, the registry's delta overlay (including compaction),
//! and the differential invariant that patched [`StreamIndex`] counts and
//! running [`batch_delta`] totals stay bit-identical to a from-scratch
//! rebuild at every batch boundary.

use std::collections::BTreeSet;
use std::io::Cursor;

use ceci_core::{batch_delta, count_embeddings, Ceci};
use ceci_graph::extract::extract_query;
use ceci_graph::generators::{erdos_renyi, inject_random_labels};
use ceci_graph::io::{batch_by_timestamp, load_temporal, read_temporal};
use ceci_graph::{vid, Graph, VertexId};
use ceci_query::{QueryGraph, QueryPlan};
use ceci_service::GraphRegistry;
use ceci_stream::StreamIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_graph(n: usize, m: usize, seed: u64) -> Graph {
    inject_random_labels(&erdos_renyi(n, m, seed), 3, seed.wrapping_add(1))
}

fn pattern_plan(graph: &Graph, size: usize, seed: u64) -> QueryPlan {
    let pattern = extract_query(graph, size, seed, 50)
        .expect("extractable query")
        .pattern;
    let query = QueryGraph::from_graph(&pattern).unwrap();
    QueryPlan::new(query, graph)
}

/// From-scratch reference: fresh plan (initial candidates are
/// graph-dependent) + fresh index on the given snapshot.
fn rebuild_count(graph: &Graph, pattern_source: &QueryPlan) -> u64 {
    let query = pattern_source.query().clone();
    let plan = QueryPlan::new(query, graph);
    let ceci = Ceci::build(graph, &plan);
    count_embeddings(graph, &plan, &ceci)
}

/// Undirected edge set of a graph, canonically oriented.
fn edge_set(graph: &Graph) -> BTreeSet<(u32, u32)> {
    let mut set = BTreeSet::new();
    for a in 0..graph.num_vertices() as u32 {
        for &b in graph.neighbors(vid(a)) {
            if a < b.0 {
                set.insert((a, b.0));
            }
        }
    }
    set
}

/// An applicable edge batch: pairs oriented `(lo, hi)` in the vertex space.
type EdgeBatch = (Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>);

/// Random mutation batch against the current edge set: `adds` absent
/// pairs, `dels` present ones.
fn random_batch(
    rng: &mut StdRng,
    n: u32,
    edges: &BTreeSet<(u32, u32)>,
    adds: usize,
    dels: usize,
) -> EdgeBatch {
    let mut add = Vec::new();
    while add.len() < adds {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if !edges.contains(&key) && !add.contains(&(vid(key.0), vid(key.1))) {
            add.push((vid(key.0), vid(key.1)));
        }
    }
    let pool: Vec<(u32, u32)> = edges.iter().copied().collect();
    let mut del = Vec::new();
    while del.len() < dels.min(pool.len()) {
        let &(a, b) = &pool[rng.gen_range(0..pool.len())];
        if !del.contains(&(vid(a), vid(b))) {
            del.push((vid(a), vid(b)));
        }
    }
    (add, del)
}

#[test]
fn temporal_loader_sorts_stably_and_batches_on_timestamps() {
    let file = "# comment\n\
                % also a comment\n\
                3 4 20\n\
                \n\
                0 1 10\n\
                5 6 20\n\
                7 8\n\
                2 3 10\n";
    let edges = read_temporal(Cursor::new(file)).unwrap();
    // Missing timestamp defaults to 0 and sorts first; equal timestamps
    // keep file order (stable sort).
    let got: Vec<(u32, u32, u64)> = edges.iter().map(|e| (e.src.0, e.dst.0, e.ts)).collect();
    assert_eq!(
        got,
        vec![(7, 8, 0), (0, 1, 10), (2, 3, 10), (3, 4, 20), (5, 6, 20),]
    );

    // A batch boundary never splits a timestamp: batch_size 1 still groups
    // the two ts=10 edges (and the two ts=20 edges) together.
    let batches = batch_by_timestamp(&edges, 1);
    let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
    assert_eq!(sizes, vec![1, 2, 2]);
    for batch in &batches {
        let first = batch[0].ts;
        assert!(batch.iter().all(|e| e.ts == first) || batch.len() > 1);
    }

    // Malformed rows fail with the offending line number in the message.
    let err = read_temporal(Cursor::new("0 1 5\nbogus\n")).unwrap_err();
    assert!(err.to_string().contains('2'), "error names line 2: {err}");
}

#[test]
fn temporal_loader_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join(format!("ceci-stream-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.txt");
    std::fs::write(&path, "0 1 1\n2 3 2\n4 5 2\n").unwrap();
    let edges = load_temporal(&path).unwrap();
    assert_eq!(edges.len(), 3);
    assert_eq!(batch_by_timestamp(&edges, 2).len(), 2);

    // A missing file reports the path, not just the raw I/O error.
    let missing = dir.join("nope.txt");
    let err = load_temporal(&missing).unwrap_err();
    assert!(err.to_string().contains("nope.txt"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn registry_overlay_matches_a_reference_edge_set_across_compaction() {
    let graph = small_graph(120, 420, 7);
    let mut reference = edge_set(&graph);
    let registry = GraphRegistry::new();
    let (entry, _) = registry.insert("g", graph);

    let mut rng = StdRng::seed_from_u64(99);
    // Threshold low enough that the sweep compacts at least once.
    let compact_threshold = 40;
    let mut saw_compaction = false;
    for round in 0..8 {
        let (adds, dels) = random_batch(&mut rng, 120, &reference, 12, 6);
        // Re-adding a present edge and re-deleting an absent one must be
        // net-dropped, so shovel a few no-ops in as well.
        let mut noisy_adds = adds.clone();
        if let Some(&(a, b)) = reference.iter().next() {
            noisy_adds.push((vid(a), vid(b)));
        }
        let outcome = entry
            .apply_batch(&noisy_adds, &dels, compact_threshold, 64)
            .unwrap();
        assert_eq!(outcome.added.len(), adds.len(), "no-op add was net-applied");
        assert_eq!(outcome.sub_epoch, round + 1);
        saw_compaction |= outcome.compacted;

        for &(a, b) in &adds {
            reference.insert((a.0.min(b.0), a.0.max(b.0)));
        }
        for &(a, b) in &dels {
            reference.remove(&(a.0.min(b.0), a.0.max(b.0)));
        }
        let snapshot = outcome.new_graph;
        assert_eq!(edge_set(&snapshot), reference, "round {round}");
        assert_eq!(snapshot.num_edges(), reference.len(), "round {round}");
    }
    assert!(saw_compaction, "sweep never hit the compaction threshold");

    // Out-of-range endpoints are rejected wholesale: nothing applied.
    let before = entry.sub_epoch();
    let err = entry
        .apply_batch(&[(vid(0), vid(10_000))], &[], compact_threshold, 64)
        .unwrap_err();
    assert!(err.contains("out of range"), "{err}");
    assert_eq!(entry.sub_epoch(), before);
}

#[test]
fn incremental_maintenance_is_bit_identical_to_rebuild() {
    let graph = small_graph(300, 1_000, 11);
    let registry = GraphRegistry::new();
    let (entry, _) = registry.insert("g", graph);

    // Three live queries of different shapes, each with a patched index
    // and a running total maintained purely through batch deltas.
    let snapshot = entry.graph();
    let mut live: Vec<(QueryPlan, StreamIndex, u64)> = [(3usize, 5u64), (4, 13), (4, 29)]
        .iter()
        .map(|&(size, seed)| {
            let plan = pattern_plan(&snapshot, size, seed);
            let stream = StreamIndex::build(&snapshot, &plan);
            let ceci = stream.materialize(&snapshot, &plan);
            let total = count_embeddings(&snapshot, &plan, &ceci);
            (plan, stream, total)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(4242);
    let mut edges = edge_set(&snapshot);
    for round in 0..6 {
        let (adds, dels) = random_batch(&mut rng, 300, &edges, 30, 10);
        let outcome = entry.apply_batch(&adds, &dels, usize::MAX, 64).unwrap();
        for &(a, b) in &outcome.added {
            edges.insert((a.0.min(b.0), a.0.max(b.0)));
        }
        for &(a, b) in &outcome.deleted {
            edges.remove(&(a.0.min(b.0), a.0.max(b.0)));
        }

        for (plan, stream, total) in &mut live {
            let stats = stream.patch(&outcome.new_graph, plan, &outcome.endpoints);
            assert!(stats.dirty_vertices > 0, "batch touched no vertices");
            let delta = batch_delta(
                &outcome.old_graph,
                &outcome.new_graph,
                plan,
                &outcome.added,
                &outcome.deleted,
            );
            *total = delta.apply_to(*total);

            let expected = rebuild_count(&outcome.new_graph, plan);
            // Repaired index enumerates the same count as a fresh build...
            let repaired = stream.materialize(&outcome.new_graph, plan);
            let repaired_count = count_embeddings(&outcome.new_graph, plan, &repaired);
            assert_eq!(repaired_count, expected, "repair diverged at round {round}");
            // ...and the delta-maintained running total tracks it too.
            assert_eq!(*total, expected, "delta total diverged at round {round}");
        }
    }
}

#[test]
fn single_edge_patches_match_rebuild_on_a_sparse_graph() {
    // Large vertex count relative to the mutation so the repair takes the
    // sparse point-lookup path rather than the dense merge scan.
    let graph = small_graph(2_000, 6_000, 23);
    let registry = GraphRegistry::new();
    let (entry, _) = registry.insert("g", graph);

    let snapshot = entry.graph();
    let plan = pattern_plan(&snapshot, 4, 17);
    let mut stream = StreamIndex::build(&snapshot, &plan);

    // One lone ADDEDGE, then one lone DELEDGE of an existing edge.
    let add = {
        let edges = edge_set(&snapshot);
        let mut rng = StdRng::seed_from_u64(5);
        loop {
            let a = rng.gen_range(0..2_000u32);
            let b = rng.gen_range(0..2_000u32);
            if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                break (vid(a.min(b)), vid(a.max(b)));
            }
        }
    };
    let del = {
        let e = *edge_set(&snapshot).iter().next().unwrap();
        (vid(e.0), vid(e.1))
    };

    for (adds, dels) in [(vec![add], vec![]), (vec![], vec![del])] {
        let outcome = entry.apply_batch(&adds, &dels, usize::MAX, 16).unwrap();
        assert_eq!(outcome.applied(), 1);
        stream.patch(&outcome.new_graph, &plan, &outcome.endpoints);
        let repaired = stream.materialize(&outcome.new_graph, &plan);
        let got = count_embeddings(&outcome.new_graph, &plan, &repaired);
        assert_eq!(got, rebuild_count(&outcome.new_graph, &plan));
    }
}

#[test]
fn maintained_label_pair_index_stays_sound_across_batches() {
    // The clone-and-absorb label-pair maintenance must only ever
    // overestimate: for every label pair the maintained maximum is >= the
    // exact maximum of a fresh rebuild on the mutated graph.
    let mut graph = small_graph(150, 500, 31);
    graph.build_label_pair_index();
    let registry = GraphRegistry::new();
    let (entry, _) = registry.insert("g", graph);

    let mut rng = StdRng::seed_from_u64(8);
    let mut edges = edge_set(&entry.graph());
    for _ in 0..5 {
        let (adds, dels) = random_batch(&mut rng, 150, &edges, 15, 8);
        let outcome = entry.apply_batch(&adds, &dels, usize::MAX, 32).unwrap();
        for &(a, b) in &outcome.added {
            edges.insert((a.0.min(b.0), a.0.max(b.0)));
        }
        for &(a, b) in &outcome.deleted {
            edges.remove(&(a.0.min(b.0), a.0.max(b.0)));
        }

        let maintained = outcome.new_graph.label_pair_index().cloned();
        let maintained = maintained.expect("mutated snapshot keeps its label-pair index");
        let mut exact = (*outcome.new_graph).clone();
        exact.build_label_pair_index();
        let exact = exact.label_pair_index().unwrap();
        let labels = outcome.new_graph.num_labels();
        for l in 0..labels {
            for m in 0..labels {
                let (l, m) = (ceci_graph::lid(l), ceci_graph::lid(m));
                assert!(
                    maintained.max_count(l, m) >= exact.max_count(l, m),
                    "maintained index underestimates pair ({l:?}, {m:?})"
                );
            }
        }
    }
}
