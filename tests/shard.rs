//! Multi-process sharded serving: real `ceci-shard` processes on loopback,
//! driven by the coordinator ([`ceci_service::scatter_match`] directly and
//! through a full `ceci-serve` MATCH), under process-level faults.
//!
//! The contract under test is the cross-process port of the chaos suite's
//! headline: the scattered total is `Σ` per-pivot counts, each a pure
//! function of `(graph, plan, pivot)`, guarded by an epoch-checked
//! first-commit-wins board — so any schedule of SIGKILLs, stalls, and
//! restarts commits counts **bit-identical** to a single-process run.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceci::prelude::*;
use ceci_graph::generators::{attach_pendants, kronecker_default};
use ceci_graph::io;
use ceci_service::{
    scatter_match, start_with_state, validate_shards, Client, CoordConfig, RetryPolicy,
    ServeConfig, ServerState, ShardLiveness, ShardSet,
};

// ---------------------------------------------------------------------------
// Harness: shard binary discovery, process wrapper, scratch files
// ---------------------------------------------------------------------------

/// Locates the `ceci-shard` binary next to the test executable, building it
/// on first use (plain `cargo test` does not build bin targets of other
/// crates before running integration tests).
fn shard_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("ceci-shard");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "-p", "ceci-service", "--bin", "ceci-shard"])
            .status()
            .expect("run cargo build for ceci-shard");
        assert!(status.success(), "building ceci-shard failed");
    }
    assert!(bin.exists(), "ceci-shard binary not found at {bin:?}");
    bin
}

/// One spawned shard process; killed (SIGKILL) on drop.
struct ShardProc {
    child: Child,
    addr: String,
}

impl ShardProc {
    /// Spawns `ceci-shard` and waits for its `listening on <addr>` line.
    fn spawn(graph_path: &Path, extra: &[&str]) -> ShardProc {
        let mut child = Command::new(shard_bin())
            .arg("--graph")
            .arg(graph_path)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ceci-shard");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("shard exited before listening")
                .expect("read shard stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_string();
            }
        };
        ShardProc { child, addr }
    }

    /// Spawns a labeled-edge-list shard with chaos enabled and no socket
    /// timeout (the common configuration for these tests).
    fn spawn_labeled(graph_path: &Path, addr: &str) -> ShardProc {
        ShardProc::spawn(
            graph_path,
            &[
                "--labeled",
                "--addr",
                addr,
                "--chaos",
                "--io-timeout-ms",
                "0",
            ],
        )
    }

    /// SIGKILL — no shutdown handshake, by design.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Polls for process exit up to `wait`; returns the exit code.
    fn wait_exit(&mut self, wait: Duration) -> Option<i32> {
        let t0 = Instant::now();
        while t0.elapsed() < wait {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status.code();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        None
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A per-test scratch directory for graph/query files.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ceci-shard-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write_labeled(&self, name: &str, graph: &Graph) -> PathBuf {
        let path = self.0.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        io::write_labeled(graph, &mut f).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn data() -> Graph {
    let core = kronecker_default(7, 5, 23);
    attach_pendants(&core, 60, 24)
}

fn expected(graph: &Graph, plan: &QueryPlan) -> u64 {
    let ceci = Ceci::build(graph, plan);
    ceci::core::count_embeddings(graph, plan, &ceci)
}

/// Coordinator tunables sized for fast fault detection in a test.
fn fast_coord() -> CoordConfig {
    CoordConfig {
        io_timeout: Duration::from_millis(500),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
            jitter_seed: 7,
        },
        attempt_budget: 2,
        rejoin_interval: Duration::from_millis(50),
        hard_wall: Duration::from_secs(60),
    }
}

fn shard_set(procs: &[&ShardProc]) -> ShardSet {
    ShardSet::new(
        &procs
            .iter()
            .map(|p| p.addr.clone())
            .collect::<Vec<String>>(),
    )
}

/// Grabs a free loopback port by binding an ephemeral listener and
/// releasing it (small race window; fine for tests).
fn free_port() -> u16 {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().port()
}

/// Reads one `STAT <key> <value>` row out of a STATS payload.
fn stat_u64(payload: &[String], key: &str) -> Option<u64> {
    payload.iter().find_map(|l| {
        let (k, v) = l.strip_prefix("STAT ")?.split_once(' ')?;
        if k == key {
            v.parse().ok()
        } else {
            None
        }
    })
}

// ---------------------------------------------------------------------------
// Fault-free differential: counts bit-identical across fleet sizes
// ---------------------------------------------------------------------------

#[test]
fn counts_bit_identical_across_shard_fleets() {
    let graph = data();
    let scratch = Scratch::new("fleet");
    let gpath = scratch.write_labeled("g.graph", &graph);
    for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
        let qg = q.build();
        let qpath = scratch.write_labeled(&format!("{}.graph", q.name()), qg.as_graph());
        let plan = QueryPlan::new(qg, &graph);
        let want = expected(&graph, &plan);
        assert!(want > 0, "{}", q.name());
        for machines in [2usize, 4] {
            let procs: Vec<ShardProc> = (0..machines)
                .map(|_| ShardProc::spawn_labeled(&gpath, "127.0.0.1:0"))
                .collect();
            let set = shard_set(&procs.iter().collect::<Vec<_>>());
            let report = scatter_match(
                &graph,
                &plan,
                qpath.to_str().unwrap(),
                "h",
                &set,
                &fast_coord(),
            );
            assert_eq!(
                report.total,
                want,
                "{} over {machines} shards must be bit-identical",
                q.name()
            );
            assert_eq!(
                report.local_fallback, 0,
                "healthy shards must serve everything"
            );
            assert!(report.shard_commits > 0);
        }
    }
}

// ---------------------------------------------------------------------------
// SIGKILL mid-query: re-scatter to survivors, totals exact
// ---------------------------------------------------------------------------

#[test]
fn sigkill_mid_query_rescatters_and_totals_stay_exact() {
    let graph = data();
    let qg = PaperQuery::Qg1.build();
    let scratch = Scratch::new("kill");
    let gpath = scratch.write_labeled("g.graph", &graph);
    let qpath = scratch.write_labeled("q.graph", qg.as_graph());
    let plan = QueryPlan::new(qg, &graph);
    let want = expected(&graph, &plan);

    let mut victim = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");
    let survivor = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");

    // Stall the victim outright so it never finishes a request, and slow
    // the survivor so the victim's queue is still full of undone work when
    // the SIGKILL lands — recovery *must* re-scatter to keep the total.
    let addr = |p: &ShardProc| p.addr.parse::<std::net::SocketAddr>().unwrap();
    let resp = Client::connect(addr(&victim))
        .unwrap()
        .request("CHAOS STALL 30000")
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let resp = Client::connect(addr(&survivor))
        .unwrap()
        .request("CHAOS STALL 30")
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    let set = ShardSet::new(&[victim.addr.clone(), survivor.addr.clone()]);
    let config = fast_coord();
    let report = std::thread::scope(|scope| {
        let t = scope
            .spawn(|| scatter_match(&graph, &plan, qpath.to_str().unwrap(), "h", &set, &config));
        std::thread::sleep(Duration::from_millis(200));
        victim.kill();
        t.join().unwrap()
    });

    assert_eq!(report.total, want, "counts must survive a SIGKILL");
    assert!(
        report.rescatters >= 1,
        "the dead shard's work must re-scatter: {report:?}"
    );
    assert_eq!(set.shards[0].liveness(), ShardLiveness::Dead);
}

// ---------------------------------------------------------------------------
// Restart rejoin: a replacement process on the same port is re-adopted
// ---------------------------------------------------------------------------

#[test]
fn shard_restart_rejoins_on_same_port_mid_query() {
    let graph = data();
    let qg = PaperQuery::Qg1.build();
    let scratch = Scratch::new("rejoin");
    let gpath = scratch.write_labeled("g.graph", &graph);
    let qpath = scratch.write_labeled("q.graph", qg.as_graph());
    let plan = QueryPlan::new(qg, &graph);
    let want = expected(&graph, &plan);

    let port = free_port();
    let fixed = format!("127.0.0.1:{port}");
    let mut victim = ShardProc::spawn_labeled(&gpath, &fixed);
    let survivor = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");

    // The victim's stall (400ms) is under the driver's io timeout, so its
    // driver completes PREPARE — a *successful* first connect — and then
    // hangs mid-EXEC when the SIGKILL lands. The survivor is slowed enough
    // that the query is still running when the replacement rejoins.
    let addr = |p: &ShardProc| p.addr.parse::<std::net::SocketAddr>().unwrap();
    let resp = Client::connect(addr(&victim))
        .unwrap()
        .request("CHAOS STALL 400")
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let resp = Client::connect(addr(&survivor))
        .unwrap()
        .request("CHAOS STALL 120")
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    let set = ShardSet::new(&[victim.addr.clone(), survivor.addr.clone()]);
    let config = fast_coord();
    let (report, _replacement) = std::thread::scope(|scope| {
        let t = scope
            .spawn(|| scatter_match(&graph, &plan, qpath.to_str().unwrap(), "h", &set, &config));
        // Kill after the victim's driver has prepared (~400ms) and is
        // stalled in its first EXEC, then bring a fresh process up on the
        // same port: SO_REUSEADDR lets it bind through the predecessor's
        // TIME_WAIT, and the driver's rejoin cadence re-adopts it
        // (re-sending PREPARE to the wiped plan store).
        std::thread::sleep(Duration::from_millis(600));
        victim.kill();
        std::thread::sleep(Duration::from_millis(200));
        let replacement = ShardProc::spawn_labeled(&gpath, &fixed);
        (t.join().unwrap(), replacement)
    });

    assert_eq!(report.total, want, "counts must survive kill + restart");
    assert!(
        report.reconnects >= 1,
        "the replacement must have been re-adopted: {report:?}"
    );
}

// ---------------------------------------------------------------------------
// mmap-vs-heap differential across processes
// ---------------------------------------------------------------------------

#[test]
fn mmap_and_heap_shards_count_identically() {
    let graph = data();
    let qg = PaperQuery::Qg1.build();
    let scratch = Scratch::new("mmap");
    let qpath = scratch.write_labeled("q.graph", qg.as_graph());
    let plan = QueryPlan::new(qg, &graph);
    let want = expected(&graph, &plan);
    let bpath = scratch.0.join("g.ceci");
    io::save_binary(&graph, &bpath).unwrap();

    let base = ["--addr", "127.0.0.1:0", "--io-timeout-ms", "0"];
    let mapped = ShardProc::spawn(&bpath, &base);
    let mut heap_args = vec!["--heap"];
    heap_args.extend_from_slice(&base);
    let heap = ShardProc::spawn(&bpath, &heap_args);

    // Each storage mode alone reproduces the single-process count...
    for p in [&mapped, &heap] {
        let set = shard_set(&[p]);
        let report = scatter_match(
            &graph,
            &plan,
            qpath.to_str().unwrap(),
            "h",
            &set,
            &fast_coord(),
        );
        assert_eq!(report.total, want);
        assert_eq!(report.local_fallback, 0);
    }
    // ...and a mixed fleet agrees too.
    let set = shard_set(&[&mapped, &heap]);
    let report = scatter_match(
        &graph,
        &plan,
        qpath.to_str().unwrap(),
        "h",
        &set,
        &fast_coord(),
    );
    assert_eq!(report.total, want, "mixed mmap/heap fleet must agree");
}

// ---------------------------------------------------------------------------
// Full coordinator path: ceci-serve MATCH scatters, STATS reports shards
// ---------------------------------------------------------------------------

#[test]
fn coordinator_match_scatters_and_reports_shards() {
    let graph = data();
    let qg = PaperQuery::Qg3.build();
    let scratch = Scratch::new("serve");
    let gpath = scratch.write_labeled("g.graph", &graph);
    let qpath = scratch.write_labeled("q.graph", qg.as_graph());
    let plan = QueryPlan::new(qg, &graph);
    let want = expected(&graph, &plan);

    let a = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");
    let b = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");
    let state = Arc::new(ServerState::new(ServeConfig {
        shards: vec![a.addr.clone(), b.addr.clone()],
        shard_heartbeat_ms: 50,
        ..ServeConfig::default()
    }));
    validate_shards(state.shards().unwrap(), &state.coord_config()).expect("shards reachable");
    let handle = start_with_state(Arc::clone(&state)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .request(&format!("LOAD g {}", gpath.display()))
        .unwrap();

    let resp = client
        .request(&format!("MATCH g {}", qpath.display()))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field("mode"), Some("SHARDED"));
    assert_eq!(resp.field_u64("count"), Some(want));
    assert_eq!(resp.field_u64("shards"), Some(2));

    // A constrained request keeps the local path (no mode=SHARDED).
    let resp = client
        .request(&format!("MATCH g {} WORKERS 1", qpath.display()))
        .unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field("mode"), None);
    assert_eq!(resp.field_u64("count"), Some(want));

    // STATS carries the shard table; PROM carries the aggregates.
    let resp = client.request("STATS").unwrap();
    assert!(resp.is_ok());
    assert_eq!(stat_u64(&resp.payload, "shards_configured"), Some(2));
    assert_eq!(stat_u64(&resp.payload, "shards_alive"), Some(2));
    let shard_lines: Vec<&String> = resp
        .payload
        .iter()
        .filter(|l| l.starts_with("SHARD "))
        .collect();
    assert_eq!(shard_lines.len(), 2, "{:?}", resp.payload);
    assert!(shard_lines[0].contains("state=alive"), "{shard_lines:?}");
    let resp = client.request("STATS PROM").unwrap();
    let prom = resp.payload.join("\n");
    assert!(prom.contains("ceci_shards_configured 2"), "{prom}");
    assert!(prom.contains("ceci_shard_commits_total"), "{prom}");

    // The heartbeat notices a dead shard.
    drop(a);
    let t0 = Instant::now();
    loop {
        let resp = client.request("STATS").unwrap();
        if stat_u64(&resp.payload, "shards_alive") == Some(1) {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "heartbeat never noticed the dead shard"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Startup validation: typed E_SHARD error, not a panic
// ---------------------------------------------------------------------------

#[test]
fn startup_validation_fails_typed_when_shard_unreachable() {
    // Port 1 on loopback refuses immediately.
    let set = ShardSet::new(&["127.0.0.1:1".to_string()]);
    let mut config = fast_coord();
    config.attempt_budget = 1;
    let err = validate_shards(&set, &config).expect_err("unreachable shard must fail");
    let s = err.to_string();
    assert!(s.starts_with("E_SHARD"), "{s}");
    assert!(s.contains("127.0.0.1:1"), "{s}");
    assert_eq!(set.shards[0].liveness(), ShardLiveness::Dead);
}

// ---------------------------------------------------------------------------
// Process-level chaos: CHAOS EXIT terminates with status 42
// ---------------------------------------------------------------------------

#[test]
fn chaos_exit_terminates_the_shard_process() {
    let graph = data();
    let scratch = Scratch::new("exit");
    let gpath = scratch.write_labeled("g.graph", &graph);
    let mut p = ShardProc::spawn_labeled(&gpath, "127.0.0.1:0");
    let mut c = Client::connect(p.addr.parse::<std::net::SocketAddr>().unwrap()).unwrap();
    let resp = c.request("CHAOS EXIT 50").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(
        p.wait_exit(Duration::from_secs(5)),
        Some(42),
        "CHAOS EXIT must terminate the process with status 42"
    );
}

// ---------------------------------------------------------------------------
// Socket timeouts: idle connections close with a typed E_TIMEOUT
// ---------------------------------------------------------------------------

fn read_all(stream: &mut std::net::TcpStream) -> String {
    let mut buf = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = stream.read_to_string(&mut buf);
    buf
}

#[test]
fn server_and_shard_sockets_time_out_typed() {
    // Server side: a connection that never completes a request line is
    // closed with ERR E_TIMEOUT after io_timeout_ms.
    let state = Arc::new(ServerState::new(ServeConfig {
        io_timeout_ms: 150,
        ..ServeConfig::default()
    }));
    let handle = start_with_state(Arc::clone(&state)).unwrap();
    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.write_all(b"PI").unwrap(); // half a request, never finished
    let got = read_all(&mut s);
    assert!(got.starts_with("ERR E_TIMEOUT"), "{got:?}");
    assert_eq!(state.metrics.timeouts.load(Ordering::Relaxed), 1);
    handle.shutdown();

    // Shard side: same contract.
    let graph = data();
    let scratch = Scratch::new("timeout");
    let gpath = scratch.write_labeled("g.graph", &graph);
    let p = ShardProc::spawn(
        &gpath,
        &[
            "--labeled",
            "--addr",
            "127.0.0.1:0",
            "--io-timeout-ms",
            "150",
        ],
    );
    let mut s = std::net::TcpStream::connect(&p.addr).unwrap();
    let got = read_all(&mut s);
    assert!(got.starts_with("ERR E_TIMEOUT"), "{got:?}");
}
