//! Chaos suite: deterministic fault injection must never change an answer.
//!
//! The contract under test is the headline of the fault work: for any
//! seeded [`FaultPlan`] — crashes pinned to virtual time, stragglers,
//! lost steal messages — the distributed simulation commits **bit-identical
//! match counts** to the fault-free run, because recovery is built on
//! per-pivot ownership epochs and first-commit-wins accounting rather than
//! on trusting any machine to die cleanly. On the serving side, injected
//! worker and build panics must be isolated, typed, and recoverable.

use std::sync::Arc;
use std::time::Duration;

use ceci::distributed::{
    physical::run_physical_with_fault, run_distributed, run_distributed_with_faults, run_physical,
    ClusterConfig, FaultPlan, StorageMode,
};
use ceci::prelude::*;
use ceci_graph::generators::{
    attach_pendants, erdos_renyi, inject_random_labels, kronecker_default,
};
use ceci_graph::io;
use ceci_service::{start_with_state, Client, RetryPolicy, ServeConfig, ServerState};

fn data() -> Graph {
    let core = kronecker_default(9, 6, 42);
    attach_pendants(&core, 400, 43)
}

fn expected(graph: &Graph, plan: &QueryPlan) -> u64 {
    let ceci = Ceci::build(graph, plan);
    ceci::core::count_embeddings(graph, plan, &ceci)
}

// ---------------------------------------------------------------------------
// Distributed simulation under faults
// ---------------------------------------------------------------------------

#[test]
fn crash_recovery_commits_bit_identical_counts() {
    let graph = data();
    for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
        let plan = QueryPlan::new(q.build(), &graph);
        let want = expected(&graph, &plan);
        assert!(want > 0);
        // Machine 1 dies on its first completed cluster; machine 2 dies a
        // little later on its virtual clock. Machine 0 always survives.
        let faults = FaultPlan::new(7)
            .crash(1, Duration::ZERO)
            .crash(2, Duration::from_micros(200));
        for machines in [3usize, 4] {
            for storage in [StorageMode::Replicated, StorageMode::Shared] {
                let config = ClusterConfig {
                    machines,
                    threads_per_machine: 2,
                    storage,
                    ..Default::default()
                };
                let result = run_distributed_with_faults(&graph, &plan, &config, Some(&faults));
                assert_eq!(
                    result.total_embeddings,
                    want,
                    "{} machines={machines} {storage:?}: counts must survive crashes",
                    q.name()
                );
                assert!(
                    result.recovery.crashed_machines >= 1,
                    "at least one crash must actually fire"
                );
                assert!(result.makespan_inflation() >= 1.0);
            }
        }
    }
}

#[test]
fn stragglers_and_steal_loss_preserve_counts() {
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let want = expected(&graph, &plan);
    let faults = FaultPlan::new(99).straggler(0, 8.0).with_steal_loss(0.5);
    let config = ClusterConfig {
        machines: 4,
        threads_per_machine: 2,
        speculation: true,
        ..Default::default()
    };
    let result = run_distributed_with_faults(&graph, &plan, &config, Some(&faults));
    assert_eq!(result.total_embeddings, want);
    // The straggler's modeled time is visibly inflated.
    assert!(result.reports[0].straggle_virtual > Duration::ZERO);
    assert!(result.recovery.straggle_virtual > Duration::ZERO);
}

#[test]
fn fault_seeds_never_change_the_answer() {
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
    let config = ClusterConfig {
        machines: 3,
        threads_per_machine: 2,
        ..Default::default()
    };
    let baseline = run_distributed(&graph, &plan, &config).total_embeddings;
    let mut counts = Vec::new();
    for seed in [1u64, 2, 3] {
        let faults = FaultPlan::new(seed)
            .crash(2, Duration::from_micros(50))
            .straggler(1, 6.0)
            .with_steal_loss(0.3);
        // Same seed twice: the *plan* is deterministic, and the counts are
        // identical both to each other and to the fault-free baseline.
        let a = run_distributed_with_faults(&graph, &plan, &config, Some(&faults));
        let b = run_distributed_with_faults(&graph, &plan, &config, Some(&faults));
        assert_eq!(a.total_embeddings, baseline, "seed {seed}");
        assert_eq!(b.total_embeddings, baseline, "seed {seed} (rerun)");
        counts.push(a.total_embeddings);
    }
    assert!(counts.iter().all(|&c| c == baseline));
}

#[test]
fn physical_fragment_machine_panic_recovers_on_coordinator() {
    let graph = data();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let config = ClusterConfig {
        machines: 4,
        ..Default::default()
    };
    let clean = run_physical(&graph, &plan, &config);
    assert_eq!(clean.recovered_machines, 0);
    let faulted = run_physical_with_fault(&graph, &plan, &config, Some(1));
    assert_eq!(faulted.recovered_machines, 1);
    assert_eq!(
        faulted.total_embeddings, clean.total_embeddings,
        "re-executed fragment must reproduce the machine's exact count"
    );
}

// ---------------------------------------------------------------------------
// Service under injected panics
// ---------------------------------------------------------------------------

/// A per-test scratch directory for graph/query files.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("ceci-chaos-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write_graph(&self, name: &str, graph: &Graph) -> String {
        let path = self.0.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        io::write_labeled(graph, &mut f).unwrap();
        path.display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn small_graph() -> Graph {
    inject_random_labels(&erdos_renyi(200, 600, 5), 3, 6)
}

fn query_from(graph: &Graph, seed: u64) -> Graph {
    ceci_graph::extract::extract_query(graph, 3, seed, 50)
        .expect("extractable query")
        .pattern
}

fn direct_count(graph: &Graph, pattern: &Graph) -> u64 {
    let query = ceci_query::QueryGraph::from_graph(pattern).unwrap();
    let plan = QueryPlan::new(query, graph);
    let ceci = Ceci::build(graph, &plan);
    ceci::core::count_embeddings(graph, &plan, &ceci)
}

fn serve_chaos(
    pool_workers: usize,
    queue_cap: usize,
) -> (ceci_service::ServerHandle, Arc<ServerState>) {
    let state = Arc::new(ServerState::new(ServeConfig {
        pool_workers,
        queue_cap,
        chaos: true,
        ..ServeConfig::default()
    }));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");
    (handle, state)
}

#[test]
fn chaos_is_refused_unless_enabled() {
    let state = Arc::new(ServerState::new(ServeConfig::default()));
    let handle = start_with_state(Arc::clone(&state)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for cmd in ["CHAOS PANIC", "CHAOS BUILDPANIC", "CHAOS DELAY 5"] {
        let resp = client.request(cmd).unwrap();
        assert!(
            resp.terminal.starts_with("ERR E_CHAOS_DISABLED"),
            "{cmd}: {}",
            resp.terminal
        );
    }
    assert_eq!(
        state
            .metrics
            .chaos_injected
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "disabled CHAOS must inject nothing"
    );
    handle.shutdown();
}

#[test]
fn worker_panic_is_isolated_typed_and_survivable() {
    // A single worker: if the respawn were fake, the second request would
    // hang forever instead of completing.
    let (handle, state) = serve_chaos(1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();

    let resp = client.request("CHAOS PANIC").unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_WORKER_DROPPED"),
        "{}",
        resp.terminal
    );
    // The sole worker respawned and keeps serving the data plane.
    let resp = client.request("SLEEP 5").unwrap();
    assert_eq!(resp.terminal, "OK SLEPT 5");
    let resp = client.request("CHAOS DELAY 5").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.worker_drops), 1);
    assert_eq!(g(&state.metrics.panics_caught), 1);
    assert!(g(&state.metrics.chaos_injected) >= 2);
    handle.shutdown();
}

#[test]
fn build_panic_quarantines_key_until_reload() {
    let scratch = Scratch::new("quarantine");
    let graph = small_graph();
    let pattern = query_from(&graph, 11);
    let want = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, state) = serve_chaos(2, 16);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Arm one build panic; the MATCH that triggers it fails typed...
    let resp = client.request("CHAOS BUILDPANIC").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_BUILD_PANIC"),
        "{}",
        resp.terminal
    );
    // ...and retries of the poisoned key fail fast without rebuilding.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_QUARANTINED"),
        "{}",
        resp.terminal
    );
    assert_eq!(state.cache.quarantined_len(), 1);
    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&state.metrics.cache_quarantined), 1);
    assert_eq!(g(&state.metrics.quarantine_hits), 1);
    // A *different* query against the same graph is unaffected.
    let other = query_from(&graph, 23);
    let other_path = scratch.write_graph("q2.graph", &other);
    let resp = client.request(&format!("MATCH g {other_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    // Re-LOAD bumps the epoch: quarantine cleared, the build runs, counts
    // are exact.
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    assert_eq!(state.cache.quarantined_len(), 0, "old epoch swept");
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("count"), Some(want));
    handle.shutdown();
}

#[test]
fn panicked_build_leader_fails_singleflight_waiters_quarantined() {
    // Single-flight failure path: when several identical MATCHes share one
    // in-flight build and the leader's build panics, the leader reports the
    // typed build failure and every waiter fails fast with E_QUARANTINED —
    // nobody retries the poisoned build, nobody hangs.
    let scratch = Scratch::new("sf-panic");
    let graph = small_graph();
    let pattern = query_from(&graph, 31);
    let want = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, state) = serve_chaos(8, 16);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Delay-then-panic: the delay holds the flight gate open long enough
    // for all followers to pile up as waiters, then the build panics.
    let resp = client.request("CHAOS BUILDDELAY 400").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let resp = client.request("CHAOS BUILDPANIC").unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);

    let barrier = Arc::new(std::sync::Barrier::new(4));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let req = format!("MATCH g {query_path}");
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                barrier.wait();
                c.request(&req).unwrap()
            })
        })
        .collect();
    let terminals: Vec<String> = threads
        .into_iter()
        .map(|t| t.join().unwrap().terminal)
        .collect();

    let panics = terminals
        .iter()
        .filter(|t| t.starts_with("ERR E_BUILD_PANIC"))
        .count();
    let quarantined = terminals
        .iter()
        .filter(|t| t.starts_with("ERR E_QUARANTINED"))
        .count();
    assert_eq!(panics, 1, "exactly one leader panics: {terminals:?}");
    assert_eq!(
        quarantined, 3,
        "all waiters fail quarantined: {terminals:?}"
    );

    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(state.metrics.build_latency.count(), 0, "no build completed");
    assert_eq!(g(&state.metrics.cache_quarantined), 1);
    assert!(
        g(&state.metrics.singleflight_waits) >= 1,
        "waiters did wait"
    );

    // Recovery is unchanged from the solo case: re-LOAD sweeps the
    // quarantine and the query builds and counts exactly.
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field_u64("count"), Some(want));
    handle.shutdown();
}

#[test]
fn quarantine_byte_accounting_returns_to_baseline() {
    // Regression: the cache's byte ledger must survive the full quarantine
    // lifecycle without drift — build OK (baseline) → build panic
    // (quarantined, 0 bytes, nothing leaked) → re-LOAD → rebuild → hit,
    // bytes back exactly at baseline.
    let scratch = Scratch::new("qbytes");
    let graph = small_graph();
    let pattern = query_from(&graph, 11);
    let want = direct_count(&graph, &pattern);
    let graph_path = scratch.write_graph("g.graph", &graph);
    let query_path = scratch.write_graph("q.graph", &pattern);

    let (handle, state) = serve_chaos(2, 16);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();

    // Clean build establishes the byte baseline.
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    let baseline = state.cache.bytes();
    assert!(baseline > 0, "a cached index must charge bytes");

    // Arm a build panic; re-LOAD clears the cache so the next MATCH builds.
    client.request("CHAOS BUILDPANIC").unwrap();
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    assert_eq!(state.cache.bytes(), 0, "re-LOAD sweeps the old epoch");
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_BUILD_PANIC"),
        "{}",
        resp.terminal
    );
    assert_eq!(
        state.cache.bytes(),
        0,
        "panicked build must not charge bytes"
    );
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(
        resp.terminal.starts_with("ERR E_QUARANTINED"),
        "{}",
        resp.terminal
    );
    assert_eq!(
        state.cache.bytes(),
        0,
        "quarantined probe must not charge bytes"
    );

    // Re-LOAD again: quarantine cleared, rebuild succeeds, ledger returns
    // exactly to the baseline, and the follow-up MATCH hits.
    client.request(&format!("LOAD g {graph_path}")).unwrap();
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert!(resp.is_ok(), "{}", resp.terminal);
    assert_eq!(resp.field("cache"), Some("MISS"));
    assert_eq!(resp.field_u64("count"), Some(want));
    assert_eq!(
        state.cache.bytes(),
        baseline,
        "byte ledger must return to the pre-quarantine baseline"
    );
    let resp = client.request(&format!("MATCH g {query_path}")).unwrap();
    assert_eq!(resp.field("cache"), Some("HIT"));
    assert_eq!(state.cache.bytes(), baseline);
    handle.shutdown();
}

#[test]
fn client_retry_rides_out_busy_storms() {
    // One worker, one queue slot: two parked delays guarantee BUSY for any
    // immediate third request.
    let (handle, _state) = serve_chaos(1, 1);
    let addr = handle.addr();
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let t = std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.request("CHAOS DELAY 1200").unwrap()
            });
            std::thread::sleep(Duration::from_millis(300));
            t
        })
        .collect();

    let mut probe = Client::connect(addr).unwrap();
    // Without retries the probe bounces...
    let resp = probe.request("SLEEP 1").unwrap();
    assert!(resp.is_busy(), "expected BUSY, got {}", resp.terminal);
    // ...with retries it backs off until a worker frees up.
    let policy = RetryPolicy {
        max_retries: 60,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(200),
        jitter_seed: 1,
    };
    let outcome = probe.request_with_retry("SLEEP 1", &policy).unwrap();
    assert!(outcome.response.is_ok(), "{}", outcome.response.terminal);
    assert!(outcome.attempts > 1, "first attempt must have been BUSY");
    assert_eq!(outcome.reconnects, 0);

    for s in sleepers {
        let r = s.join().unwrap();
        assert!(r.is_ok(), "sleeper got {}", r.terminal);
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Streaming mutations under chaos
// ---------------------------------------------------------------------------

/// Differential sweep of the streaming layer under fault injection: random
/// mutation batches interleaved with injected worker panics, with overlay
/// compaction forced mid-sweep. Every MATCH after every batch must count
/// bit-identically to a from-scratch enumeration of a locally maintained
/// reference copy — panicked workers, repaired caches, and compacted
/// overlays included.
#[test]
fn mutation_sweep_stays_bit_identical_under_worker_panics() {
    use std::collections::BTreeSet;

    let graph = small_graph();
    let pattern = query_from(&graph, 77);
    let state = Arc::new(ServerState::new(ServeConfig {
        chaos: true,
        // Low threshold so the sweep compacts the overlay at least once.
        compact_threshold: 8,
        ..ServeConfig::default()
    }));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");

    let dir = std::env::temp_dir().join(format!("ceci-chaos-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("data.graph");
    let query_path = dir.join("query.graph");
    io::write_labeled(&graph, &mut std::fs::File::create(&graph_path).unwrap()).unwrap();
    io::write_labeled(&pattern, &mut std::fs::File::create(&query_path).unwrap()).unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .request(&format!("LOAD g {}", graph_path.display()))
        .unwrap();

    // Local reference edge set, mirrored batch by batch.
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for a in 0..graph.num_vertices() as u32 {
        for &b in graph.neighbors(vid(a)) {
            if a < b.0 {
                edges.insert((a, b.0));
            }
        }
    }
    let n = graph.num_vertices() as u64;
    let mut x: u64 = 0xC0FFEE;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };

    let mut compacted_once = false;
    for round in 0..10 {
        // A panic right before every third batch: the worker dies, the
        // supervisor respawns it, and the stream state must be untouched.
        if round % 3 == 0 {
            let resp = client.request("CHAOS PANIC").unwrap();
            assert!(
                resp.terminal.starts_with("ERR E_WORKER_DROPPED"),
                "{}",
                resp.terminal
            );
        }

        let add = loop {
            let (a, b) = ((rng() % n) as u32, (rng() % n) as u32);
            if a != b && !edges.contains(&(a.min(b), a.max(b))) {
                break (a.min(b), a.max(b));
            }
        };
        let del = *edges.iter().nth((rng() as usize) % edges.len()).unwrap();
        let resp = client
            .request(&format!(
                "BATCH g +{}:{} -{}:{}",
                add.0, add.1, del.0, del.1
            ))
            .unwrap();
        assert!(resp.is_ok(), "round {round}: {}", resp.terminal);
        assert_eq!(resp.field_u64("added"), Some(1));
        assert_eq!(resp.field_u64("deleted"), Some(1));
        compacted_once |= resp.field_u64("compacted") == Some(1);
        edges.insert(add);
        edges.remove(&del);

        let reference = Graph::new(
            (0..graph.num_vertices() as u32)
                .map(|v| graph.labels(vid(v)).clone())
                .collect(),
            &edges
                .iter()
                .map(|&(a, b)| (vid(a), vid(b)))
                .collect::<Vec<_>>(),
            false,
        );
        let resp = client
            .request(&format!("MATCH g {}", query_path.display()))
            .unwrap();
        assert!(resp.is_ok(), "round {round}: {}", resp.terminal);
        assert_eq!(
            resp.field_u64("count"),
            Some(direct_count(&reference, &pattern)),
            "diverged from reference at round {round}"
        );
    }
    assert!(compacted_once, "sweep never compacted the overlay");

    std::fs::remove_dir_all(&dir).ok();
    handle.shutdown();
}
