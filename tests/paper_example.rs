//! End-to-end check of the paper's Figure 1/3 running example through the
//! public facade: every number the paper states must come out of the
//! pipeline.

use ceci::core::fixtures::paper;
use ceci::prelude::*;

#[test]
fn full_pipeline_reproduces_figure1() {
    let (graph, plan) = paper::figure1();
    let ceci = Ceci::build(&graph, &plan);

    // Pivots and cluster cardinality (§3.3: root cardinality bounds the
    // cluster's embeddings).
    assert_eq!(ceci.pivots().len(), 1);
    assert_eq!(ceci.pivots()[0].0, paper::v(1));
    assert_eq!(ceci.pivots()[0].1, 4);

    // The two embeddings of Figure 1.
    let found = ceci::core::collect_embeddings(&graph, &plan, &ceci);
    assert_eq!(found.len(), 2);
    assert!(found.contains(&vec![
        paper::v(1),
        paper::v(3),
        paper::v(4),
        paper::v(11),
        paper::v(12)
    ]));
    assert!(found.contains(&vec![
        paper::v(1),
        paper::v(5),
        paper::v(6),
        paper::v(13),
        paper::v(14)
    ]));
}

#[test]
fn search_cardinality_reduction_from_intro() {
    // §1: with embedding clusters the search is restricted to candidates
    // connected to the pivot. Matching nodes for u2 under pivot v1 must be
    // {v3, v5} after refinement (v7 pruned), not all four B-labeled
    // vertices.
    let (graph, plan) = paper::figure1();
    let ceci = Ceci::build(&graph, &plan);
    assert_eq!(
        ceci.candidates(paper::u(2)),
        &[paper::v(3), paper::v(5)],
        "refined candidate set of u2"
    );
    // The global (pre-CECI) candidates of u2 are the four B vertices.
    assert_eq!(plan.initial_candidates(paper::u(2)).len(), 4);
    let _ = graph;
}

#[test]
fn parallel_and_sequential_agree_on_the_example() {
    let (graph, plan) = paper::figure1();
    let ceci = Ceci::build(&graph, &plan);
    for strategy in [
        Strategy::Static,
        Strategy::CoarseDynamic,
        Strategy::FineDynamic { beta: 0.2 },
    ] {
        for workers in [1, 2, 4] {
            let result = enumerate_parallel(
                &graph,
                &plan,
                &ceci,
                &ParallelOptions {
                    workers,
                    strategy,
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(result.total_embeddings, 2);
            assert_eq!(result.embeddings.unwrap().len(), 2);
        }
    }
}

#[test]
fn every_baseline_finds_the_figure1_embeddings() {
    use ceci::baselines::*;
    let (graph, plan) = paper::figure1();
    let expected = enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
    assert_eq!(expected.len(), 2);

    let bare = enumerate_bare(
        &graph,
        &plan,
        &BareOptions {
            collect: true,
            ..Default::default()
        },
    );
    assert_eq!(bare.embeddings.unwrap(), expected);

    let psgl = enumerate_psgl(
        &graph,
        &plan,
        &PsglOptions {
            collect: true,
            ..Default::default()
        },
    );
    assert_eq!(psgl.embeddings.unwrap(), expected);

    let turbo = enumerate_turboiso(
        &graph,
        &plan,
        &TurboOptions {
            collect: true,
            ..Default::default()
        },
    );
    assert_eq!(turbo.embeddings.unwrap(), expected);

    let cfl = enumerate_cfl(
        &graph,
        &plan,
        &CflOptions {
            collect: true,
            ..Default::default()
        },
    );
    assert_eq!(cfl.embeddings.unwrap(), expected);

    let dual = enumerate_dualsim(&graph, &plan, &DualSimOptions::default());
    assert_eq!(dual.total_embeddings, 2);
}

#[test]
fn distributed_simulation_on_the_example() {
    let (graph, plan) = paper::figure1();
    for machines in [1, 2, 3] {
        let result = ceci::distributed::run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines,
                threads_per_machine: 2,
                ..Default::default()
            },
        );
        assert_eq!(result.total_embeddings, 2, "machines = {machines}");
    }
}
