//! Cross-engine agreement: CECI (all modes), the bare/PsgL/TurboIso/CFL/
//! DualSim baselines, and the brute-force reference must produce identical
//! result sets on a spread of deterministic random graphs and queries.

use ceci::baselines::*;
use ceci::prelude::*;
use ceci_graph::generators::{
    barabasi_albert, erdos_renyi, inject_random_labels, kronecker_default, watts_strogatz,
};

fn graphs() -> Vec<(String, Graph)> {
    vec![
        ("er_sparse".into(), erdos_renyi(60, 120, 11)),
        ("er_dense".into(), erdos_renyi(40, 240, 22)),
        ("rmat".into(), kronecker_default(7, 6, 33)),
        (
            "er_labeled".into(),
            inject_random_labels(&erdos_renyi(60, 180, 44), 3, 5),
        ),
        ("ba".into(), barabasi_albert(70, 2, 55)),
        ("ws".into(), watts_strogatz(60, 4, 0.2, 66)),
    ]
}

fn queries() -> Vec<(String, QueryGraph)> {
    let mut out: Vec<(String, QueryGraph)> = PaperQuery::ALL
        .iter()
        .map(|q| (q.name().to_string(), q.build()))
        .collect();
    out.push(("path3".into(), ceci_query::catalog::path(3)));
    out.push(("star3".into(), ceci_query::catalog::star(3)));
    out.push((
        "labeled_tri".into(),
        QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2), (2, 0)]).unwrap(),
    ));
    out
}

#[test]
fn all_engines_agree_on_random_graphs() {
    for (gname, graph) in graphs() {
        for (qname, query) in queries() {
            let plan = QueryPlan::new(query.clone(), &graph);
            let expected = enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
            let ctx = format!("{gname}/{qname}");

            // CECI, intersection mode, sequential.
            let ceci = Ceci::build(&graph, &plan);
            let got = ceci::core::collect_embeddings(&graph, &plan, &ceci);
            assert_eq!(got, expected, "ceci-intersect on {ctx}");

            // CECI, edge-verification mode.
            let mut sink = CollectSink::unbounded();
            enumerate_sequential(
                &graph,
                &plan,
                &ceci,
                EnumOptions {
                    verify: VerifyMode::EdgeVerification,
                    ..Default::default()
                },
                &mut sink,
            );
            assert_eq!(
                ceci::core::canonicalize(sink.into_embeddings()),
                expected,
                "ceci-everify on {ctx}"
            );

            // CECI parallel FGD.
            let par = enumerate_parallel(
                &graph,
                &plan,
                &ceci,
                &ParallelOptions {
                    workers: 4,
                    strategy: Strategy::FineDynamic { beta: 0.3 },
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(par.embeddings.unwrap(), expected, "ceci-parallel on {ctx}");

            // Baselines.
            let bare = enumerate_bare(
                &graph,
                &plan,
                &BareOptions {
                    workers: 2,
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(bare.embeddings.unwrap(), expected, "bare on {ctx}");

            let psgl = enumerate_psgl(
                &graph,
                &plan,
                &PsglOptions {
                    workers: 2,
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(psgl.embeddings.unwrap(), expected, "psgl on {ctx}");

            let turbo = enumerate_turboiso(
                &graph,
                &plan,
                &TurboOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(turbo.embeddings.unwrap(), expected, "turboiso on {ctx}");

            let cfl = enumerate_cfl(
                &graph,
                &plan,
                &CflOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(cfl.embeddings.unwrap(), expected, "cfl on {ctx}");

            let dual = enumerate_dualsim(&graph, &plan, &DualSimOptions::default());
            assert_eq!(
                dual.total_embeddings,
                expected.len() as u64,
                "dualsim on {ctx}"
            );

            let boosted = enumerate_boosted(
                &graph,
                &plan,
                &BoostOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(boosted.embeddings.unwrap(), expected, "boosted on {ctx}");
        }
    }
}

#[test]
fn first_k_prefixes_are_valid_everywhere() {
    let graph = kronecker_default(7, 6, 77);
    for (qname, query) in queries() {
        let plan = QueryPlan::new(query, &graph);
        let all = enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
        if all.len() < 3 {
            continue;
        }
        let k = (all.len() / 2).max(1) as u64;
        let ceci = Ceci::build(&graph, &plan);
        let par = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 3,
                limit: Some(k),
                collect: true,
                ..Default::default()
            },
        );
        let got = par.embeddings.unwrap();
        assert_eq!(got.len(), k as usize, "{qname}");
        for emb in &got {
            assert!(
                all.binary_search(emb).is_ok(),
                "{qname}: reported embedding {emb:?} is not in the reference set"
            );
        }
    }
}

#[test]
fn ablation_variants_agree() {
    // Fig 19's cumulative variants all count the same embeddings.
    let graph = inject_random_labels(&erdos_renyi(80, 320, 3), 2, 9);
    let query = PaperQuery::Qg3.build();
    let plan = QueryPlan::new(query, &graph);
    let expected = enumerate_all(&graph, plan.query(), plan.symmetry_constraints()).len() as u64;
    for (build_nte, refine, verify) in [
        (false, false, VerifyMode::EdgeVerification),
        (false, true, VerifyMode::EdgeVerification),
        (true, true, VerifyMode::Intersection),
        (true, false, VerifyMode::Intersection),
    ] {
        let ceci = Ceci::build_with(
            &graph,
            &plan,
            BuildOptions {
                build_nte,
                refine,
                ..BuildOptions::default()
            },
        );
        let mut sink = CountSink::unbounded();
        enumerate_sequential(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                verify,
                ..Default::default()
            },
            &mut sink,
        );
        assert_eq!(
            sink.count(),
            expected,
            "variant nte={build_nte} refine={refine} verify={verify:?}"
        );
    }
}
