//! End-to-end pipelines through the public API: loaders → plan → index →
//! enumeration, plus first-k semantics and the facade prelude.

use ceci::prelude::*;
use ceci_graph::generators::{erdos_renyi, inject_random_labels, kronecker_default};
use ceci_graph::io;

#[test]
fn text_loader_to_enumeration() {
    // A labeled t/v/e file: two A-B-C triangles sharing the A vertex.
    let text = "\
t 5 6
v 0 0 4
v 1 1 2
v 2 2 2
v 3 1 2
v 4 2 2
e 0 1
e 1 2
e 2 0
e 0 3
e 3 4
e 4 0
";
    let graph = io::read_labeled(text.as_bytes()).unwrap();
    let query =
        QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
    let plan = QueryPlan::new(query, &graph);
    let ceci = Ceci::build(&graph, &plan);
    let found = ceci::core::collect_embeddings(&graph, &plan, &ceci);
    assert_eq!(found.len(), 2);
}

#[test]
fn snap_loader_to_triangle_count() {
    let text = "# snap-style\n1 2\n2 3\n3 1\n3 4\n4 5\n5 3\n";
    let graph = io::read_edge_list(text.as_bytes(), false).unwrap();
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    assert_eq!(ceci::core::count_embeddings(&graph, &plan, &ceci), 2);
}

#[test]
fn binary_roundtrip_preserves_results() {
    let graph = inject_random_labels(&erdos_renyi(120, 400, 5), 4, 6);
    let mut buf = Vec::new();
    io::write_binary(&graph, &mut buf).unwrap();
    let graph2 = io::read_binary(&buf[..]).unwrap();
    let query = QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap();
    let plan1 = QueryPlan::new(query.clone(), &graph);
    let plan2 = QueryPlan::new(query, &graph2);
    let c1 = Ceci::build(&graph, &plan1);
    let c2 = Ceci::build(&graph2, &plan2);
    assert_eq!(
        ceci::core::collect_embeddings(&graph, &plan1, &c1),
        ceci::core::collect_embeddings(&graph2, &plan2, &c2)
    );
}

#[test]
fn first_k_returns_exactly_k_valid_embeddings() {
    let graph = kronecker_default(9, 6, 12);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    let total = ceci::core::count_embeddings(&graph, &plan, &ceci);
    assert!(total > 1024, "stand-in too small for the first-1024 check");
    let result = enumerate_parallel(
        &graph,
        &plan,
        &ceci,
        &ParallelOptions {
            workers: 4,
            limit: Some(1024),
            collect: true,
            ..Default::default()
        },
    );
    let got = result.embeddings.unwrap();
    assert_eq!(got.len(), 1024);
    for emb in &got {
        assert!(ceci::core::is_valid_embedding(&graph, &plan, emb));
    }
}

#[test]
fn extracted_queries_always_match_their_witness() {
    let graph = inject_random_labels(&erdos_renyi(200, 700, 8), 6, 9);
    for size in [3usize, 5, 8] {
        let extracted = ceci_graph::extract_query(&graph, size, size as u64, 10).unwrap();
        let query = QueryGraph::from_graph(&extracted.pattern).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let count = ceci::core::count_embeddings(&graph, &plan, &ceci);
        assert!(count >= 1, "size {size}: extracted query must have a match");
    }
}

#[test]
fn empty_result_is_graceful() {
    // A query needing label 9 that the data graph lacks.
    let graph = Graph::unlabeled(10, &[(vid(0), vid(1))]);
    let query = QueryGraph::with_labels(&[lid(9), lid(9)], &[(0, 1)]).unwrap();
    let plan = QueryPlan::new(query, &graph);
    let ceci = Ceci::build(&graph, &plan);
    assert_eq!(ceci.pivots().len(), 0);
    assert_eq!(ceci::core::count_embeddings(&graph, &plan, &ceci), 0);
    let par = enumerate_parallel(&graph, &plan, &ceci, &ParallelOptions::default());
    assert_eq!(par.total_embeddings, 0);
}

#[test]
fn single_vertex_query_counts_label_matches() {
    let graph = inject_random_labels(&erdos_renyi(50, 100, 2), 2, 3);
    let query = QueryGraph::with_labels(&[lid(0)], &[]).unwrap();
    let plan = QueryPlan::new(query, &graph);
    let ceci = Ceci::build(&graph, &plan);
    let count = ceci::core::count_embeddings(&graph, &plan, &ceci);
    // Every label-0 vertex is an embedding.
    assert_eq!(count, graph.vertices_with_label(lid(0)).len() as u64);
}

#[test]
fn nlc_index_does_not_change_results() {
    let plain = inject_random_labels(&erdos_renyi(100, 350, 4), 3, 7);
    let mut indexed = plain.clone();
    indexed.build_nlc_index();
    let query = PaperQuery::Qg3.build();
    let p1 = QueryPlan::new(query.clone(), &plain);
    let p2 = QueryPlan::new(query, &indexed);
    let c1 = Ceci::build(&plain, &p1);
    let c2 = Ceci::build(&indexed, &p2);
    assert_eq!(
        ceci::core::collect_embeddings(&plain, &p1, &c1),
        ceci::core::collect_embeddings(&indexed, &p2, &c2)
    );
}
