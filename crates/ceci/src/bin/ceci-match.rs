//! `ceci-match` — command-line subgraph matching.
//!
//! ```text
//! ceci-match --graph data.graph --query pattern.graph [options]
//!
//!   --graph FILE       data graph (labeled t/v/e format, or SNAP edge list
//!                      with --edge-list)
//!   --query FILE       query graph (labeled t/v/e format)
//!   --edge-list        treat --graph as a SNAP-style edge list (unlabeled)
//!   --directed         mark the edge-list input as directed
//!   --limit K          stop after K embeddings
//!   --workers N        worker threads (default: available cores)
//!   --strategy S       st | cgd | fgd (default fgd)
//!   --beta F           FGD threshold factor (default 0.2)
//!   --order S          bfs | edge-rank | path-rank (default bfs)
//!   --print            print each embedding (default: count only)
//!   --stats            print plan/index reports (EXPLAIN-style)
//!   --estimate N       skip enumeration; estimate the count with N walks
//! ```

use std::process::exit;

use ceci::prelude::*;
use ceci_graph::io;

struct Args {
    graph: String,
    query: String,
    edge_list: bool,
    directed: bool,
    limit: Option<u64>,
    workers: usize,
    strategy: Strategy,
    order: OrderStrategy,
    print: bool,
    stats: bool,
    estimate: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ceci-match --graph FILE --query FILE [--edge-list] [--directed] \
         [--limit K] [--workers N] [--strategy st|cgd|fgd] [--beta F] \
         [--order bfs|edge-rank|path-rank] [--print] [--stats] [--estimate N]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        graph: String::new(),
        query: String::new(),
        edge_list: false,
        directed: false,
        limit: None,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        strategy: Strategy::FineDynamic { beta: 0.2 },
        order: OrderStrategy::Bfs,
        print: false,
        stats: false,
        estimate: None,
    };
    let mut beta = 0.2f64;
    let mut strategy_name = String::from("fgd");
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        raw.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--graph" => args.graph = value(&mut i),
            "--query" => args.query = value(&mut i),
            "--edge-list" => args.edge_list = true,
            "--directed" => args.directed = true,
            "--limit" => args.limit = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--workers" => args.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--strategy" => strategy_name = value(&mut i),
            "--beta" => beta = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--order" => {
                args.order = match value(&mut i).as_str() {
                    "bfs" => OrderStrategy::Bfs,
                    "edge-rank" => OrderStrategy::EdgeRank,
                    "path-rank" => OrderStrategy::PathRank,
                    _ => usage(),
                }
            }
            "--print" => args.print = true,
            "--stats" => args.stats = true,
            "--estimate" => args.estimate = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args.strategy = match strategy_name.as_str() {
        "st" => Strategy::Static,
        "cgd" => Strategy::CoarseDynamic,
        "fgd" => Strategy::FineDynamic { beta },
        _ => usage(),
    };
    if args.graph.is_empty() || args.query.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let t0 = std::time::Instant::now();
    let graph = if args.edge_list {
        io::load_edge_list(&args.graph, args.directed)
    } else {
        io::load_labeled(&args.graph)
    }
    .unwrap_or_else(|e| {
        eprintln!("error loading graph {}: {e}", args.graph);
        exit(1)
    });
    let query_graph = io::load_labeled(&args.query).unwrap_or_else(|e| {
        eprintln!("error loading query {}: {e}", args.query);
        exit(1)
    });
    let query = QueryGraph::from_graph(&query_graph).unwrap_or_else(|e| {
        eprintln!("error: invalid query graph: {e}");
        exit(1)
    });
    let load_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let plan = QueryPlan::with_options(
        query,
        &graph,
        &PlanOptions {
            order: args.order,
            ..Default::default()
        },
    );
    let ceci = Ceci::build(&graph, &plan);
    let build_time = t1.elapsed();

    if args.stats {
        eprint!("{}", ceci::core::explain_plan(&plan, &graph));
        eprint!("{}", ceci::core::explain_index(&ceci, &plan));
    }
    if let Some(walks) = args.estimate {
        let est = ceci::core::estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &ceci::core::estimate::EstimateOptions { walks, seed: 0xE57 },
        );
        let (lo, hi) = est.interval(2.0);
        eprintln!(
            "estimated embeddings: {:.1} ± {:.1} (95% ~ [{:.1}, {:.1}]) from {} walks",
            est.mean, est.std_error, lo, hi, est.walks
        );
        println!("{:.0}", est.mean);
        return;
    }

    let t2 = std::time::Instant::now();
    let result = enumerate_parallel(
        &graph,
        &plan,
        &ceci,
        &ParallelOptions {
            workers: args.workers.max(1),
            strategy: args.strategy,
            limit: args.limit,
            collect: args.print,
            ..Default::default()
        },
    );
    let enum_time = t2.elapsed();

    if args.stats {
        eprintln!(
            "times: load {load_time:?}, build {build_time:?}, enumerate {enum_time:?} \
             ({} work units, {} recursive calls)",
            result.num_units, result.counters.recursive_calls
        );
    }
    if args.print {
        for emb in result.embeddings.as_deref().unwrap_or(&[]) {
            let cells: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" "));
        }
    }
    println!("{}", result.total_embeddings);
}
