//! # CECI — Compact Embedding Cluster Index for Scalable Subgraph Matching
//!
//! A Rust reproduction of Bhattarai, Liu & Huang, SIGMOD 2019. This facade
//! crate re-exports the whole system:
//!
//! * [`graph`] — labeled CSR graphs, loaders, generators ([`ceci_graph`]).
//! * [`query`] — query graphs and preprocessing ([`ceci_query`]).
//! * [`core`] — the CECI index and enumeration engine ([`ceci_core`]).
//! * [`baselines`] — the comparison algorithms ([`ceci_baselines`]).
//! * [`distributed`] — the simulated MPI cluster ([`ceci_distributed`]).
//!
//! ## Quickstart
//!
//! ```
//! use ceci::prelude::*;
//!
//! // A labeled data graph: a triangle A-B-C plus a pendant B vertex.
//! let mut b = GraphBuilder::new();
//! let a = b.add_vertex(lid(0));
//! let x = b.add_vertex(lid(1));
//! let c = b.add_vertex(lid(2));
//! let y = b.add_vertex(lid(1));
//! b.add_edge(a, x);
//! b.add_edge(x, c);
//! b.add_edge(c, a);
//! b.add_edge(a, y);
//! let graph = b.build();
//!
//! // Query: an A-B edge.
//! let query = QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap();
//! let plan = QueryPlan::new(query, &graph);
//! let ceci = Ceci::build(&graph, &plan);
//! let embeddings = collect_embeddings(&graph, &plan, &ceci);
//! assert_eq!(embeddings.len(), 2); // (a, x) and (a, y)
//! ```

pub use ceci_baselines as baselines;
pub use ceci_core as core;
pub use ceci_distributed as distributed;
pub use ceci_graph as graph;
pub use ceci_query as query;

/// Commonly used items, for `use ceci::prelude::*`.
pub mod prelude {
    pub use ceci_core::{
        collect_embeddings, count_embeddings, count_parallel, enumerate_parallel,
        enumerate_parallel_cancellable, enumerate_sequential, BuildOptions, CancelToken, Ceci,
        CollectSink, CountSink, Counters, DeadlineSink, EnumOptions, Enumerator, ParallelOptions,
        Strategy, VerifyMode,
    };
    pub use ceci_distributed::{run_distributed, ClusterConfig, StorageMode};
    pub use ceci_graph::{lid, vid, Graph, GraphBuilder, LabelId, LabelSet, VertexId};
    pub use ceci_query::{OrderStrategy, PaperQuery, PlanOptions, QueryGraph, QueryPlan};
}
