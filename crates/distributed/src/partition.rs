//! Pivot distribution across machines (§5).
//!
//! Cardinality is not available before CECI creation, so machines receive
//! pivots by a light-weight workload estimate: in replicated mode
//! `deg(v) + Σ_{w∈N(v)} deg(w)`, in shared mode `deg(v)` alone — both scaled
//! by `(|V| − v)/|V|` to account for the imbalance automorphism-breaking
//! orders inflict on low-id vertices. Highly overlapping clusters
//! (`J(v_i, v_j) ≥ 0.5` among the largest `top_k`) are co-located so two
//! machines don't redundantly explore the same region, subject to the
//! per-machine workload cap.

use ceci_graph::stats::{pivot_workload_in_memory, pivot_workload_shared};
use ceci_graph::{Graph, VertexId};

use crate::config::{ClusterConfig, StorageMode};

/// The result of distributing pivots: `assignment[m]` = sorted pivots of
/// machine `m`.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Per-machine sorted pivot lists.
    pub assignment: Vec<Vec<VertexId>>,
    /// Estimated workload per machine.
    pub machine_load: Vec<f64>,
    /// Number of pivot groups merged by Jaccard co-location.
    pub merged_groups: usize,
}

/// Light-weight pre-index workload estimate for one pivot under the
/// configured storage mode (see module docs). Shared with the
/// fault-injection layer, which uses the same estimate as the exchange
/// rate for its deterministic virtual-progress clock — so crash points
/// expressed in virtual time line up with the load balancer's view of the
/// work.
pub fn workload_estimate(graph: &Graph, v: VertexId, config: &ClusterConfig) -> f64 {
    let w = match config.storage {
        StorageMode::Replicated => pivot_workload_in_memory(graph, v),
        StorageMode::Shared => pivot_workload_shared(graph, v),
    };
    // Every cluster costs at least something to visit.
    w.max(1.0)
}

/// Jaccard similarity of the neighborhoods of two vertices.
pub fn jaccard(graph: &Graph, a: VertexId, b: VertexId) -> f64 {
    let (na, nb) = (graph.neighbors(a), graph.neighbors(b));
    if na.is_empty() && nb.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = na.len() + nb.len() - inter;
    inter as f64 / union as f64
}

/// Distributes `pivots` over `config.machines` machines.
pub fn distribute_pivots(graph: &Graph, pivots: &[VertexId], config: &ClusterConfig) -> Partition {
    let m = config.machines.max(1);
    let estimate = |v: VertexId| -> f64 { workload_estimate(graph, v, config) };

    // Group pivots: singleton groups, then Jaccard merging among the top-k
    // (replicated mode only — shared mode lacks remote neighborhoods).
    let mut groups: Vec<Vec<VertexId>> = pivots.iter().map(|&v| vec![v]).collect();
    let mut merged_groups = 0usize;
    if config.jaccard_colocation && matches!(config.storage, StorageMode::Replicated) {
        let mut by_load: Vec<usize> = (0..groups.len()).collect();
        by_load.sort_by(|&a, &b| estimate(groups[b][0]).total_cmp(&estimate(groups[a][0])));
        let top: Vec<usize> = by_load.into_iter().take(config.jaccard_top_k).collect();
        // Union-find over the top clusters.
        let mut parent: Vec<usize> = (0..groups.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (ai, &a) in top.iter().enumerate() {
            for &b in top.iter().skip(ai + 1) {
                if jaccard(graph, groups[a][0], groups[b][0]) >= config.jaccard_threshold {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[rb] = ra;
                        merged_groups += 1;
                    }
                }
            }
        }
        let mut merged: std::collections::HashMap<usize, Vec<VertexId>> =
            std::collections::HashMap::new();
        let group_heads: Vec<VertexId> = groups.iter().map(|g| g[0]).collect();
        for (i, &head) in group_heads.iter().enumerate() {
            let root = find(&mut parent, i);
            merged.entry(root).or_default().push(head);
        }
        groups = merged.into_values().collect();
    }

    // Longest-processing-time greedy with a per-machine cap: oversized
    // groups split back into singletons rather than blowing the cap.
    let total: f64 = pivots.iter().map(|&v| estimate(v)).sum();
    let cap = (total / m as f64) * config.max_load_factor;
    let group_load = |g: &[VertexId]| -> f64 { g.iter().map(|&v| estimate(v)).sum() };
    groups.sort_by(|a, b| group_load(b).total_cmp(&group_load(a)));

    let mut assignment: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    let mut machine_load = vec![0.0f64; m];
    let assign =
        |vs: &[VertexId], assignment: &mut Vec<Vec<VertexId>>, machine_load: &mut Vec<f64>| {
            let load: f64 = vs.iter().map(|&v| estimate(v)).sum();
            let target = (0..m)
                .min_by(|&a, &b| machine_load[a].total_cmp(&machine_load[b]))
                .unwrap();
            assignment[target].extend_from_slice(vs);
            machine_load[target] += load;
        };
    for g in &groups {
        let load = group_load(g);
        let lightest = (0..m)
            .map(|i| machine_load[i])
            .fold(f64::INFINITY, f64::min);
        if g.len() > 1 && lightest + load > cap {
            for &v in g {
                assign(&[v], &mut assignment, &mut machine_load);
            }
        } else {
            assign(g, &mut assignment, &mut machine_load);
        }
    }
    for a in &mut assignment {
        a.sort_unstable();
    }
    Partition {
        assignment,
        machine_load,
        merged_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    fn fan_graph() -> Graph {
        let mut edges = Vec::new();
        for i in 1..=30u32 {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..30u32 {
            edges.push((vid(i), vid(i + 1)));
        }
        Graph::unlabeled(31, &edges)
    }

    #[test]
    fn jaccard_basics() {
        let g = fan_graph();
        // Identical neighborhoods → 1.0 (vertex with itself).
        assert!((jaccard(&g, vid(5), vid(5)) - 1.0).abs() < 1e-12);
        // Ring neighbors share the hub: J > 0.
        assert!(jaccard(&g, vid(5), vid(7)) > 0.0);
        let isolated = Graph::unlabeled(2, &[]);
        assert_eq!(jaccard(&isolated, vid(0), vid(1)), 0.0);
    }

    #[test]
    fn all_pivots_assigned_exactly_once() {
        let g = fan_graph();
        let pivots: Vec<VertexId> = g.vertices().collect();
        let cfg = ClusterConfig {
            machines: 4,
            ..Default::default()
        };
        let p = distribute_pivots(&g, &pivots, &cfg);
        assert_eq!(p.assignment.len(), 4);
        let mut all: Vec<VertexId> = p.assignment.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, pivots);
    }

    #[test]
    fn loads_are_roughly_balanced() {
        let g = fan_graph();
        let pivots: Vec<VertexId> = g.vertices().collect();
        let cfg = ClusterConfig {
            machines: 3,
            jaccard_colocation: false,
            ..Default::default()
        };
        let p = distribute_pivots(&g, &pivots, &cfg);
        let max = p.machine_load.iter().cloned().fold(0.0, f64::max);
        let min = p.machine_load.iter().cloned().fold(f64::INFINITY, f64::min);
        // LPT keeps the spread within the largest single item, which here is
        // the hub's big estimate; just sanity-check no machine is empty.
        assert!(min > 0.0, "loads {:?}", p.machine_load);
        assert!(max >= min);
    }

    #[test]
    fn shared_mode_uses_degree_only() {
        let g = fan_graph();
        let pivots: Vec<VertexId> = g.vertices().collect();
        let rep = distribute_pivots(
            &g,
            &pivots,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Replicated,
                jaccard_colocation: false,
                ..Default::default()
            },
        );
        let shared = distribute_pivots(
            &g,
            &pivots,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Shared,
                ..Default::default()
            },
        );
        // Replicated estimates include neighbor degrees → larger loads.
        let rep_total: f64 = rep.machine_load.iter().sum();
        let shared_total: f64 = shared.machine_load.iter().sum();
        assert!(rep_total > shared_total);
    }

    #[test]
    fn colocation_merges_similar_ring_vertices() {
        // A graph with two cliques: members of the same clique have highly
        // overlapping neighborhoods.
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((vid(a), vid(b)));
            }
        }
        for a in 6..12u32 {
            for b in (a + 1)..12 {
                edges.push((vid(a), vid(b)));
            }
        }
        let g = Graph::unlabeled(12, &edges);
        let pivots: Vec<VertexId> = g.vertices().collect();
        let cfg = ClusterConfig {
            machines: 2,
            max_load_factor: 10.0, // don't let the cap split the groups
            ..Default::default()
        };
        let p = distribute_pivots(&g, &pivots, &cfg);
        assert!(p.merged_groups > 0);
        // Clique members end up together: machine of v0 == machine of v1.
        let machine_of = |v: VertexId| {
            p.assignment
                .iter()
                .position(|a| a.contains(&v))
                .expect("assigned")
        };
        assert_eq!(machine_of(vid(0)), machine_of(vid(1)));
        assert_eq!(machine_of(vid(6)), machine_of(vid(7)));
    }
}
