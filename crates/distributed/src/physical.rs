//! Physical decomposition — the paper's stated future work (§8):
//! *"translate the logical decomposition into physical decomposition which
//! enables subgraph listing in trillion edge graphs."*
//!
//! The logical decomposition assigns each machine a set of embedding
//! clusters but still requires the whole data graph (replicated or on
//! shared storage). The physical decomposition exploits a locality fact:
//! every vertex of an embedding in the cluster of pivot `p` lies within
//! `depth(T_q)` hops of `p` (each tree edge moves one hop from an
//! already-reached vertex, and non-tree edges connect vertices already in
//! the ball). A machine therefore only needs the subgraph induced by the
//! union of radius-`depth(T_q)` balls around its pivots — typically a small
//! fraction of a trillion-edge graph.
//!
//! [`extract_fragment`] builds that induced subgraph with dense re-labeled
//! vertex ids plus the pivot translation table; [`run_physical`] distributes
//! pivots, extracts one fragment per machine, runs the ordinary CECI
//! pipeline inside each fragment, and checks the global count invariant.
//!
//! One caveat mirrors the logical design: global candidate *filters* (label
//! frequencies, NLC) look identical inside a fragment because filtering is
//! purely local to a vertex's neighborhood — so per-fragment results equal
//! the full-graph results cluster by cluster.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ceci_core::metrics::Counters;
use ceci_core::sink::CountSink;
use ceci_core::{BuildOptions, Ceci, EnumOptions, Enumerator};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::config::ClusterConfig;
use crate::partition::distribute_pivots;

/// A machine-local graph fragment: the induced subgraph on the union of
/// radius-`radius` balls around the machine's pivots.
#[derive(Debug)]
pub struct Fragment {
    /// The fragment graph with dense local ids.
    pub graph: Graph,
    /// `local_pivots[i]` is the local id of `pivots[i]`.
    pub local_pivots: Vec<VertexId>,
    /// `global_of[local]` = original vertex id (for translating embeddings
    /// back).
    pub global_of: Vec<VertexId>,
    /// Hop radius used for extraction.
    pub radius: usize,
}

impl Fragment {
    /// Translates a fragment-local embedding to global vertex ids.
    pub fn to_global(&self, local: &[VertexId]) -> Vec<VertexId> {
        local.iter().map(|v| self.global_of[v.index()]).collect()
    }

    /// Fraction of the full graph's edges this fragment holds.
    pub fn edge_fraction(&self, full: &Graph) -> f64 {
        if full.num_edges() == 0 {
            return 0.0;
        }
        self.graph.num_edges() as f64 / full.num_edges() as f64
    }
}

/// Extracts the radius-`radius` fragment around `pivots`.
///
/// The extraction BFS stops expanding *from* vertices at distance `radius`,
/// but keeps edges between any two included vertices — exactly the induced
/// subgraph on the ball union, which preserves every embedding rooted at the
/// pivots (tree paths stay inside; non-tree edges connect included
/// vertices).
///
/// # Examples
///
/// ```
/// use ceci_distributed::extract_fragment;
/// use ceci_graph::{vid, Graph};
///
/// // A path 0-1-2-3-4: the radius-1 ball around vertex 2 is {1, 2, 3}.
/// let g = Graph::unlabeled(5, &[
///     (vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(3)), (vid(3), vid(4)),
/// ]);
/// let f = extract_fragment(&g, &[vid(2)], 1);
/// assert_eq!(f.graph.num_vertices(), 3);
/// assert_eq!(f.graph.num_edges(), 2);
/// ```
pub fn extract_fragment(full: &Graph, pivots: &[VertexId], radius: usize) -> Fragment {
    let mut dist: HashMap<VertexId, usize> = HashMap::new();
    let mut order: Vec<VertexId> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &p in pivots {
        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p) {
            e.insert(0);
            order.push(p);
            queue.push_back(p);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        for &nb in full.neighbors(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nb) {
                e.insert(d + 1);
                order.push(nb);
                queue.push_back(nb);
            }
        }
    }
    // Dense relabeling in *ascending global id* order: the automorphism
    // breaking constraints compare data-vertex ids (`map(a) < map(b)`), so
    // the local order must agree with the global order or different
    // fragments would elect different representatives of the same
    // automorphism class (duplicating embeddings across machines).
    order.sort_unstable();
    let local_of: HashMap<VertexId, VertexId> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, VertexId::from_index(i)))
        .collect();
    let mut edges = Vec::new();
    for &v in &order {
        for &nb in full.neighbors(v) {
            if v < nb {
                if let Some(&lnb) = local_of.get(&nb) {
                    edges.push((local_of[&v], lnb));
                }
            }
        }
    }
    let labels = order.iter().map(|&v| full.labels(v).clone()).collect();
    let graph = Graph::new(labels, &edges, full.is_directed_input());
    let local_pivots = pivots.iter().map(|p| local_of[p]).collect();
    Fragment {
        graph,
        local_pivots,
        global_of: order,
        radius,
    }
}

/// Per-machine report of a physical run.
#[derive(Debug)]
pub struct PhysicalMachineReport {
    /// Machine index.
    pub machine: usize,
    /// Assigned pivots.
    pub pivots: usize,
    /// Fragment vertices.
    pub fragment_vertices: usize,
    /// Fragment edges.
    pub fragment_edges: usize,
    /// Fraction of the full graph's edges held locally.
    pub edge_fraction: f64,
    /// Embeddings found in the fragment.
    pub embeddings: u64,
    /// Enumeration counters.
    pub counters: Counters,
    /// Time to extract the fragment.
    pub extract_time: Duration,
    /// Time to build the fragment-local CECI and enumerate.
    pub match_time: Duration,
}

/// Result of a physical-decomposition run.
#[derive(Debug)]
pub struct PhysicalResult {
    /// Per-machine reports.
    pub reports: Vec<PhysicalMachineReport>,
    /// Total embeddings.
    pub total_embeddings: u64,
    /// Largest per-machine edge fraction — the memory headline: how much of
    /// the graph any single machine must hold.
    pub max_edge_fraction: f64,
    /// Machines whose thread panicked and whose pivot set was re-executed
    /// on the coordinator. Counts are unaffected: the machine's whole
    /// assignment reruns from scratch and nothing was committed before.
    pub recovered_machines: usize,
}

/// Runs subgraph listing with physical decomposition: distribute pivots,
/// extract per-machine fragments, match inside each fragment.
///
/// The `plan` must be built against the *full* graph (root selection and
/// initial candidates are global); per-fragment plans pin the same query
/// root and matching order.
pub fn run_physical(full: &Graph, plan: &QueryPlan, config: &ClusterConfig) -> PhysicalResult {
    run_physical_with_fault(full, plan, config, None)
}

/// [`run_physical`] that additionally records a per-machine span timeline
/// (`distributed.machine{m}` with `physical.extract` / `physical.match`
/// children) into `tracer`. Spans are reconstructed post-hoc from the
/// per-machine reports, so the run itself pays zero tracing cost.
pub fn run_physical_traced(
    full: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    tracer: &ceci_trace::Tracer,
) -> PhysicalResult {
    let result = run_physical(full, plan, config);
    for r in &result.reports {
        let extract = r.extract_time.as_nanos() as u64;
        let matching = r.match_time.as_nanos() as u64;
        let machine = tracer.next_span_id();
        tracer.record(ceci_trace::SpanRecord {
            id: machine,
            parent: 0,
            name: "distributed.machine",
            index: Some(r.machine as u32),
            cat: "physical",
            ts_ns: 0,
            dur_ns: (extract + matching).max(1),
            tid: r.machine as u32,
            args: vec![
                ("pivots", r.pivots as u64),
                ("embeddings", r.embeddings),
                ("edge_permille", (r.edge_fraction * 1000.0) as u64),
            ],
        });
        tracer.record(ceci_trace::SpanRecord {
            id: tracer.next_span_id(),
            parent: machine,
            name: "physical.extract",
            index: Some(r.machine as u32),
            cat: "physical",
            ts_ns: 0,
            dur_ns: extract.max(1),
            tid: r.machine as u32,
            args: Vec::new(),
        });
        tracer.record(ceci_trace::SpanRecord {
            id: tracer.next_span_id(),
            parent: machine,
            name: "physical.match",
            index: Some(r.machine as u32),
            cat: "physical",
            ts_ns: extract,
            dur_ns: matching.max(1),
            tid: r.machine as u32,
            args: Vec::new(),
        });
    }
    result
}

/// [`run_physical`] with an injected fragment-machine panic: when
/// `panic_machine` is `Some(m)`, machine `m`'s thread panics before doing
/// any work, exercising the coordinator's recovery path. Exposed for the
/// chaos test suite; production callers use [`run_physical`].
#[doc(hidden)]
pub fn run_physical_with_fault(
    full: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    panic_machine: Option<usize>,
) -> PhysicalResult {
    let pivots = plan.initial_candidates(plan.root()).to_vec();
    let partition = distribute_pivots(full, &pivots, config);
    let radius = plan
        .tree()
        .bfs_order()
        .iter()
        .map(|&u| plan.tree().depth(u))
        .max()
        .unwrap_or(0) as usize;

    // A machine is an OS thread; a panic is this layer's machine failure.
    // The coordinator (this thread) notices the failed join and re-executes
    // the machine's whole pivot set locally. That is exactly-once by
    // construction: a fragment machine publishes results only through its
    // returned report, so a panicked machine published nothing.
    let mut outcomes: Vec<std::thread::Result<PhysicalMachineReport>> =
        Vec::with_capacity(config.machines);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (machine, assigned) in partition.assignment.iter().enumerate() {
            handles.push(scope.spawn(move || {
                if panic_machine == Some(machine) {
                    panic!("injected fragment-machine fault (machine {machine})");
                }
                run_fragment_machine(full, plan, machine, assigned, radius)
            }));
        }
        for h in handles {
            outcomes.push(h.join());
        }
    });
    let mut recovered_machines = 0usize;
    let mut reports: Vec<PhysicalMachineReport> = Vec::with_capacity(outcomes.len());
    for (machine, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(report) => reports.push(report),
            Err(_) => {
                recovered_machines += 1;
                let assigned = &partition.assignment[machine];
                reports.push(run_fragment_machine(full, plan, machine, assigned, radius));
            }
        }
    }
    reports.sort_by_key(|r| r.machine);
    let total_embeddings = reports.iter().map(|r| r.embeddings).sum();
    let max_edge_fraction = reports
        .iter()
        .map(|r| r.edge_fraction)
        .fold(0.0f64, f64::max);
    PhysicalResult {
        reports,
        total_embeddings,
        max_edge_fraction,
        recovered_machines,
    }
}

fn run_fragment_machine(
    full: &Graph,
    plan: &QueryPlan,
    machine: usize,
    assigned: &[VertexId],
    radius: usize,
) -> PhysicalMachineReport {
    let t0 = Instant::now();
    let fragment = extract_fragment(full, assigned, radius);
    let extract_time = t0.elapsed();

    let t1 = Instant::now();
    let mut counters = Counters::default();
    let mut embeddings = 0u64;
    if !assigned.is_empty() {
        // Rebuild the plan inside the fragment, pinning the same query-side
        // decisions (root + order are query-properties; candidates are
        // recomputed locally).
        let local_plan = QueryPlan::from_parts(
            plan.query().clone(),
            plan.root(),
            plan.matching_order().to_vec(),
            &fragment.graph,
            plan.symmetry_constraints().to_vec(),
            plan.symmetry_complete(),
        );
        let mut local_pivots = fragment.local_pivots.clone();
        local_pivots.sort_unstable();
        // Keep only pivots that still pass the local initial filters.
        let initial = local_plan.initial_candidates(local_plan.root());
        local_pivots.retain(|p| initial.binary_search(p).is_ok());
        let ceci = Ceci::build_for_pivots(
            &fragment.graph,
            &local_plan,
            BuildOptions::default(),
            local_pivots,
        );
        let mut enumerator =
            Enumerator::new(&fragment.graph, &local_plan, &ceci, EnumOptions::default());
        let mut sink = CountSink::unbounded();
        for &(pivot, _) in ceci.pivots() {
            enumerator.enumerate_cluster(pivot, &mut sink, &mut counters);
        }
        embeddings = sink.count();
    }
    let match_time = t1.elapsed();
    PhysicalMachineReport {
        machine,
        pivots: assigned.len(),
        fragment_vertices: fragment.graph.num_vertices(),
        fragment_edges: fragment.graph.num_edges(),
        edge_fraction: fragment.edge_fraction(full),
        embeddings,
        counters,
        extract_time,
        match_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::count_embeddings;
    use ceci_graph::generators::{attach_pendants, kronecker_default};
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn data() -> Graph {
        let core = kronecker_default(9, 5, 17);
        attach_pendants(&core, 300, 18)
    }

    fn full_count(graph: &Graph, plan: &QueryPlan) -> u64 {
        let ceci = Ceci::build(graph, plan);
        count_embeddings(graph, plan, &ceci)
    }

    #[test]
    fn fragment_preserves_pivot_balls() {
        let g = data();
        let f = extract_fragment(&g, &[vid(0)], 2);
        // Every fragment edge exists in the full graph under translation.
        for v in f.graph.vertices() {
            let gv = f.global_of[v.index()];
            for &nb in f.graph.neighbors(v) {
                assert!(g.has_edge(gv, f.global_of[nb.index()]));
            }
        }
        // Pivot has the same neighborhood size (radius ≥ 1 keeps them).
        assert_eq!(
            f.graph.degree(f.local_pivots[0]),
            g.degree(vid(0)),
            "radius-2 ball keeps the pivot's full neighborhood"
        );
    }

    #[test]
    fn physical_counts_match_full_run() {
        let g = data();
        for q in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
            let plan = QueryPlan::new(q.build(), &g);
            let want = full_count(&g, &plan);
            for machines in [1usize, 2, 4] {
                let cfg = ClusterConfig {
                    machines,
                    ..Default::default()
                };
                let result = run_physical(&g, &plan, &cfg);
                assert_eq!(
                    result.total_embeddings,
                    want,
                    "{} machines={machines}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn fragments_are_smaller_than_the_graph() {
        let g = data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        let cfg = ClusterConfig {
            machines: 8,
            jaccard_colocation: false,
            ..Default::default()
        };
        let result = run_physical(&g, &plan, &cfg);
        assert_eq!(result.reports.len(), 8);
        // With 8 machines, at least some machine holds well under the whole
        // graph (hub fragments can still be large in a skewed graph).
        let min_frac = result
            .reports
            .iter()
            .map(|r| r.edge_fraction)
            .fold(1.0f64, f64::min);
        assert!(min_frac < 0.9, "min fragment fraction {min_frac}");
        assert!(result.max_edge_fraction <= 1.0);
    }

    #[test]
    fn embedding_translation_roundtrip() {
        let g = data();
        let f = extract_fragment(&g, &[vid(3), vid(5)], 2);
        let local = vec![f.local_pivots[0], f.local_pivots[1]];
        let global = f.to_global(&local);
        assert_eq!(global, vec![vid(3), vid(5)]);
    }

    #[test]
    fn radius_zero_keeps_only_pivots() {
        let g = data();
        let f = extract_fragment(&g, &[vid(0), vid(1)], 0);
        assert_eq!(f.graph.num_vertices(), 2);
    }
}
