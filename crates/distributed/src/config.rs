//! Cluster configuration and cost model for the distributed simulation.

use std::time::Duration;

/// How the data graph is made available to machines (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// Every machine holds the whole graph in memory ("in-memory data
    /// graph"): no IO charges; pivot workload estimates may use neighbor
    /// degrees.
    Replicated,
    /// One copy on a networked (lustre-like) store in CSR format ("shared
    /// data graph"): every adjacency entry touched during CECI construction
    /// and stealing is charged IO latency; workload estimates see only local
    /// degrees.
    Shared,
}

/// Virtual-time cost model for communication and storage. The simulation
/// runs on real threads for CPU work and *accounts* (never sleeps) these
/// latencies, reporting a modeled makespan.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed cost of one MPI-style message (send/recv pair).
    pub msg_latency: Duration,
    /// Marginal cost per pivot id inside an assignment/steal message.
    pub per_pivot_comm: Duration,
    /// Cost per candidate entry fetched from a remote CECI during stealing.
    pub per_entry_comm: Duration,
    /// Cost per adjacency entry read from the shared store.
    pub per_entry_io: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Commodity-cluster ballparks: ~50µs per small message,
            // bandwidth-bound marginal costs per item.
            msg_latency: Duration::from_micros(50),
            per_pivot_comm: Duration::from_nanos(100),
            per_entry_comm: Duration::from_nanos(40),
            per_entry_io: Duration::from_nanos(200),
        }
    }
}

/// Full configuration of a simulated cluster run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Worker threads per machine (the paper runs 4 OpenMP threads per
    /// machine in Figures 16–17).
    pub threads_per_machine: usize,
    /// Storage mode.
    pub storage: StorageMode,
    /// Cost model for comm/IO accounting.
    pub costs: CostModel,
    /// Enable MPI_Get-style work stealing from the machine with the most
    /// unexplored clusters.
    pub work_stealing: bool,
    /// Co-locate highly overlapping clusters (Jaccard ≥ threshold) on the
    /// same machine (replicated mode only).
    pub jaccard_colocation: bool,
    /// Jaccard similarity threshold (paper: 0.5).
    pub jaccard_threshold: f64,
    /// Only the largest this-many clusters participate in similarity
    /// grouping (paper: 1,000).
    pub jaccard_top_k: usize,
    /// Workload cap per machine as a multiple of the mean machine load
    /// ("the total workload does not exceed the maximum allowed workload").
    pub max_load_factor: f64,
    /// Speculatively re-execute uncommitted clusters claimed by straggler
    /// machines (those at or above [`ClusterConfig::straggler_threshold`])
    /// on idle machines. First commit wins — the exactly-once board makes
    /// duplicated speculation harmless to the count.
    pub speculation: bool,
    /// Virtual slowdown factor at which a machine counts as a straggler
    /// and its in-flight clusters become speculation targets.
    pub straggler_threshold: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 4,
            threads_per_machine: 4,
            storage: StorageMode::Replicated,
            costs: CostModel::default(),
            work_stealing: true,
            jaccard_colocation: true,
            jaccard_threshold: 0.5,
            jaccard_top_k: 1000,
            max_load_factor: 1.25,
            speculation: true,
            straggler_threshold: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = ClusterConfig::default();
        assert_eq!(c.jaccard_threshold, 0.5);
        assert_eq!(c.jaccard_top_k, 1000);
        assert_eq!(c.threads_per_machine, 4);
        assert!(c.work_stealing);
    }

    #[test]
    fn cost_model_nonzero() {
        let m = CostModel::default();
        assert!(m.msg_latency > Duration::ZERO);
        assert!(m.per_entry_io > m.per_entry_comm);
    }
}
