//! # ceci-distributed
//!
//! Simulated distributed-memory CECI (paper §5). The paper runs on a
//! 16-node MPI cluster with a lustre file system; this crate reproduces the
//! *system design* on one host:
//!
//! * machines → OS threads (each with its own worker pool),
//! * `MPI_Send`/`MPI_Recv` pivot scatter and `MPI_Get` work stealing →
//!   shared queues with virtual-time communication charges,
//! * replicated in-memory graph vs. shared lustre-like storage → a
//!   [`config::CostModel`] that charges per-entry IO latency in shared mode,
//! * pivot placement → degree-based workload estimates with vertex-id
//!   scaling and Jaccard-similarity cluster co-location.
//!
//! The simulation executes the real algorithms on real threads and reports
//! both the real wall time and a *modeled makespan* that includes the
//! virtual IO/communication time — the quantity Figures 16, 17, and 20 are
//! about.

#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod partition;
pub mod physical;
pub mod run;

pub use config::{ClusterConfig, CostModel, StorageMode};
pub use fault::{CrashFault, FaultPlan, StragglerFault};
pub use partition::{distribute_pivots, jaccard, workload_estimate, Partition};
pub use physical::{extract_fragment, run_physical, run_physical_traced, Fragment, PhysicalResult};
pub use run::{
    run_distributed, run_distributed_traced, run_distributed_with_faults, DistributedResult,
    MachineReport, RecoveryStats,
};
