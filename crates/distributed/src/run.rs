//! The distributed execution simulation (§5).
//!
//! Machines are OS threads (each running `threads_per_machine` worker
//! threads); MPI messages are accounted through the [`crate::config::CostModel`] as virtual
//! time — the simulation never sleeps, it reports a *modeled makespan*
//! `max_m (real compute_m + virtual io_m + virtual comm_m)` alongside the
//! real wall time.
//!
//! Protocol, as in the paper:
//!
//! 1. Pivots are distributed by light-weight workload estimates (see
//!    [`crate::partition`]); each machine builds its own CECI over its
//!    pivots.
//! 2. Machines enumerate their clusters; the per-machine unexplored-cluster
//!    queues are globally visible.
//! 3. An idle machine steals half the queue of the machine with the most
//!    unexplored clusters (the `MPI_Get` emulation), builds a mini-CECI for
//!    the stolen pivots, and continues.
//! 4. Results accumulate to machine 0 (one message per machine).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ceci_core::metrics::{Counters, ThreadTimer};
use ceci_core::sink::CountSink;
use ceci_core::{BuildOptions, Ceci, EnumOptions, Enumerator};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;
use parking_lot::Mutex;

use crate::config::{ClusterConfig, StorageMode};
use crate::partition::distribute_pivots;

/// Per-machine outcome.
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Machine index.
    pub machine: usize,
    /// Pivots originally assigned.
    pub assigned_pivots: usize,
    /// Clusters this machine actually enumerated (own + stolen).
    pub processed_clusters: usize,
    /// Clusters obtained by stealing.
    pub stolen_clusters: usize,
    /// Embeddings found by this machine.
    pub embeddings: u64,
    /// Merged enumeration counters.
    pub counters: Counters,
    /// Real CPU time of local CECI construction.
    pub build_compute: Duration,
    /// Real busy time of enumeration, summed over the machine's threads.
    pub enumerate_busy: Duration,
    /// Virtual IO time (shared-storage adjacency reads).
    pub io_virtual: Duration,
    /// Virtual communication time (pivot messages, steals, result gather).
    pub comm_virtual: Duration,
}

impl MachineReport {
    /// Modeled completion time of this machine: real compute plus virtual
    /// IO and communication, with enumeration spread over its threads.
    pub fn modeled_time(&self, threads_per_machine: usize) -> Duration {
        let threads = threads_per_machine.max(1) as u32;
        self.build_compute + self.enumerate_busy / threads + self.io_virtual + self.comm_virtual
    }
}

/// Aggregate result of a distributed run.
#[derive(Debug)]
pub struct DistributedResult {
    /// Per-machine reports.
    pub reports: Vec<MachineReport>,
    /// Total embeddings across machines.
    pub total_embeddings: u64,
    /// Modeled makespan (max machine modeled time).
    pub makespan: Duration,
    /// Real wall time of the simulation.
    pub wall: Duration,
    /// Pivot groups merged by Jaccard co-location.
    pub merged_groups: usize,
}

impl DistributedResult {
    /// CECI-construction breakdown (Fig 20): total (io, comm, compute)
    /// across machines.
    pub fn build_breakdown(&self) -> (Duration, Duration, Duration) {
        let io = self.reports.iter().map(|r| r.io_virtual).sum();
        let comm = self.reports.iter().map(|r| r.comm_virtual).sum();
        let compute = self.reports.iter().map(|r| r.build_compute).sum();
        (io, comm, compute)
    }
}

/// Virtual-time ledger for one machine (atomics in nanoseconds so worker
/// threads can charge concurrently).
#[derive(Default)]
struct Ledger {
    io_nanos: AtomicU64,
    comm_nanos: AtomicU64,
}

impl Ledger {
    fn charge_io(&self, d: Duration) {
        self.io_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    fn charge_comm(&self, d: Duration) {
        self.comm_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Estimated adjacency entries read while building a CECI: for every table
/// key (an expanded frontier vertex), its full neighbor list was scanned.
fn adjacency_entries_touched(graph: &Graph, plan: &QueryPlan, ceci: &Ceci) -> u64 {
    let mut touched = 0u64;
    for u in plan.query().vertices() {
        if let Some(te) = ceci.te(u) {
            touched += te
                .keys()
                .iter()
                .map(|&k| graph.degree(k) as u64)
                .sum::<u64>();
        }
        for (_, table) in ceci.nte(u) {
            touched += table
                .keys()
                .iter()
                .map(|&k| graph.degree(k) as u64)
                .sum::<u64>();
        }
    }
    touched
}

/// Runs the distributed simulation: counts all embeddings.
pub fn run_distributed(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
) -> DistributedResult {
    assert!(config.machines >= 1 && config.threads_per_machine >= 1);
    let wall_start = Instant::now();
    let pivots = plan.initial_candidates(plan.root()).to_vec();
    let partition = distribute_pivots(graph, &pivots, config);
    let m = config.machines;
    let costs = config.costs;

    // Globally visible unexplored-cluster queues (front = next to run).
    let queues: Vec<Mutex<VecDeque<VertexId>>> = partition
        .assignment
        .iter()
        .map(|p| Mutex::new(p.iter().copied().collect()))
        .collect();
    let ledgers: Vec<Ledger> = (0..m).map(|_| Ledger::default()).collect();

    // Charge the pivot scatter: one message per machine plus marginal cost
    // per pivot.
    for (i, p) in partition.assignment.iter().enumerate() {
        ledgers[i].charge_comm(costs.msg_latency + costs.per_pivot_comm * p.len() as u32);
    }

    let mut reports: Vec<MachineReport> = Vec::with_capacity(m);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for machine in 0..m {
            let queues = &queues;
            let ledgers = &ledgers;
            let partition = &partition;
            handles.push(scope.spawn(move || {
                run_machine(
                    graph,
                    plan,
                    config,
                    machine,
                    partition.assignment[machine].clone(),
                    queues,
                    &ledgers[machine],
                )
            }));
        }
        for h in handles {
            reports.push(h.join().expect("machine thread panicked"));
        }
    });
    reports.sort_by_key(|r| r.machine);

    // Result gather: one message per non-root machine, charged to machine 0.
    ledgers[0].charge_comm(costs.msg_latency * (m.saturating_sub(1)) as u32);
    for (r, ledger) in reports.iter_mut().zip(&ledgers) {
        r.io_virtual = Duration::from_nanos(ledger.io_nanos.load(Ordering::Relaxed));
        r.comm_virtual = Duration::from_nanos(ledger.comm_nanos.load(Ordering::Relaxed));
    }

    let total_embeddings = reports.iter().map(|r| r.embeddings).sum();
    let makespan = reports
        .iter()
        .map(|r| r.modeled_time(config.threads_per_machine))
        .max()
        .unwrap_or(Duration::ZERO);
    DistributedResult {
        reports,
        total_embeddings,
        makespan,
        wall: wall_start.elapsed(),
        merged_groups: partition.merged_groups,
    }
}

fn run_machine(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    machine: usize,
    own_pivots: Vec<VertexId>,
    queues: &[Mutex<VecDeque<VertexId>>],
    ledger: &Ledger,
) -> MachineReport {
    let costs = config.costs;
    // Build the machine-local CECI over the assigned pivots.
    let t0 = Instant::now();
    let local_ceci = Ceci::build_for_pivots(graph, plan, BuildOptions::default(), {
        let mut p = own_pivots.clone();
        p.sort_unstable();
        p
    });
    let build_compute = t0.elapsed();
    if matches!(config.storage, StorageMode::Shared) {
        let touched = adjacency_entries_touched(graph, plan, &local_ceci);
        ledger.charge_io(costs.per_entry_io * touched as u32);
    }

    // Worker threads pull from the machine's queue, stealing when idle.
    // A pivot counts as "stolen" when it is absent from the machine's local
    // CECI — whether it arrived via a direct steal or was parked on the
    // queue by an earlier steal batch.
    let own_set: std::collections::HashSet<VertexId> = own_pivots.iter().copied().collect();
    let processed = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let threads = config.threads_per_machine;
    let mut thread_outcomes: Vec<(Counters, Duration)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let local_ceci = &local_ceci;
        let processed = &processed;
        let stolen = &stolen;
        let own_set = &own_set;
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move || {
                let mut counters = Counters::default();
                let mut busy = Duration::ZERO;
                let mut enumerator =
                    Enumerator::new(graph, plan, local_ceci, EnumOptions::default());
                loop {
                    // Own queue first.
                    let own = queues[machine].lock().pop_front();
                    let pivot = match own {
                        Some(p) => Some(p),
                        None if config.work_stealing => steal(queues, machine),
                        None => None,
                    };
                    let Some(pivot) = pivot else { break };
                    let was_stolen = !own_set.contains(&pivot);
                    processed.fetch_add(1, Ordering::Relaxed);
                    let start = ThreadTimer::start();
                    if was_stolen {
                        stolen.fetch_add(1, Ordering::Relaxed);
                        // A stolen cluster is not in the local CECI: build a
                        // mini index for it and charge the candidate fetch.
                        let mini = Ceci::build_for_pivots(
                            graph,
                            plan,
                            BuildOptions::default(),
                            vec![pivot],
                        );
                        let entries = mini.num_entries() as u32;
                        match config.storage {
                            StorageMode::Replicated => {
                                ledger.charge_comm(
                                    costs.msg_latency + costs.per_entry_comm * entries,
                                );
                            }
                            StorageMode::Shared => {
                                ledger.charge_io(
                                    costs.per_entry_io
                                        * adjacency_entries_touched(graph, plan, &mini) as u32,
                                );
                                ledger.charge_comm(costs.msg_latency);
                            }
                        }
                        let mut mini_enum =
                            Enumerator::new(graph, plan, &mini, EnumOptions::default());
                        let mut sink = CountSink::unbounded();
                        if mini.pivots().iter().any(|&(p, _)| p == pivot) {
                            mini_enum.enumerate_cluster(pivot, &mut sink, &mut counters);
                        }
                    } else {
                        let mut sink = CountSink::unbounded();
                        if local_ceci.pivots().iter().any(|&(p, _)| p == pivot) {
                            enumerator.enumerate_cluster(pivot, &mut sink, &mut counters);
                        }
                    }
                    busy += start.elapsed();
                }
                (counters, busy)
            }));
        }
        for h in handles {
            thread_outcomes.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut counters = Counters::default();
    let mut enumerate_busy = Duration::ZERO;
    for (c, busy) in thread_outcomes {
        counters.merge(&c);
        enumerate_busy += busy;
    }
    MachineReport {
        machine,
        assigned_pivots: own_pivots.len(),
        processed_clusters: processed.load(Ordering::Relaxed) as usize,
        stolen_clusters: stolen.load(Ordering::Relaxed) as usize,
        embeddings: counters.embeddings,
        counters,
        build_compute,
        enumerate_busy,
        io_virtual: Duration::ZERO, // filled in by the caller from ledgers
        comm_virtual: Duration::ZERO,
    }
}

/// Steals one pivot from the victim with the most unexplored clusters,
/// moving (up to) half the victim's remaining queue onto the thief's queue
/// and returning the first stolen pivot.
fn steal(queues: &[Mutex<VecDeque<VertexId>>], thief: usize) -> Option<VertexId> {
    // Pick the victim by queue length (the "maximum number of unexplored
    // clusters" rule).
    let victim = queues
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != thief)
        .max_by_key(|(_, q)| q.lock().len())?
        .0;
    let mut vq = queues[victim].lock();
    let take = vq.len().div_ceil(2);
    if take == 0 {
        return None;
    }
    let mut batch: Vec<VertexId> = Vec::with_capacity(take);
    for _ in 0..take {
        if let Some(p) = vq.pop_back() {
            batch.push(p);
        }
    }
    drop(vq);
    let first = batch[0];
    if batch.len() > 1 {
        let mut tq = queues[thief].lock();
        for &p in &batch[1..] {
            tq.push_back(p);
        }
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::count_embeddings;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn test_graph() -> Graph {
        // Ring + hub: plenty of triangles spread over many clusters.
        let mut edges = Vec::new();
        let n = 40u32;
        for i in 1..=n {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..n {
            edges.push((vid(i), vid(i + 1)));
        }
        edges.push((vid(n), vid(1)));
        Graph::unlabeled(n as usize + 1, &edges)
    }

    fn reference_count(graph: &Graph, plan: &QueryPlan) -> u64 {
        let ceci = Ceci::build(graph, plan);
        count_embeddings(graph, plan, &ceci)
    }

    #[test]
    fn distributed_count_matches_single_machine() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        assert!(expected > 0);
        for machines in [1, 2, 4] {
            for storage in [StorageMode::Replicated, StorageMode::Shared] {
                let cfg = ClusterConfig {
                    machines,
                    threads_per_machine: 2,
                    storage,
                    ..Default::default()
                };
                let result = run_distributed(&graph, &plan, &cfg);
                assert_eq!(
                    result.total_embeddings, expected,
                    "machines={machines} storage={storage:?}"
                );
                assert_eq!(result.reports.len(), machines);
            }
        }
    }

    #[test]
    fn shared_mode_charges_io() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let rep = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Replicated,
                ..Default::default()
            },
        );
        let shared = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Shared,
                jaccard_colocation: false,
                ..Default::default()
            },
        );
        let (io_rep, _, _) = rep.build_breakdown();
        let (io_shared, _, _) = shared.build_breakdown();
        assert_eq!(io_rep, Duration::ZERO);
        assert!(io_shared > Duration::ZERO);
    }

    #[test]
    fn comm_always_charged() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = run_distributed(&graph, &plan, &ClusterConfig::default());
        let (_, comm, compute) = result.build_breakdown();
        assert!(comm > Duration::ZERO);
        assert!(compute > Duration::ZERO);
        assert!(result.makespan > Duration::ZERO);
    }

    #[test]
    fn stealing_can_be_disabled() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            work_stealing: false,
            ..Default::default()
        };
        let result = run_distributed(&graph, &plan, &cfg);
        assert_eq!(result.total_embeddings, expected);
        assert!(result.reports.iter().all(|r| r.stolen_clusters == 0));
    }

    #[test]
    fn report_accounting_consistent() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let result = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                ..Default::default()
            },
        );
        let processed: usize = result.reports.iter().map(|r| r.processed_clusters).sum();
        let assigned: usize = result.reports.iter().map(|r| r.assigned_pivots).sum();
        assert_eq!(processed, assigned, "every cluster runs exactly once");
        let total: u64 = result.reports.iter().map(|r| r.embeddings).sum();
        assert_eq!(total, result.total_embeddings);
    }
}
