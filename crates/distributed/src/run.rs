//! The distributed execution simulation (§5), with deterministic fault
//! injection and exactly-once recovery.
//!
//! Machines are OS threads (each running `threads_per_machine` worker
//! threads); MPI messages are accounted through the [`crate::config::CostModel`] as virtual
//! time — the simulation never sleeps, it reports a *modeled makespan*
//! `max_m (real compute_m + virtual io_m + virtual comm_m)` alongside the
//! real wall time.
//!
//! Protocol, as in the paper:
//!
//! 1. Pivots are distributed by light-weight workload estimates (see
//!    [`crate::partition`]); each machine builds its own CECI over its
//!    pivots.
//! 2. Machines enumerate their clusters; the per-machine unexplored-cluster
//!    queues are globally visible.
//! 3. An idle machine steals half the queue of the machine with the most
//!    unexplored clusters (the `MPI_Get` emulation), builds a mini-CECI for
//!    the stolen pivots, and continues.
//! 4. Results accumulate to machine 0 (one message per machine).
//!
//! ## Fault model and exactly-once recovery
//!
//! [`run_distributed_with_faults`] threads a [`FaultPlan`] through the run:
//! machines crash when their deterministic virtual-progress clock crosses
//! the plan's crash point, stragglers accumulate extra virtual time, and
//! steal messages are lost by seeded draws. Recovery is built on a shared
//! **result board** holding one slot per pivot with an *ownership epoch*
//! and a first-commit-wins tally:
//!
//! * every execution claims the pivot's current epoch before enumerating
//!   and commits `(epoch, count)` after — a commit is accepted only if the
//!   epoch still matches and nothing committed before it;
//! * a crash cancels the machine's in-flight enumerations (their partial
//!   counts are *discarded*, never mixed into a total — see
//!   [`ceci_core::Enumerator::enumerate_cluster_checked`]), bumps the epoch
//!   of everything uncommitted the machine owned, and re-scatters those
//!   pivots to survivors, so late commits from the dead machine are
//!   rejected as stale;
//! * idle machines speculatively re-execute clusters claimed by straggler
//!   machines; duplicated completions are de-duplicated by the board.
//!
//! Because per-pivot cluster counts are independent of *where* the cluster
//! is enumerated (the steal path already relies on this: a per-pivot mini
//! CECI produces the same cluster as the machine-local index), the total is
//! `Σ committed per-pivot counts` and is **bit-identical** under any fault
//! schedule and any thread interleaving — the property `tests/chaos.rs`
//! asserts seed by seed.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceci_core::metrics::{Counters, ThreadTimer};
use ceci_core::{BuildOptions, CancelToken, Ceci, EnumOptions, Enumerator};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;
use ceci_trace::{LocalSpans, SpanRecord, Tracer};
use parking_lot::Mutex;

use crate::config::{ClusterConfig, CostModel, StorageMode};
use crate::fault::FaultPlan;
use crate::partition::{distribute_pivots, workload_estimate};

/// Per-machine outcome.
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Machine index.
    pub machine: usize,
    /// Pivots originally assigned.
    pub assigned_pivots: usize,
    /// Clusters this machine actually enumerated (own + stolen).
    pub processed_clusters: usize,
    /// Clusters obtained by stealing.
    pub stolen_clusters: usize,
    /// Embeddings this machine *committed* to the result board (first
    /// commit wins; equals the enumerated total in fault-free runs).
    pub embeddings: u64,
    /// Merged enumeration counters.
    pub counters: Counters,
    /// Real CPU time of local CECI construction.
    pub build_compute: Duration,
    /// Real busy time of enumeration, summed over the machine's threads.
    pub enumerate_busy: Duration,
    /// Virtual IO time (shared-storage adjacency reads).
    pub io_virtual: Duration,
    /// Virtual communication time (pivot messages, steals, result gather,
    /// recovery re-scatter).
    pub comm_virtual: Duration,
    /// True when the fault plan killed this machine mid-run.
    pub crashed: bool,
    /// Executions whose results were discarded: the cluster crossing the
    /// crash point, in-flight enumerations cancelled by the crash, and
    /// completions landing after it.
    pub lost_clusters: usize,
    /// Clusters this machine committed under a recovery epoch (re-scattered
    /// from a dead machine) or via speculative re-execution.
    pub reexecuted_clusters: usize,
    /// Commits rejected by the board (stale epoch or already committed) —
    /// work that was correctly deduplicated rather than double-counted.
    pub commits_rejected: usize,
    /// Steal requests lost on the wire (each charged one message latency).
    pub steals_lost: usize,
    /// Extra virtual time accumulated through straggler slowdown.
    pub straggle_virtual: Duration,
    /// Virtual communication spent *receiving* recovery re-scatter batches
    /// (also included in `comm_virtual`).
    pub recovery_comm_virtual: Duration,
}

impl MachineReport {
    /// Modeled completion time of this machine: real compute plus virtual
    /// IO, communication, and straggler slowdown, with enumeration spread
    /// over its threads.
    pub fn modeled_time(&self, threads_per_machine: usize) -> Duration {
        let threads = threads_per_machine.max(1) as u32;
        self.build_compute
            + self.enumerate_busy / threads
            + self.io_virtual
            + self.comm_virtual
            + self.straggle_virtual
    }
}

/// Aggregate recovery accounting for one distributed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Machines the fault plan killed.
    pub crashed_machines: usize,
    /// Discarded executions across machines (see
    /// [`MachineReport::lost_clusters`]).
    pub lost_clusters: usize,
    /// Recovery/speculative re-executions that committed.
    pub reexecuted_clusters: usize,
    /// Board-rejected commits (deduplicated work).
    pub commits_rejected: usize,
    /// Steal messages lost on the wire.
    pub steals_lost: usize,
    /// Virtual communication spent on recovery re-scatter.
    pub recovery_comm_virtual: Duration,
    /// Virtual time lost to straggler slowdown.
    pub straggle_virtual: Duration,
}

/// Aggregate result of a distributed run.
#[derive(Debug)]
pub struct DistributedResult {
    /// Per-machine reports.
    pub reports: Vec<MachineReport>,
    /// Total embeddings across machines.
    pub total_embeddings: u64,
    /// Modeled makespan (max machine modeled time).
    pub makespan: Duration,
    /// Real wall time of the simulation.
    pub wall: Duration,
    /// Pivot groups merged by Jaccard co-location.
    pub merged_groups: usize,
    /// Worker threads per machine the run was configured with.
    pub threads_per_machine: usize,
    /// Recovery accounting (all zeros in fault-free runs).
    pub recovery: RecoveryStats,
}

impl DistributedResult {
    /// CECI-construction breakdown (Fig 20): total (io, comm, compute)
    /// across machines.
    pub fn build_breakdown(&self) -> (Duration, Duration, Duration) {
        let io = self.reports.iter().map(|r| r.io_virtual).sum();
        let comm = self.reports.iter().map(|r| r.comm_virtual).sum();
        let compute = self.reports.iter().map(|r| r.build_compute).sum();
        (io, comm, compute)
    }

    /// Makespan inflation caused by faults: the ratio of the modeled
    /// makespan to the makespan with straggle and recovery-communication
    /// overheads stripped out. `1.0` means faults cost nothing (or the run
    /// was fault-free).
    pub fn makespan_inflation(&self) -> f64 {
        let base = self
            .reports
            .iter()
            .map(|r| {
                r.modeled_time(self.threads_per_machine)
                    .saturating_sub(r.straggle_virtual)
                    .saturating_sub(r.recovery_comm_virtual)
            })
            .max()
            .unwrap_or(Duration::ZERO);
        if base.is_zero() {
            return 1.0;
        }
        self.makespan.as_secs_f64() / base.as_secs_f64()
    }
}

/// Virtual-time ledger for one machine (atomics in nanoseconds so worker
/// threads can charge concurrently).
#[derive(Default)]
struct Ledger {
    io_nanos: AtomicU64,
    comm_nanos: AtomicU64,
}

impl Ledger {
    fn charge_io(&self, d: Duration) {
        self.io_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
    fn charge_comm(&self, d: Duration) {
        self.comm_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// One result-board slot: the ownership epoch, current owner, and the
/// first-committed count of a pivot's cluster.
#[derive(Debug)]
struct PivotSlot {
    epoch: u32,
    owner: usize,
    claimed: bool,
    committed: Option<u64>,
}

/// The shared exactly-once result board: one slot per pivot.
///
/// `claim` hands an executor the slot's current epoch; `commit` accepts a
/// count only when that epoch is still current and no count landed first.
/// `rescatter` bumps the epoch of everything uncommitted a dead machine
/// owned, which atomically invalidates any late commit from that machine.
struct ResultBoard {
    slots: Mutex<HashMap<VertexId, PivotSlot>>,
    remaining: AtomicUsize,
}

impl ResultBoard {
    fn new(assignment: &[Vec<VertexId>]) -> Self {
        let mut slots = HashMap::new();
        for (machine, pivots) in assignment.iter().enumerate() {
            for &p in pivots {
                slots.insert(
                    p,
                    PivotSlot {
                        epoch: 0,
                        owner: machine,
                        claimed: false,
                        committed: None,
                    },
                );
            }
        }
        let remaining = slots.len();
        ResultBoard {
            slots: Mutex::new(slots),
            remaining: AtomicUsize::new(remaining),
        }
    }

    /// Takes ownership of `pivot` for execution; returns the current epoch.
    fn claim(&self, pivot: VertexId, machine: usize) -> u32 {
        let mut slots = self.slots.lock();
        let slot = slots
            .get_mut(&pivot)
            .expect("claimed pivot is on the board");
        slot.owner = machine;
        slot.claimed = true;
        slot.epoch
    }

    /// Commits `count` for `pivot` under `epoch`. First commit wins; stale
    /// epochs (bumped by a re-scatter) are rejected. Returns acceptance.
    fn commit(&self, pivot: VertexId, epoch: u32, count: u64) -> bool {
        let mut slots = self.slots.lock();
        let slot = slots
            .get_mut(&pivot)
            .expect("committed pivot is on the board");
        if slot.committed.is_some() || slot.epoch != epoch {
            return false;
        }
        slot.committed = Some(count);
        drop(slots);
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        true
    }

    /// Reassigns queue ownership of stolen/re-scattered pivots (no epoch
    /// change: stealing is a normal transfer, not a recovery event).
    fn transfer(&self, pivots: &[VertexId], to: usize) {
        let mut slots = self.slots.lock();
        for p in pivots {
            if let Some(slot) = slots.get_mut(p) {
                if slot.committed.is_none() {
                    slot.owner = to;
                }
            }
        }
    }

    /// Crash recovery: bumps the epoch of every uncommitted pivot owned by
    /// `dead` (queued *or* in flight) and returns them, sorted, for
    /// redistribution. Late commits from the dead machine now carry a stale
    /// epoch and are rejected.
    fn rescatter(&self, dead: usize) -> Vec<VertexId> {
        let mut slots = self.slots.lock();
        let mut orphans: Vec<VertexId> = slots
            .iter_mut()
            .filter(|(_, s)| s.committed.is_none() && s.owner == dead)
            .map(|(&p, s)| {
                s.epoch += 1;
                s.claimed = false;
                p
            })
            .collect();
        orphans.sort_unstable();
        orphans
    }

    /// Uncommitted, claimed pivots currently owned by `machine` with their
    /// epochs — the speculation targets when `machine` is a straggler.
    fn in_flight_of(&self, machine: usize) -> Vec<(VertexId, u32)> {
        let slots = self.slots.lock();
        let mut v: Vec<(VertexId, u32)> = slots
            .iter()
            .filter(|(_, s)| s.committed.is_none() && s.claimed && s.owner == machine)
            .map(|(&p, s)| (p, s.epoch))
            .collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

/// Per-machine fault/recovery state shared across all machines' workers.
struct MachineState {
    dead: AtomicBool,
    cancel: Arc<CancelToken>,
    virt_nanos: AtomicU64,
    straggle_nanos: AtomicU64,
    lost: AtomicU64,
    reexecuted: AtomicU64,
    commits_rejected: AtomicU64,
    steals_lost: AtomicU64,
    steal_attempts: AtomicU64,
    recovery_comm_nanos: AtomicU64,
}

impl MachineState {
    fn new() -> Self {
        MachineState {
            dead: AtomicBool::new(false),
            cancel: CancelToken::new(),
            virt_nanos: AtomicU64::new(0),
            straggle_nanos: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            reexecuted: AtomicU64::new(0),
            commits_rejected: AtomicU64::new(0),
            steals_lost: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
            recovery_comm_nanos: AtomicU64::new(0),
        }
    }
}

/// Estimated adjacency entries read while building a CECI: for every table
/// key (an expanded frontier vertex), its full neighbor list was scanned.
fn adjacency_entries_touched(graph: &Graph, plan: &QueryPlan, ceci: &Ceci) -> u64 {
    let mut touched = 0u64;
    for u in plan.query().vertices() {
        if let Some(te) = ceci.te(u) {
            touched += te
                .keys()
                .iter()
                .map(|&k| graph.degree(k) as u64)
                .sum::<u64>();
        }
        for (_, table) in ceci.nte(u) {
            touched += table
                .keys()
                .iter()
                .map(|&k| graph.degree(k) as u64)
                .sum::<u64>();
        }
    }
    touched
}

/// Runs the distributed simulation fault-free: counts all embeddings.
pub fn run_distributed(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
) -> DistributedResult {
    run_distributed_with_faults(graph, plan, config, None)
}

/// Runs the distributed simulation under an optional [`FaultPlan`].
///
/// With `faults: None` (or a no-op plan) behaves exactly like
/// [`run_distributed`]. With faults, injected crashes trigger pivot
/// re-scatter with ownership-epoch bumps, stragglers trigger speculative
/// re-execution (when [`ClusterConfig::speculation`] is on), and the total
/// embedding count is guaranteed bit-identical to the fault-free run.
///
/// # Panics
///
/// Panics when the plan fails [`FaultPlan::validate`] (e.g. it crashes
/// every machine, leaving no survivor to recover onto).
pub fn run_distributed_with_faults(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    faults: Option<&FaultPlan>,
) -> DistributedResult {
    run_distributed_traced(graph, plan, config, faults, None)
}

/// [`run_distributed_with_faults`] with an optional [`Tracer`] that records
/// a per-machine timeline: `distributed.machine{m}` summary spans plus
/// scatter / steal / commit / crash / re-scatter instant events, all
/// timestamped on the simulation's **virtual clock** (the same
/// deterministic clock the fault plan uses to trigger crashes). Tracing a
/// fault-free run advances the virtual clock with a unit-cost plan so the
/// timeline is still meaningful; this never changes counts, fault behavior,
/// or recovery accounting.
pub fn run_distributed_traced(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    faults: Option<&FaultPlan>,
    tracer: Option<&Tracer>,
) -> DistributedResult {
    assert!(config.machines >= 1 && config.threads_per_machine >= 1);
    if let Some(f) = faults {
        if let Err(e) = f.validate(config.machines) {
            panic!("invalid fault plan: {e}");
        }
    }
    // A no-op plan is exactly a fault-free run; normalize so the worker
    // loops take the lean path.
    let faults = faults.filter(|f| !f.is_noop());
    // Virtual-clock source for traced fault-free runs (slowdown 1, no
    // crashes): keeps `distributed.*` event timestamps meaningful without
    // enabling any fault machinery.
    let clock_plan = FaultPlan::new(0);

    let wall_start = Instant::now();
    let pivots = plan.initial_candidates(plan.root()).to_vec();
    let partition = distribute_pivots(graph, &pivots, config);
    let m = config.machines;
    let costs = config.costs;

    // Globally visible unexplored-cluster queues (front = next to run).
    let queues: Vec<Mutex<VecDeque<VertexId>>> = partition
        .assignment
        .iter()
        .map(|p| Mutex::new(p.iter().copied().collect()))
        .collect();
    let ledgers: Vec<Ledger> = (0..m).map(|_| Ledger::default()).collect();
    let board = ResultBoard::new(&partition.assignment);
    let states: Vec<MachineState> = (0..m).map(|_| MachineState::new()).collect();

    // Charge the pivot scatter: one message per machine plus marginal cost
    // per pivot.
    for (i, p) in partition.assignment.iter().enumerate() {
        ledgers[i].charge_comm(costs.msg_latency + costs.per_pivot_comm * p.len() as u32);
        if let Some(t) = tracer {
            t.record(SpanRecord {
                id: t.next_span_id(),
                parent: 0,
                name: "distributed.scatter",
                index: Some(i as u32),
                cat: "distributed",
                ts_ns: 0,
                dur_ns: 0,
                tid: i as u32,
                args: vec![("pivots", p.len() as u64)],
            });
        }
    }

    let mut reports: Vec<MachineReport> = Vec::with_capacity(m);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for machine in 0..m {
            let queues = &queues;
            let ledgers = &ledgers;
            let partition = &partition;
            let board = &board;
            let states = &states;
            let clock_plan = &clock_plan;
            handles.push(scope.spawn(move || {
                run_machine(
                    graph,
                    plan,
                    config,
                    machine,
                    partition.assignment[machine].clone(),
                    queues,
                    ledgers,
                    board,
                    states,
                    faults,
                    tracer,
                    clock_plan,
                )
            }));
        }
        for h in handles {
            reports.push(h.join().expect("machine thread panicked"));
        }
    });
    reports.sort_by_key(|r| r.machine);

    // Result gather: one message per non-root machine, charged to machine 0.
    ledgers[0].charge_comm(costs.msg_latency * (m.saturating_sub(1)) as u32);
    for (r, ledger) in reports.iter_mut().zip(&ledgers) {
        r.io_virtual = Duration::from_nanos(ledger.io_nanos.load(Ordering::Relaxed));
        r.comm_virtual = Duration::from_nanos(ledger.comm_nanos.load(Ordering::Relaxed));
    }

    let total_embeddings = reports.iter().map(|r| r.embeddings).sum();
    debug_assert_eq!(
        board.remaining(),
        0,
        "every pivot cluster must be committed exactly once"
    );
    let makespan = reports
        .iter()
        .map(|r| r.modeled_time(config.threads_per_machine))
        .max()
        .unwrap_or(Duration::ZERO);
    let recovery = RecoveryStats {
        crashed_machines: reports.iter().filter(|r| r.crashed).count(),
        lost_clusters: reports.iter().map(|r| r.lost_clusters).sum(),
        reexecuted_clusters: reports.iter().map(|r| r.reexecuted_clusters).sum(),
        commits_rejected: reports.iter().map(|r| r.commits_rejected).sum(),
        steals_lost: reports.iter().map(|r| r.steals_lost).sum(),
        recovery_comm_virtual: reports.iter().map(|r| r.recovery_comm_virtual).sum(),
        straggle_virtual: reports.iter().map(|r| r.straggle_virtual).sum(),
    };
    DistributedResult {
        reports,
        total_embeddings,
        makespan,
        wall: wall_start.elapsed(),
        merged_groups: partition.merged_groups,
        threads_per_machine: config.threads_per_machine,
        recovery,
    }
}

/// Crash recovery: drains the dead machine's queue, bumps the epochs of
/// everything uncommitted it owned, and redistributes those pivots
/// round-robin to alive survivors (charging each survivor the re-scatter
/// message).
fn rescatter_dead_machine(
    dead: usize,
    board: &ResultBoard,
    queues: &[Mutex<VecDeque<VertexId>>],
    states: &[MachineState],
    ledgers: &[Ledger],
    costs: &CostModel,
    tracer: Option<&Tracer>,
) {
    // Drop the dead machine's queued work so thieves can't pick up stale
    // pivots from its queue (the board re-scatter below re-homes them).
    queues[dead].lock().clear();
    let orphans = board.rescatter(dead);
    if orphans.is_empty() {
        return;
    }
    let survivors: Vec<usize> = (0..queues.len())
        .filter(|&i| i != dead && !states[i].dead.load(Ordering::Acquire))
        .collect();
    if survivors.is_empty() {
        return; // validate() forbids this; keep the simulation from wedging
    }
    let mut batches: Vec<Vec<VertexId>> = vec![Vec::new(); survivors.len()];
    for (i, &p) in orphans.iter().enumerate() {
        batches[i % survivors.len()].push(p);
    }
    for (bi, batch) in batches.iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let target = survivors[bi];
        board.transfer(batch, target);
        if let Some(t) = tracer {
            t.record(SpanRecord {
                id: t.next_span_id(),
                parent: 0,
                name: "distributed.rescatter",
                index: Some(dead as u32),
                cat: "distributed",
                ts_ns: states[dead].virt_nanos.load(Ordering::Relaxed),
                dur_ns: 0,
                tid: dead as u32,
                args: vec![("target", target as u64), ("pivots", batch.len() as u64)],
            });
        }
        let charge = costs.msg_latency + costs.per_pivot_comm * batch.len() as u32;
        ledgers[target].charge_comm(charge);
        states[target]
            .recovery_comm_nanos
            .fetch_add(charge.as_nanos() as u64, Ordering::Relaxed);
        let mut q = queues[target].lock();
        for &p in batch {
            q.push_back(p);
        }
    }
}

/// Picks a speculative re-execution target: the smallest-id uncommitted
/// in-flight cluster claimed by an alive straggler machine that this
/// worker has not already attempted.
fn pick_speculation_target(
    board: &ResultBoard,
    states: &[MachineState],
    me: usize,
    config: &ClusterConfig,
    faults: &FaultPlan,
    attempted: &mut HashSet<VertexId>,
) -> Option<(VertexId, u32)> {
    for (machine, state) in states.iter().enumerate() {
        if machine == me
            || state.dead.load(Ordering::Acquire)
            || faults.slowdown_for(machine) < config.straggler_threshold
        {
            continue;
        }
        for (pivot, epoch) in board.in_flight_of(machine) {
            if attempted.insert(pivot) {
                return Some((pivot, epoch));
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn run_machine(
    graph: &Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    machine: usize,
    own_pivots: Vec<VertexId>,
    queues: &[Mutex<VecDeque<VertexId>>],
    ledgers: &[Ledger],
    board: &ResultBoard,
    states: &[MachineState],
    faults: Option<&FaultPlan>,
    tracer: Option<&Tracer>,
    clock_plan: &FaultPlan,
) -> MachineReport {
    let costs = config.costs;
    let ledger = &ledgers[machine];
    let state = &states[machine];
    let crash_at = faults.and_then(|f| f.crash_nanos_for(machine));
    // Reserve the machine's summary-span id up front so worker events can
    // parent onto it even though the span itself (whose duration is the
    // final virtual clock) is recorded last.
    let machine_span = tracer.map(|t| t.next_span_id()).unwrap_or(0);
    let track_virt = faults.is_some() || tracer.is_some();
    // Build the machine-local CECI over the assigned pivots.
    let t0 = Instant::now();
    let local_ceci = Ceci::build_for_pivots(graph, plan, BuildOptions::default(), {
        let mut p = own_pivots.clone();
        p.sort_unstable();
        p
    });
    let build_compute = t0.elapsed();
    if matches!(config.storage, StorageMode::Shared) {
        let touched = adjacency_entries_touched(graph, plan, &local_ceci);
        ledger.charge_io(costs.per_entry_io * touched as u32);
    }

    // Worker threads pull from the machine's queue, stealing when idle.
    // A pivot counts as "stolen" when it is absent from the machine's local
    // CECI — whether it arrived via a direct steal, was parked on the
    // queue by an earlier steal batch, or was re-scattered here by crash
    // recovery.
    let own_set: HashSet<VertexId> = own_pivots.iter().copied().collect();
    let processed = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let committed_sum = AtomicU64::new(0);
    let threads = config.threads_per_machine;
    let mut thread_outcomes: Vec<(Counters, Duration)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let local_ceci = &local_ceci;
        let processed = &processed;
        let stolen = &stolen;
        let committed_sum = &committed_sum;
        let own_set = &own_set;
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move || {
                let mut counters = Counters::default();
                let mut busy = Duration::ZERO;
                // Worker-local span buffer: pushes are plain vector appends;
                // the shared store is touched once, at thread exit.
                let mut spans = tracer.map(|_| LocalSpans::new(1 << 14));
                let mut enumerator =
                    Enumerator::new(graph, plan, local_ceci, EnumOptions::default());
                if faults.is_some() {
                    // Crash cancellation: when this machine dies, in-flight
                    // enumerations unwind and their partial counts are
                    // discarded by `enumerate_cluster_checked`.
                    enumerator.set_cancel(Some(Arc::clone(&state.cancel)));
                }
                let mut speculated: HashSet<VertexId> = HashSet::new();
                loop {
                    if state.dead.load(Ordering::Acquire) {
                        break;
                    }
                    // Own queue first, then stealing, then speculation.
                    let own = queues[machine].lock().pop_front();
                    let mut speculative_epoch: Option<u32> = None;
                    let pivot = match own {
                        Some(p) => Some(p),
                        None => {
                            let stolen_pivot = if config.work_stealing {
                                let got =
                                    steal(queues, machine, board, state, faults, ledger, &costs);
                                if let (Some(p), Some(t), Some(buf)) = (got, tracer, spans.as_mut())
                                {
                                    buf.push(SpanRecord {
                                        id: t.next_span_id(),
                                        parent: machine_span,
                                        name: "distributed.steal",
                                        index: Some(machine as u32),
                                        cat: "distributed",
                                        ts_ns: state.virt_nanos.load(Ordering::Relaxed),
                                        dur_ns: 0,
                                        tid: machine as u32,
                                        args: vec![("pivot", p.0 as u64)],
                                    });
                                }
                                got
                            } else {
                                None
                            };
                            match (stolen_pivot, faults) {
                                (Some(p), _) => Some(p),
                                (None, Some(f)) if config.speculation => {
                                    match pick_speculation_target(
                                        board,
                                        states,
                                        machine,
                                        config,
                                        f,
                                        &mut speculated,
                                    ) {
                                        Some((p, e)) => {
                                            speculative_epoch = Some(e);
                                            Some(p)
                                        }
                                        None => None,
                                    }
                                }
                                _ => None,
                            }
                        }
                    };
                    let Some(pivot) = pivot else {
                        if faults.is_some() && board.remaining() > 0 {
                            // Work may reappear through crash re-scatter;
                            // spin gently until the board settles.
                            std::thread::sleep(Duration::from_micros(50));
                            continue;
                        }
                        break;
                    };
                    // Claim the pivot's current epoch. Speculative runs use
                    // the epoch observed at selection and do *not* take
                    // ownership — the straggler keeps it; first commit wins.
                    let epoch = match speculative_epoch {
                        Some(e) => e,
                        None => board.claim(pivot, machine),
                    };
                    let was_stolen = !own_set.contains(&pivot);
                    processed.fetch_add(1, Ordering::Relaxed);
                    let start = ThreadTimer::start();
                    let outcome: Option<u64> = if was_stolen {
                        stolen.fetch_add(1, Ordering::Relaxed);
                        // A stolen / re-scattered / speculated cluster is not
                        // in the local CECI: build a mini index for it and
                        // charge the candidate fetch.
                        let mini = Ceci::build_for_pivots(
                            graph,
                            plan,
                            BuildOptions::default(),
                            vec![pivot],
                        );
                        let entries = mini.num_entries() as u32;
                        match config.storage {
                            StorageMode::Replicated => {
                                ledger.charge_comm(
                                    costs.msg_latency + costs.per_entry_comm * entries,
                                );
                            }
                            StorageMode::Shared => {
                                ledger.charge_io(
                                    costs.per_entry_io
                                        * adjacency_entries_touched(graph, plan, &mini) as u32,
                                );
                                ledger.charge_comm(costs.msg_latency);
                            }
                        }
                        let mut mini_enum =
                            Enumerator::new(graph, plan, &mini, EnumOptions::default());
                        if faults.is_some() {
                            mini_enum.set_cancel(Some(Arc::clone(&state.cancel)));
                        }
                        if mini.pivots().iter().any(|&(p, _)| p == pivot) {
                            mini_enum.enumerate_cluster_checked(pivot, &mut counters)
                        } else {
                            Some(0)
                        }
                    } else if local_ceci.pivots().iter().any(|&(p, _)| p == pivot) {
                        enumerator.enumerate_cluster_checked(pivot, &mut counters)
                    } else {
                        Some(0)
                    };
                    busy += start.elapsed();

                    // Advance the deterministic virtual-progress clock and
                    // trigger the crash if this completion crosses the
                    // plan's crash point. The crossing cluster is lost.
                    if track_virt {
                        let estimate = workload_estimate(graph, pivot, config);
                        let clock = faults.unwrap_or(clock_plan);
                        let (work, straggle) = clock.virtual_work_nanos(machine, estimate);
                        state.straggle_nanos.fetch_add(straggle, Ordering::Relaxed);
                        let now = state.virt_nanos.fetch_add(work, Ordering::Relaxed) + work;
                        if let Some(crash) = crash_at {
                            if now >= crash {
                                if !state.dead.swap(true, Ordering::AcqRel) {
                                    // First crossing wins: kill the machine,
                                    // cancel siblings, re-scatter orphans.
                                    state.cancel.cancel();
                                    if let (Some(t), Some(buf)) = (tracer, spans.as_mut()) {
                                        buf.push(SpanRecord {
                                            id: t.next_span_id(),
                                            parent: machine_span,
                                            name: "distributed.crash",
                                            index: Some(machine as u32),
                                            cat: "distributed",
                                            ts_ns: now,
                                            dur_ns: 0,
                                            tid: machine as u32,
                                            args: vec![("crash_at_ns", crash)],
                                        });
                                    }
                                    rescatter_dead_machine(
                                        machine, board, queues, states, ledgers, &costs, tracer,
                                    );
                                }
                                state.lost.fetch_add(1, Ordering::Relaxed);
                                if let (Some(t), Some(buf)) = (tracer, spans.as_mut()) {
                                    buf.flush(t);
                                }
                                break;
                            }
                        }
                    }
                    match outcome {
                        Some(count) => {
                            let accepted = board.commit(pivot, epoch, count);
                            if accepted {
                                committed_sum.fetch_add(count, Ordering::Relaxed);
                                if speculative_epoch.is_some() || epoch > 0 {
                                    state.reexecuted.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                state.commits_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            if let (Some(t), Some(buf)) = (tracer, spans.as_mut()) {
                                buf.push(SpanRecord {
                                    id: t.next_span_id(),
                                    parent: machine_span,
                                    name: "distributed.commit",
                                    index: Some(machine as u32),
                                    cat: "distributed",
                                    ts_ns: state.virt_nanos.load(Ordering::Relaxed),
                                    dur_ns: 0,
                                    tid: machine as u32,
                                    args: vec![
                                        ("pivot", pivot.0 as u64),
                                        ("count", count),
                                        ("epoch", epoch as u64),
                                        ("accepted", accepted as u64),
                                        ("speculative", speculative_epoch.is_some() as u64),
                                    ],
                                });
                            }
                        }
                        None => {
                            // Cancelled mid-cluster: the machine died under
                            // us. Discard the partial count; the re-scatter
                            // already re-homed this pivot under a new epoch.
                            state.lost.fetch_add(1, Ordering::Relaxed);
                            if let (Some(t), Some(buf)) = (tracer, spans.as_mut()) {
                                buf.flush(t);
                            }
                            break;
                        }
                    }
                }
                if let (Some(t), Some(mut buf)) = (tracer, spans) {
                    buf.flush(t);
                }
                (counters, busy)
            }));
        }
        for h in handles {
            thread_outcomes.push(h.join().expect("worker thread panicked"));
        }
    });

    let mut counters = Counters::default();
    let mut enumerate_busy = Duration::ZERO;
    for (c, busy) in thread_outcomes {
        counters.merge(&c);
        enumerate_busy += busy;
    }
    if let Some(t) = tracer {
        // The machine's lane on the virtual-time axis: one summary span from
        // virtual t=0 to the machine's final virtual clock, with a build
        // child covering the (wall-clock measured) local index construction.
        let virt_end = states[machine].virt_nanos.load(Ordering::Relaxed);
        let build_ns = build_compute.as_nanos() as u64;
        t.record(SpanRecord {
            id: machine_span,
            parent: 0,
            name: "distributed.machine",
            index: Some(machine as u32),
            cat: "distributed",
            ts_ns: 0,
            dur_ns: virt_end.max(build_ns).max(1),
            tid: machine as u32,
            args: vec![
                ("processed", processed.load(Ordering::Relaxed)),
                ("stolen", stolen.load(Ordering::Relaxed)),
                ("committed", committed_sum.load(Ordering::Relaxed)),
                ("crashed", state.dead.load(Ordering::Acquire) as u64),
                ("lost", state.lost.load(Ordering::Relaxed)),
            ],
        });
        t.record(SpanRecord {
            id: t.next_span_id(),
            parent: machine_span,
            name: "distributed.build",
            index: Some(machine as u32),
            cat: "distributed",
            ts_ns: 0,
            dur_ns: build_ns.max(1),
            tid: machine as u32,
            args: vec![("pivots", own_pivots.len() as u64)],
        });
    }
    MachineReport {
        machine,
        assigned_pivots: own_pivots.len(),
        processed_clusters: processed.load(Ordering::Relaxed) as usize,
        stolen_clusters: stolen.load(Ordering::Relaxed) as usize,
        embeddings: committed_sum.load(Ordering::Relaxed),
        counters,
        build_compute,
        enumerate_busy,
        io_virtual: Duration::ZERO, // filled in by the caller from ledgers
        comm_virtual: Duration::ZERO,
        crashed: state.dead.load(Ordering::Acquire),
        lost_clusters: state.lost.load(Ordering::Relaxed) as usize,
        reexecuted_clusters: state.reexecuted.load(Ordering::Relaxed) as usize,
        commits_rejected: state.commits_rejected.load(Ordering::Relaxed) as usize,
        steals_lost: state.steals_lost.load(Ordering::Relaxed) as usize,
        straggle_virtual: Duration::from_nanos(state.straggle_nanos.load(Ordering::Relaxed)),
        recovery_comm_virtual: Duration::from_nanos(
            state.recovery_comm_nanos.load(Ordering::Relaxed),
        ),
    }
}

/// Steals one pivot from the victim with the most unexplored clusters,
/// moving (up to) half the victim's remaining queue onto the thief's queue
/// and returning the first stolen pivot. Under a fault plan, each steal
/// request first survives deterministic loss draws (a lost request costs
/// one message latency and is retried, up to a bounded number of rounds),
/// and moved pivots change owner on the result board.
fn steal(
    queues: &[Mutex<VecDeque<VertexId>>],
    thief: usize,
    board: &ResultBoard,
    state: &MachineState,
    faults: Option<&FaultPlan>,
    ledger: &Ledger,
    costs: &CostModel,
) -> Option<VertexId> {
    if let Some(f) = faults {
        if f.steal_loss > 0.0 {
            let mut rounds = 0;
            loop {
                let attempt = state.steal_attempts.fetch_add(1, Ordering::Relaxed);
                if !f.steal_lost(thief, attempt) {
                    break;
                }
                // The request vanished on the wire: pay for it, try again.
                state.steals_lost.fetch_add(1, Ordering::Relaxed);
                ledger.charge_comm(costs.msg_latency);
                rounds += 1;
                if rounds >= 16 {
                    return None; // give up this round; the worker loop retries
                }
            }
        }
    }
    // Pick the victim by queue length (the "maximum number of unexplored
    // clusters" rule).
    let victim = queues
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != thief)
        .max_by_key(|(_, q)| q.lock().len())?
        .0;
    let mut vq = queues[victim].lock();
    let take = vq.len().div_ceil(2);
    if take == 0 {
        return None;
    }
    let mut batch: Vec<VertexId> = Vec::with_capacity(take);
    for _ in 0..take {
        if let Some(p) = vq.pop_back() {
            batch.push(p);
        }
    }
    drop(vq);
    board.transfer(&batch, thief);
    let first = batch[0];
    if batch.len() > 1 {
        let mut tq = queues[thief].lock();
        for &p in &batch[1..] {
            tq.push_back(p);
        }
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::count_embeddings;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn test_graph() -> Graph {
        // Ring + hub: plenty of triangles spread over many clusters.
        let mut edges = Vec::new();
        let n = 40u32;
        for i in 1..=n {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..n {
            edges.push((vid(i), vid(i + 1)));
        }
        edges.push((vid(n), vid(1)));
        Graph::unlabeled(n as usize + 1, &edges)
    }

    fn reference_count(graph: &Graph, plan: &QueryPlan) -> u64 {
        let ceci = Ceci::build(graph, plan);
        count_embeddings(graph, plan, &ceci)
    }

    #[test]
    fn distributed_count_matches_single_machine() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        assert!(expected > 0);
        for machines in [1, 2, 4] {
            for storage in [StorageMode::Replicated, StorageMode::Shared] {
                let cfg = ClusterConfig {
                    machines,
                    threads_per_machine: 2,
                    storage,
                    ..Default::default()
                };
                let result = run_distributed(&graph, &plan, &cfg);
                assert_eq!(
                    result.total_embeddings, expected,
                    "machines={machines} storage={storage:?}"
                );
                assert_eq!(result.reports.len(), machines);
                assert_eq!(result.recovery, RecoveryStats::default());
            }
        }
    }

    #[test]
    fn shared_mode_charges_io() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let rep = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Replicated,
                ..Default::default()
            },
        );
        let shared = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                storage: StorageMode::Shared,
                jaccard_colocation: false,
                ..Default::default()
            },
        );
        let (io_rep, _, _) = rep.build_breakdown();
        let (io_shared, _, _) = shared.build_breakdown();
        assert_eq!(io_rep, Duration::ZERO);
        assert!(io_shared > Duration::ZERO);
    }

    #[test]
    fn comm_always_charged() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = run_distributed(&graph, &plan, &ClusterConfig::default());
        let (_, comm, compute) = result.build_breakdown();
        assert!(comm > Duration::ZERO);
        assert!(compute > Duration::ZERO);
        assert!(result.makespan > Duration::ZERO);
    }

    #[test]
    fn stealing_can_be_disabled() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            work_stealing: false,
            ..Default::default()
        };
        let result = run_distributed(&graph, &plan, &cfg);
        assert_eq!(result.total_embeddings, expected);
        assert!(result.reports.iter().all(|r| r.stolen_clusters == 0));
    }

    #[test]
    fn report_accounting_consistent() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let result = run_distributed(
            &graph,
            &plan,
            &ClusterConfig {
                machines: 2,
                ..Default::default()
            },
        );
        let processed: usize = result.reports.iter().map(|r| r.processed_clusters).sum();
        let assigned: usize = result.reports.iter().map(|r| r.assigned_pivots).sum();
        assert_eq!(processed, assigned, "every cluster runs exactly once");
        let total: u64 = result.reports.iter().map(|r| r.embeddings).sum();
        assert_eq!(total, result.total_embeddings);
    }

    #[test]
    fn board_commit_protocol_is_exactly_once() {
        let a = vid(1);
        let board = ResultBoard::new(&[vec![a, vid(2)], vec![vid(3)]]);
        assert_eq!(board.remaining(), 3);
        let e = board.claim(a, 0);
        assert_eq!(e, 0);
        // First commit wins; duplicates and stale epochs are rejected.
        assert!(board.commit(a, e, 7));
        assert!(!board.commit(a, e, 9), "duplicate rejected");
        assert_eq!(board.remaining(), 2);
        // Rescatter bumps epochs of uncommitted pivots owned by the dead
        // machine only.
        let orphans = board.rescatter(0);
        assert_eq!(orphans, vec![vid(2)]);
        let stale = 0;
        assert!(!board.commit(vid(2), stale, 1), "stale epoch rejected");
        let fresh = board.claim(vid(2), 1);
        assert_eq!(fresh, 1);
        assert!(board.commit(vid(2), fresh, 4));
        assert!(board.commit(vid(3), board.claim(vid(3), 1), 5));
        assert_eq!(board.remaining(), 0);
    }

    #[test]
    fn crash_recovery_preserves_counts() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            threads_per_machine: 2,
            ..Default::default()
        };
        // Machine 1 dies after its first completed cluster.
        let fp = FaultPlan::new(11).crash(1, Duration::ZERO);
        let result = run_distributed_with_faults(&graph, &plan, &cfg, Some(&fp));
        assert_eq!(result.total_embeddings, expected, "exactly-once recovery");
        assert_eq!(result.recovery.crashed_machines, 1);
        assert!(result.reports[1].crashed);
        assert!(result.recovery.lost_clusters >= 1);
        assert!(result.makespan_inflation() >= 1.0);
    }

    #[test]
    fn stragglers_and_steal_loss_preserve_counts() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            threads_per_machine: 2,
            ..Default::default()
        };
        let fp = FaultPlan::new(5).straggler(0, 8.0).with_steal_loss(0.4);
        let result = run_distributed_with_faults(&graph, &plan, &cfg, Some(&fp));
        assert_eq!(result.total_embeddings, expected);
        assert!(result.reports[0].straggle_virtual > Duration::ZERO);
        assert!(result.recovery.straggle_virtual > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn all_machines_crashing_is_rejected() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let cfg = ClusterConfig {
            machines: 2,
            ..Default::default()
        };
        let fp = FaultPlan::new(0)
            .crash(0, Duration::ZERO)
            .crash(1, Duration::ZERO);
        run_distributed_with_faults(&graph, &plan, &cfg, Some(&fp));
    }

    #[test]
    fn traced_run_records_machine_timeline_without_changing_totals() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            threads_per_machine: 2,
            ..Default::default()
        };
        let tracer = Tracer::new();
        let result = run_distributed_traced(&graph, &plan, &cfg, None, Some(&tracer));
        assert_eq!(result.total_embeddings, expected);
        let spans = tracer.snapshot();
        assert!(!spans.is_empty());
        // One summary span per machine, each with a build child.
        let machines: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "distributed.machine")
            .collect();
        assert_eq!(machines.len(), cfg.machines);
        for m in &machines {
            assert!(
                spans
                    .iter()
                    .any(|s| s.name == "distributed.build" && s.parent == m.id),
                "machine span {} missing build child",
                m.id
            );
        }
        // Scatter instants cover every machine, and committed counts recorded
        // on accepted commit events sum to the run total.
        let scatters = spans
            .iter()
            .filter(|s| s.name == "distributed.scatter")
            .count();
        assert_eq!(scatters, cfg.machines);
        let committed: u64 = spans
            .iter()
            .filter(|s| s.name == "distributed.commit")
            .filter(|s| s.args.iter().any(|&(k, v)| k == "accepted" && v == 1))
            .map(|s| {
                s.args
                    .iter()
                    .find(|&&(k, _)| k == "count")
                    .map(|&(_, v)| v)
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(committed, expected);
        // The same run without a tracer is bit-identical on counters.
        let plain = run_distributed(&graph, &plan, &cfg);
        let merged_traced = {
            let mut c = Counters::default();
            for r in &result.reports {
                c.merge(&r.counters);
            }
            c
        };
        let merged_plain = {
            let mut c = Counters::default();
            for r in &plain.reports {
                c.merge(&r.counters);
            }
            c
        };
        assert_eq!(merged_traced.embeddings, merged_plain.embeddings);
    }

    #[test]
    fn traced_crash_run_records_crash_and_rescatter() {
        let graph = test_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference_count(&graph, &plan);
        let cfg = ClusterConfig {
            machines: 3,
            threads_per_machine: 2,
            ..Default::default()
        };
        let fp = FaultPlan::new(11).crash(1, Duration::from_nanos(1));
        let tracer = Tracer::new();
        let result = run_distributed_traced(&graph, &plan, &cfg, Some(&fp), Some(&tracer));
        assert_eq!(
            result.total_embeddings, expected,
            "exactly-once under trace"
        );
        let spans = tracer.snapshot();
        assert!(
            spans.iter().any(|s| s.name == "distributed.crash"),
            "crash instant missing"
        );
        assert!(
            spans.iter().any(|s| s.name == "distributed.rescatter"),
            "rescatter instant missing"
        );
    }
}
