//! Deterministic fault injection for the distributed simulation.
//!
//! A [`FaultPlan`] is a *seeded, virtual-time* description of everything
//! that goes wrong during a run: machine crashes pinned to a point on the
//! machine's deterministic virtual-progress clock, straggler slowdown
//! factors that inflate a machine's virtual time (and trigger speculative
//! re-execution on idle peers), and a steal-message loss probability drawn
//! from a counter-indexed hash — never from wall-clock state — so the same
//! plan injects the same faults on every run, on any host, at any thread
//! count.
//!
//! The *consequences* of a fault are still scheduling-dependent (which
//! exact cluster a machine was chewing on when it died depends on the OS
//! scheduler), which is precisely why recovery is built around per-pivot
//! ownership epochs and first-commit-wins accounting in [`crate::run`]:
//! match counts are bit-identical under any interleaving, fault or no
//! fault, even though recovery *metrics* (how much work was lost and
//! re-executed) may vary between runs.

use std::time::Duration;

/// SplitMix64 — the standard 64-bit finalizer used for all fault draws.
/// Inlined (not a crate dependency) so the fault layer is self-contained
/// and its draws are stable across toolchains.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
#[inline]
fn unit_uniform(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A machine crash pinned to the machine's virtual-progress clock: the
/// machine dies when its accumulated virtual work first crosses
/// `after_virtual`. The cluster whose completion crosses the line is lost
/// (its partial results are discarded), in-flight sibling enumerations are
/// cancelled, and everything uncommitted the machine owned is re-scattered
/// to survivors under a bumped ownership epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashFault {
    /// Machine index that dies.
    pub machine: usize,
    /// Virtual progress at which it dies (`Duration::ZERO` = on its first
    /// completed cluster).
    pub after_virtual: Duration,
}

/// A straggler: the machine's virtual clock runs `slowdown`× slower per
/// unit of work (its *real* compute is unchanged — the simulation models
/// the slowdown rather than sleeping). Machines at or above the configured
/// straggler threshold become targets for speculative re-execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerFault {
    /// Machine index that straggles.
    pub machine: usize,
    /// Virtual slowdown factor (must be ≥ 1).
    pub slowdown: f64,
}

/// A complete, deterministic fault schedule for one distributed run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic draws (steal loss).
    pub seed: u64,
    /// Machine crashes (at most one per machine; later entries for the
    /// same machine are ignored by [`FaultPlan::crash_nanos_for`]).
    pub crashes: Vec<CrashFault>,
    /// Straggler slowdowns.
    pub stragglers: Vec<StragglerFault>,
    /// Probability in `[0, 1]` that any one steal request is lost on the
    /// wire (the thief pays the message latency and retries).
    pub steal_loss: f64,
    /// Virtual time charged per unit of pivot workload estimate — the
    /// exchange rate between [`crate::partition`] estimates and the
    /// virtual-progress clock crashes are pinned to.
    pub unit_cost: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            crashes: Vec::new(),
            stragglers: Vec::new(),
            steal_loss: 0.0,
            unit_cost: Duration::from_micros(1),
        }
    }

    /// Adds a crash of `machine` once its virtual progress crosses
    /// `after_virtual`.
    pub fn crash(mut self, machine: usize, after_virtual: Duration) -> Self {
        self.crashes.push(CrashFault {
            machine,
            after_virtual,
        });
        self
    }

    /// Adds a straggler slowdown for `machine`.
    pub fn straggler(mut self, machine: usize, slowdown: f64) -> Self {
        self.stragglers.push(StragglerFault { machine, slowdown });
        self
    }

    /// Sets the steal-message loss probability.
    pub fn with_steal_loss(mut self, p: f64) -> Self {
        self.steal_loss = p;
        self
    }

    /// Sets the workload→virtual-time exchange rate.
    pub fn with_unit_cost(mut self, unit_cost: Duration) -> Self {
        self.unit_cost = unit_cost;
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.crashes.is_empty() && self.stragglers.is_empty() && self.steal_loss == 0.0
    }

    /// Validates the plan against a cluster of `machines` machines:
    /// at least one machine must survive, probabilities must be in
    /// `[0, 1]`, slowdowns ≥ 1, and machine indexes in range.
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.steal_loss) {
            return Err(format!("steal_loss {} outside [0, 1]", self.steal_loss));
        }
        let mut crashed = vec![false; machines];
        for c in &self.crashes {
            if c.machine >= machines {
                return Err(format!(
                    "crash names machine {} but the cluster has {machines}",
                    c.machine
                ));
            }
            crashed[c.machine] = true;
        }
        if machines > 0 && crashed.iter().all(|&c| c) {
            return Err("every machine crashes: no survivor to recover onto".to_string());
        }
        for s in &self.stragglers {
            if s.machine >= machines {
                return Err(format!(
                    "straggler names machine {} but the cluster has {machines}",
                    s.machine
                ));
            }
            // `is_finite` rejects NaN, so the plain `<` comparison is safe.
            if !s.slowdown.is_finite() || s.slowdown < 1.0 {
                return Err(format!(
                    "slowdown {} must be a finite value ≥ 1",
                    s.slowdown
                ));
            }
        }
        Ok(())
    }

    /// The crash point of `machine` on its virtual clock, in nanoseconds
    /// (first matching entry wins). `None` = the machine never crashes.
    pub fn crash_nanos_for(&self, machine: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|c| c.machine == machine)
            .map(|c| (c.after_virtual.as_nanos() as u64).max(1))
    }

    /// The straggler slowdown of `machine` (1.0 when not a straggler).
    pub fn slowdown_for(&self, machine: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|s| s.machine == machine)
            .map(|s| s.slowdown.max(1.0))
            .unwrap_or(1.0)
    }

    /// Deterministic draw: is steal attempt number `attempt` by machine
    /// `thief` lost on the wire?
    pub fn steal_lost(&self, thief: usize, attempt: u64) -> bool {
        if self.steal_loss <= 0.0 {
            return false;
        }
        let h =
            splitmix64(self.seed ^ splitmix64(0x57EA_1000 ^ thief as u64) ^ splitmix64(attempt));
        unit_uniform(h) < self.steal_loss
    }

    /// Virtual work in nanoseconds for one cluster with workload
    /// `estimate`, under `machine`'s slowdown. Returns `(total, straggle)`
    /// where `straggle` is the slowdown-induced share of `total`.
    pub fn virtual_work_nanos(&self, machine: usize, estimate: f64) -> (u64, u64) {
        let unit = self.unit_cost.as_nanos() as f64;
        let slowdown = self.slowdown_for(machine);
        let base = estimate.max(1.0) * unit;
        let total = base * slowdown;
        ((total as u64).max(1), (total - base) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_and_builders() {
        let p = FaultPlan::new(7);
        assert!(p.is_noop());
        let p = p
            .crash(1, Duration::from_millis(5))
            .straggler(0, 4.0)
            .with_steal_loss(0.25)
            .with_unit_cost(Duration::from_micros(2));
        assert!(!p.is_noop());
        assert_eq!(p.crash_nanos_for(1), Some(5_000_000));
        assert_eq!(p.crash_nanos_for(0), None);
        assert_eq!(p.slowdown_for(0), 4.0);
        assert_eq!(p.slowdown_for(1), 1.0);
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::new(0)
            .crash(0, Duration::ZERO)
            .crash(1, Duration::ZERO)
            .validate(2)
            .is_err());
        assert!(FaultPlan::new(0)
            .crash(5, Duration::ZERO)
            .validate(2)
            .is_err());
        assert!(FaultPlan::new(0).with_steal_loss(1.5).validate(2).is_err());
        assert!(FaultPlan::new(0).straggler(0, 0.5).validate(2).is_err());
        assert!(FaultPlan::new(0)
            .crash(0, Duration::ZERO)
            .validate(2)
            .is_ok());
    }

    #[test]
    fn steal_loss_draws_are_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::new(42).with_steal_loss(0.3);
        let q = FaultPlan::new(42).with_steal_loss(0.3);
        let lost: Vec<bool> = (0..1000).map(|a| p.steal_lost(1, a)).collect();
        let again: Vec<bool> = (0..1000).map(|a| q.steal_lost(1, a)).collect();
        assert_eq!(lost, again, "same seed, same draws");
        let rate = lost.iter().filter(|&&l| l).count() as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.08, "observed loss rate {rate}");
        // A different seed gives a different sequence.
        let other = FaultPlan::new(43).with_steal_loss(0.3);
        let seq: Vec<bool> = (0..1000).map(|a| other.steal_lost(1, a)).collect();
        assert_ne!(lost, seq);
        // Zero probability never loses.
        assert!((0..100).all(|a| !FaultPlan::new(42).steal_lost(0, a)));
    }

    #[test]
    fn virtual_work_scales_with_slowdown() {
        let p = FaultPlan::new(0).straggler(2, 3.0);
        let (fast, fast_straggle) = p.virtual_work_nanos(0, 10.0);
        let (slow, slow_straggle) = p.virtual_work_nanos(2, 10.0);
        assert_eq!(fast, 10_000);
        assert_eq!(fast_straggle, 0);
        assert_eq!(slow, 30_000);
        assert_eq!(slow_straggle, 20_000);
    }
}
