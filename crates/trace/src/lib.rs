//! `ceci-trace` — structured tracing and per-stage profiling for the CECI
//! stack.
//!
//! This crate is always compiled (no feature gate) and has **zero external
//! dependencies** so it can be threaded through every layer of the workspace
//! without pulling anything from crates.io. It provides:
//!
//! * [`Tracer`] — a span recorder with atomic span-id allocation, a
//!   process-epoch monotonic clock, and [`LocalSpans`] worker-local bounded
//!   buffers so recording on worker threads is a plain `Vec` push (no lock,
//!   no syscall); buffers are merged into the shared store in one batch at
//!   flush points.
//! * [`SpanRecord`] — one named stage occurrence (`build.filter`,
//!   `enumerate.depth{d}`, `distributed.machine{m}`, `service.request`, …)
//!   with span id / parent id, nanosecond timestamp + duration, and small
//!   static-key integer args.
//! * [`DepthProfile`] — a preallocated per-matching-order-depth profile for
//!   the enumeration hot path: exact candidate fan-out / intersection-op /
//!   backtrack counters plus stride-sampled coarse timestamps, with **zero
//!   allocations** in the steady state.
//! * [`chrome`] — Chrome `trace_event` JSON export (loadable in
//!   `about:tracing` and Perfetto).
//! * [`prom`] — Prometheus text-exposition writer and a tiny validating
//!   parser (used by tests and CI; no external dependency).

#![warn(missing_docs)]

pub mod chrome;
pub mod profile;
pub mod prom;
pub mod tracer;

pub use profile::{DepthProfile, DepthStat};
pub use prom::PromWriter;
pub use tracer::{LocalSpans, SpanRecord, Tracer};
