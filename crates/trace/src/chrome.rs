//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) with complete
//! (`ph:"X"`) events for spans and instant (`ph:"i"`) events for
//! zero-duration records. The output loads directly in `about:tracing` and
//! in Perfetto's legacy-trace importer. Timestamps are microseconds with
//! nanosecond fractions, as the format specifies.

use crate::tracer::SpanRecord;
use std::io::Write;
use std::path::Path;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format nanoseconds as fractional microseconds (`123.456`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(out: &mut String, rec: &SpanRecord) {
    out.push_str("{\"name\":\"");
    escape(&rec.full_name(), out);
    out.push_str("\",\"cat\":\"");
    escape(rec.cat, out);
    out.push_str("\",\"ph\":\"");
    if rec.dur_ns == 0 {
        out.push_str("i\",\"s\":\"t");
    } else {
        out.push('X');
    }
    out.push_str("\",\"ts\":");
    out.push_str(&us(rec.ts_ns));
    if rec.dur_ns > 0 {
        out.push_str(",\"dur\":");
        out.push_str(&us(rec.dur_ns));
    }
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&rec.tid.to_string());
    out.push_str(",\"args\":{\"span_id\":");
    out.push_str(&rec.id.to_string());
    out.push_str(",\"parent_id\":");
    out.push_str(&rec.parent.to_string());
    for (k, v) in &rec.args {
        out.push_str(",\"");
        escape(k, out);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

/// Render spans as a Chrome `trace_event` JSON object string.
pub fn render(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, rec) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write spans to `path` as a Chrome `trace_event` file.
pub fn write_file(spans: &[SpanRecord], path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(render(spans).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, ts: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: 0,
            name,
            index: None,
            cat: "build",
            ts_ns: ts,
            dur_ns: dur,
            tid: 0,
            args: vec![("entries", 42)],
        }
    }

    #[test]
    fn renders_complete_event() {
        let s = render(&[span("build.filter", 1_500, 2_000_500)]);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"name\":\"build.filter\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":2000.500"));
        assert!(s.contains("\"entries\":42"));
        assert!(s.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn zero_duration_becomes_instant() {
        let s = render(&[span("distributed.machine", 10, 0)]);
        assert!(s.contains("\"ph\":\"i\""));
        assert!(!s.contains("\"dur\""));
    }

    #[test]
    fn escapes_special_chars() {
        let mut out = String::new();
        escape("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn balanced_braces() {
        let s = render(&[span("a", 0, 1), span("b", 1, 1)]);
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(s.matches("},{").count(), 1);
    }
}
