//! Per-matching-order-depth enumeration profile.
//!
//! The enumeration hot path must not allocate and must not take per-call
//! timestamps (a syscall-grade clock read per recursive call would dwarf the
//! work being measured). [`DepthProfile`] is therefore preallocated from the
//! matching-order length before enumeration starts, attributes **exact**
//! integer counters (candidate fan-out, intersection ops, emissions,
//! backtracks) per depth, and attributes wall time by *stride sampling*: one
//! monotonic clock read every `2^k` recursive calls, with the elapsed delta
//! charged to the depth where the sample lands. Over thousands of calls the
//! sampled attribution converges on the true per-depth share while costing a
//! fraction of a percent of throughput.

use std::time::Instant;

/// Default sampling stride: one clock read per 1024 recursive calls.
pub const DEFAULT_STRIDE_MASK: u64 = 0x3FF;

/// Exact + sampled statistics for one matching-order depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthStat {
    /// Recursive calls entering this depth.
    pub calls: u64,
    /// Candidates produced for this depth (fan-out after TE intersection /
    /// edge verification, before injectivity and symmetry checks).
    pub candidates: u64,
    /// Exact intersection element operations attributed to this depth.
    pub intersections: u64,
    /// Embeddings emitted at this depth (last depth only, unless a prefix
    /// enumeration stops earlier).
    pub emitted: u64,
    /// Returns from a mapped candidate's subtree at this depth (one per
    /// candidate that was mapped and explored).
    pub backtracks: u64,
    /// Subtrees at this depth answered by redundant-extension elimination
    /// (the candidate set was identical to an explored sibling's, so its
    /// result multiset was reused instead of re-enumerated).
    pub reused: u64,
    /// Stride-sampled wall time attributed to this depth, in nanoseconds.
    pub time_ns: u64,
    /// Number of clock samples that landed on this depth.
    pub samples: u64,
}

impl DepthStat {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &DepthStat) {
        self.calls += other.calls;
        self.candidates += other.candidates;
        self.intersections += other.intersections;
        self.emitted += other.emitted;
        self.backtracks += other.backtracks;
        self.reused += other.reused;
        self.time_ns += other.time_ns;
        self.samples += other.samples;
    }
}

/// Preallocated per-depth profile for one enumeration run (or one worker of
/// a parallel run; merge worker profiles with [`DepthProfile::merge`]).
#[derive(Debug, Clone)]
pub struct DepthProfile {
    stats: Vec<DepthStat>,
    tick: u64,
    stride_mask: u64,
    epoch: Instant,
    last_ns: u64,
}

impl DepthProfile {
    /// Preallocate a profile for a matching order of `depths` nodes.
    pub fn new(depths: usize) -> Self {
        Self::with_stride(depths, DEFAULT_STRIDE_MASK)
    }

    /// Preallocate with an explicit sampling stride mask (`2^k - 1`).
    pub fn with_stride(depths: usize, stride_mask: u64) -> Self {
        let epoch = Instant::now();
        DepthProfile {
            stats: vec![DepthStat::default(); depths.max(1)],
            tick: 0,
            stride_mask,
            epoch,
            last_ns: 0,
        }
    }

    #[inline]
    fn clamp(&self, depth: usize) -> usize {
        depth.min(self.stats.len() - 1)
    }

    /// Record one recursive call entering `depth`; takes a stride-sampled
    /// timestamp and charges the elapsed delta to this depth when the sample
    /// lands. Zero allocations; at most one clock read per stride.
    #[inline]
    pub fn on_call(&mut self, depth: usize) {
        let d = self.clamp(depth);
        self.stats[d].calls += 1;
        self.tick = self.tick.wrapping_add(1);
        if self.tick & self.stride_mask == 0 {
            let now = self.epoch.elapsed().as_nanos() as u64;
            let delta = now.saturating_sub(self.last_ns);
            self.last_ns = now;
            self.stats[d].time_ns += delta;
            self.stats[d].samples += 1;
        }
    }

    /// Record the candidate fan-out and exact intersection-op delta for one
    /// expansion at `depth`.
    #[inline]
    pub fn on_expand(&mut self, depth: usize, candidates: u64, intersection_ops: u64) {
        let d = self.clamp(depth);
        self.stats[d].candidates += candidates;
        self.stats[d].intersections += intersection_ops;
    }

    /// Record one emitted embedding at `depth`.
    #[inline]
    pub fn on_emit(&mut self, depth: usize) {
        let d = self.clamp(depth);
        self.stats[d].emitted += 1;
    }

    /// Record a return from a mapped candidate's subtree at `depth`.
    #[inline]
    pub fn on_backtrack(&mut self, depth: usize) {
        let d = self.clamp(depth);
        self.stats[d].backtracks += 1;
    }

    /// Flush one candidate drain's batched emissions and backtracks for
    /// `depth`. The enumeration inner loop accumulates these in plain stack
    /// locals and calls this **once per drain** instead of touching the
    /// (boxed, cache-cold) profile per candidate — the difference between a
    /// measurable slowdown and sub-percent overhead on emission-heavy
    /// queries.
    #[inline]
    pub fn on_drain(&mut self, depth: usize, emitted: u64, backtracks: u64) {
        let d = self.clamp(depth);
        self.stats[d].emitted += emitted;
        self.stats[d].backtracks += backtracks;
    }

    /// Record `reused` sibling-subtree reuses (redundant-extension
    /// elimination) at `depth`, batched like [`DepthProfile::on_drain`].
    #[inline]
    pub fn on_reuse(&mut self, depth: usize, reused: u64) {
        let d = self.clamp(depth);
        self.stats[d].reused += reused;
    }

    /// Reset all counters (keeps the allocation and the clock epoch).
    pub fn reset(&mut self) {
        for s in &mut self.stats {
            *s = DepthStat::default();
        }
        self.tick = 0;
        self.last_ns = self.epoch.elapsed().as_nanos() as u64;
    }

    /// Re-arm the sampling clock so the next delta does not include time
    /// spent outside enumeration (call just before the search loop).
    pub fn arm_clock(&mut self) {
        self.last_ns = self.epoch.elapsed().as_nanos() as u64;
    }

    /// Accumulate another profile (e.g. a parallel worker's) into `self`.
    /// Depth vectors may differ in length; the shorter tail is ignored.
    pub fn merge(&mut self, other: &DepthProfile) {
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.merge(b);
        }
    }

    /// Per-depth statistics, indexed by matching-order depth.
    pub fn depths(&self) -> &[DepthStat] {
        &self.stats
    }

    /// Number of tracked depths.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the profile tracks zero depths (never true: minimum is 1).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Sum of exact intersection ops across all depths.
    pub fn total_intersections(&self) -> u64 {
        self.stats.iter().map(|s| s.intersections).sum()
    }

    /// Sum of recursive calls across all depths.
    pub fn total_calls(&self) -> u64 {
        self.stats.iter().map(|s| s.calls).sum()
    }

    /// Sum of candidate fan-out across all depths.
    pub fn total_candidates(&self) -> u64 {
        self.stats.iter().map(|s| s.candidates).sum()
    }

    /// Sum of emitted embeddings across all depths.
    pub fn total_emitted(&self) -> u64 {
        self.stats.iter().map(|s| s.emitted).sum()
    }

    /// Sum of reused sibling subtrees across all depths.
    pub fn total_reused(&self) -> u64 {
        self.stats.iter().map(|s| s.reused).sum()
    }

    /// Sum of sampled time across all depths, nanoseconds.
    pub fn total_time_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.time_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_per_depth() {
        let mut p = DepthProfile::with_stride(3, 0x3);
        for _ in 0..10 {
            p.on_call(0);
        }
        p.on_expand(0, 7, 21);
        p.on_call(1);
        p.on_expand(1, 2, 4);
        p.on_emit(2);
        p.on_backtrack(0);
        assert_eq!(p.depths()[0].calls, 10);
        assert_eq!(p.depths()[0].candidates, 7);
        assert_eq!(p.depths()[0].intersections, 21);
        assert_eq!(p.depths()[0].backtracks, 1);
        assert_eq!(p.depths()[1].calls, 1);
        assert_eq!(p.depths()[2].emitted, 1);
        assert_eq!(p.total_intersections(), 25);
        assert_eq!(p.total_calls(), 11);
    }

    #[test]
    fn deep_indices_clamp_to_last_depth() {
        let mut p = DepthProfile::new(2);
        p.on_call(9);
        p.on_expand(9, 3, 3);
        assert_eq!(p.depths()[1].calls, 1);
        assert_eq!(p.depths()[1].candidates, 3);
    }

    #[test]
    fn merge_sums_depthwise() {
        let mut a = DepthProfile::new(2);
        let mut b = DepthProfile::new(2);
        a.on_call(0);
        b.on_call(0);
        b.on_call(1);
        a.merge(&b);
        assert_eq!(a.depths()[0].calls, 2);
        assert_eq!(a.depths()[1].calls, 1);
    }

    #[test]
    fn sampling_charges_time_somewhere() {
        // Stride 1 (mask 0) => every call samples.
        let mut p = DepthProfile::with_stride(1, 0);
        p.arm_clock();
        for _ in 0..1000 {
            p.on_call(0);
        }
        assert_eq!(p.depths()[0].samples, 1000);
    }

    #[test]
    fn reset_clears_counters() {
        let mut p = DepthProfile::new(2);
        p.on_call(0);
        p.on_emit(1);
        p.reset();
        assert_eq!(p.total_calls(), 0);
        assert_eq!(p.total_emitted(), 0);
    }
}
