//! Prometheus text-exposition writer and a tiny validating parser.
//!
//! The writer emits version 0.0.4 text format (`# HELP` / `# TYPE` headers,
//! one sample per line). The parser is deliberately small — just enough to
//! validate what this workspace emits — and is used by the service tests,
//! the `repro trace` experiment, and CI so no external Prometheus dependency
//! is needed to prove the exposition is well-formed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental text-exposition writer.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl PromWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emit a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Emit a full histogram family.
    ///
    /// `cumulative` holds `(inclusive upper bound, cumulative count)` pairs in
    /// ascending bound order, **excluding** the `+Inf` bucket, which is
    /// emitted automatically with `count`. `sum` is the sum of all observed
    /// values in the histogram's native unit.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        cumulative: &[(u64, u64)],
        sum: u64,
        count: u64,
    ) {
        self.header(name, help, "histogram");
        for &(le, c) in cumulative {
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {c}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// Finish and return the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value. `+Inf`/`-Inf`/`NaN` parse to the IEEE specials.
    pub value: f64,
}

impl Sample {
    /// Look up a label value by key.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Validation summary returned by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Number of `# TYPE`-declared metric families.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
    /// Number of families declared as histograms.
    pub histograms: usize,
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}")),
    }
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value not quoted: {rest:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape in label value: {other:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key, value));
        rest = &rest[end + 1..];
    }
}

/// Parse exposition text into samples. Returns an error on the first
/// malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment.starts_with("HELP ") || comment.starts_with("TYPE ") {
                let mut parts = comment.splitn(3, ' ');
                let kw = parts.next().unwrap_or_default();
                let name = parts.next().unwrap_or_default();
                if !valid_name(name) {
                    return Err(format!(
                        "line {}: {kw} for invalid metric name {name:?}",
                        lineno + 1
                    ));
                }
                if kw == "TYPE" {
                    let ty = parts.next().unwrap_or_default().trim();
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
                    }
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = if let Some(brace) = line.find('{') {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {}: unbalanced '{{'", lineno + 1))?;
            if close < brace {
                return Err(format!("line {}: unbalanced '{{'", lineno + 1));
            }
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        } else {
            (line.split_whitespace().next().unwrap_or_default(), None)
        };
        let name = name_part.trim().to_string();
        if !valid_name(&name) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        let (labels, value_part) = match rest {
            Some((labels_src, tail)) => (
                parse_labels(labels_src).map_err(|e| format!("line {}: {e}", lineno + 1))?,
                tail.trim(),
            ),
            None => (Vec::new(), line[name_part.len()..].trim()),
        };
        let mut fields = value_part.split_whitespace();
        let value_str = fields
            .next()
            .ok_or_else(|| format!("line {}: missing sample value", lineno + 1))?;
        let value = parse_value(value_str).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {}: bad timestamp {ts:?}", lineno + 1));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing tokens after sample", lineno + 1));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Parse and validate exposition text.
///
/// Beyond per-line syntax this checks histogram invariants for every family
/// declared `# TYPE <name> histogram`: a `+Inf` bucket exists, bucket counts
/// are monotone non-decreasing in source order, and the `+Inf` cumulative
/// count equals `<name>_count`.
pub fn validate(text: &str) -> Result<Summary, String> {
    let samples = parse(text)?;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(ty)) = (parts.next(), parts.next()) {
                types.insert(name.to_string(), ty.to_string());
            }
        }
    }
    let mut histograms = 0usize;
    for (family, ty) in &types {
        if ty != "histogram" {
            continue;
        }
        histograms += 1;
        let bucket_name = format!("{family}_bucket");
        let count_name = format!("{family}_count");
        let sum_name = format!("{family}_sum");
        let buckets: Vec<&Sample> = samples.iter().filter(|s| s.name == bucket_name).collect();
        if buckets.is_empty() {
            return Err(format!("histogram {family}: no _bucket samples"));
        }
        let mut prev = 0.0f64;
        let mut inf = None;
        for b in &buckets {
            let le = b
                .label("le")
                .ok_or_else(|| format!("histogram {family}: bucket without le label"))?;
            if b.value + 1e-9 < prev {
                return Err(format!(
                    "histogram {family}: bucket counts not monotone at le={le}"
                ));
            }
            prev = b.value;
            if le == "+Inf" {
                inf = Some(b.value);
            }
        }
        let inf = inf.ok_or_else(|| format!("histogram {family}: missing +Inf bucket"))?;
        let count = samples
            .iter()
            .find(|s| s.name == count_name)
            .ok_or_else(|| format!("histogram {family}: missing _count"))?;
        if samples.iter().all(|s| s.name != sum_name) {
            return Err(format!("histogram {family}: missing _sum"));
        }
        if (count.value - inf).abs() > 1e-9 {
            return Err(format!(
                "histogram {family}: +Inf bucket {} != _count {}",
                inf, count.value
            ));
        }
    }
    Ok(Summary {
        families: types.len(),
        samples: samples.len(),
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrips_through_validator() {
        let mut w = PromWriter::new();
        w.counter("ceci_requests_total", "Total requests.", 17);
        w.gauge("ceci_cache_bytes", "Cache bytes in use.", 12345);
        w.histogram(
            "ceci_match_latency_us",
            "Match latency (microseconds).",
            &[(1, 2), (3, 5), (7, 9)],
            420,
            10,
        );
        let text = w.finish();
        let summary = validate(&text).expect("valid exposition");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.histograms, 1);
        // 2 scalar samples + 3 buckets + Inf + sum + count
        assert_eq!(summary.samples, 8);
        let samples = parse(&text).unwrap();
        let inf = samples
            .iter()
            .find(|s| s.name == "ceci_match_latency_us_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 10.0);
    }

    #[test]
    fn rejects_non_monotone_histogram() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        let err = validate(text).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_sum 1
h_count 5
";
        let err = validate(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 1
h_count 5
";
        let err = validate(text).unwrap_err();
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn rejects_bad_names_and_values() {
        assert!(parse("9bad_name 1").is_err());
        assert!(parse("ok_name notanumber").is_err());
        assert!(parse("ok_name 1 2 3").is_err());
        assert!(validate("# TYPE x rainbow\nx 1").is_err());
    }

    #[test]
    fn parses_labels_with_escapes() {
        let samples = parse("m{path=\"a\\\"b\\\\c\",le=\"+Inf\"} 3").unwrap();
        assert_eq!(samples[0].label("path"), Some("a\"b\\c"));
        assert_eq!(samples[0].label("le"), Some("+Inf"));
        assert_eq!(samples[0].value, 3.0);
    }

    #[test]
    fn parses_special_values() {
        let samples = parse("m 1e9\nn +Inf\no NaN").unwrap();
        assert_eq!(samples[0].value, 1e9);
        assert!(samples[1].value.is_infinite());
        assert!(samples[2].value.is_nan());
    }
}
