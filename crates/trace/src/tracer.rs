//! Span recorder: atomic ids, monotonic process-epoch clock, worker-local
//! bounded buffers merged into a shared store in batches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum number of inline args per span. Spans are recorded outside the
/// enumeration steady state, so a small heap-backed vec is fine; the constant
/// only bounds what exporters render.
pub const MAX_ARGS: usize = 8;

/// One recorded stage occurrence.
///
/// `name` is a static stage name from the taxonomy (`build.filter`,
/// `enumerate.depth`, `distributed.machine`, `service.request`, …). When
/// `index` is set, exporters append it to the name (`enumerate.depth3`,
/// `distributed.machine1`) so hot paths never format strings.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique span id (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Static stage name.
    pub name: &'static str,
    /// Optional numeric suffix (depth, machine id) appended at export time.
    pub index: Option<u32>,
    /// Category (`build`, `enumerate`, `distributed`, `service`).
    pub cat: &'static str,
    /// Start timestamp in nanoseconds. For `service`/`build`/`enumerate`
    /// spans this is the tracer's monotonic process-epoch clock; for
    /// `distributed` spans it is the simulator's virtual clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 marks an instant event.
    pub dur_ns: u64,
    /// Logical thread / machine lane for the exporter.
    pub tid: u32,
    /// Small set of static-key integer arguments.
    pub args: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Render `name` plus the optional `index` suffix.
    pub fn full_name(&self) -> String {
        match self.index {
            Some(i) => format!("{}{}", self.name, i),
            None => self.name.to_string(),
        }
    }
}

/// Shared span store.
///
/// Recording through a [`LocalSpans`] buffer is a plain `Vec::push`; the
/// mutex is only taken when a worker flushes its batch (at stage boundaries,
/// never inside the enumeration loop), so the hot path is lock-free by
/// construction.
pub struct Tracer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    store: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// New enabled tracer with its clock epoch at the call instant.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            store: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether spans are currently being accepted.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable span recording (records are silently dropped while
    /// disabled; ids keep advancing so parents stay valid).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this tracer was created (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Allocate a fresh span id (never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one completed span; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        parent: u64,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) -> u64 {
        let id = self.next_span_id();
        self.record(SpanRecord {
            id,
            parent,
            name,
            index: None,
            cat,
            ts_ns,
            dur_ns,
            tid,
            args,
        });
        id
    }

    /// Record an instant (zero-duration) event at the current clock.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        parent: u64,
        tid: u32,
        args: Vec<(&'static str, u64)>,
    ) -> u64 {
        let ts = self.now_ns();
        self.span(name, cat, parent, tid, ts, 0, args)
    }

    /// Record a single span record.
    pub fn record(&self, rec: SpanRecord) {
        if !self.enabled() {
            return;
        }
        self.store.lock().unwrap().push(rec);
    }

    /// Merge a drained worker-local batch under one lock acquisition.
    pub fn record_batch(&self, batch: &mut Vec<SpanRecord>) {
        if batch.is_empty() {
            return;
        }
        if !self.enabled() {
            batch.clear();
            return;
        }
        self.store.lock().unwrap().append(batch);
    }

    /// Note that `n` spans were dropped by a saturated local buffer.
    pub fn note_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total spans dropped by saturated local buffers.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently in the store.
    pub fn len(&self) -> usize {
        self.store.lock().unwrap().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of all recorded spans, sorted by start timestamp.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut v = self.store.lock().unwrap().clone();
        v.sort_by_key(|s| (s.ts_ns, s.id));
        v
    }

    /// Drain all recorded spans, sorted by start timestamp.
    pub fn take(&self) -> Vec<SpanRecord> {
        let mut v = std::mem::take(&mut *self.store.lock().unwrap());
        v.sort_by_key(|s| (s.ts_ns, s.id));
        v
    }
}

/// Bounded worker-local span buffer.
///
/// Pushes are plain vector appends (lock-free); once `cap` is reached further
/// spans are counted as dropped instead of reallocating, keeping worst-case
/// memory bounded. Call [`LocalSpans::flush`] at a stage boundary to merge
/// into the shared [`Tracer`] store.
pub struct LocalSpans {
    buf: Vec<SpanRecord>,
    cap: usize,
    dropped: u64,
}

impl LocalSpans {
    /// New buffer that holds at most `cap` spans between flushes.
    pub fn new(cap: usize) -> Self {
        LocalSpans {
            buf: Vec::with_capacity(cap.min(256)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Buffered span count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a span, or count it as dropped when the buffer is full.
    pub fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.buf.push(rec);
        }
    }

    /// Merge buffered spans (and the drop count) into `tracer`.
    pub fn flush(&mut self, tracer: &Tracer) {
        tracer.record_batch(&mut self.buf);
        tracer.note_dropped(self.dropped);
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let t = Tracer::new();
        let a = t.span("build.filter", "build", 0, 0, 0, 10, Vec::new());
        let b = t.span("build.refine", "build", a, 0, 10, 5, Vec::new());
        assert!(a != 0 && b != 0 && a != b);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, a);
    }

    #[test]
    fn disabled_tracer_drops_records() {
        let t = Tracer::new();
        t.set_enabled(false);
        t.span("x", "service", 0, 0, 0, 1, Vec::new());
        assert!(t.is_empty());
        t.set_enabled(true);
        t.span("x", "service", 0, 0, 0, 1, Vec::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn local_buffer_bounds_and_flushes() {
        let t = Tracer::new();
        let mut local = LocalSpans::new(2);
        for i in 0..5 {
            local.push(SpanRecord {
                id: t.next_span_id(),
                parent: 0,
                name: "enumerate.depth",
                index: Some(i),
                cat: "enumerate",
                ts_ns: i as u64,
                dur_ns: 1,
                tid: 7,
                args: Vec::new(),
            });
        }
        assert_eq!(local.len(), 2);
        local.flush(&t);
        assert!(local.is_empty());
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn snapshot_sorted_by_timestamp() {
        let t = Tracer::new();
        t.span("b", "service", 0, 0, 20, 1, Vec::new());
        t.span("a", "service", 0, 0, 10, 1, Vec::new());
        let s = t.snapshot();
        assert_eq!(s[0].name, "a");
        assert_eq!(s[1].name, "b");
    }

    #[test]
    fn full_name_appends_index() {
        let rec = SpanRecord {
            id: 1,
            parent: 0,
            name: "distributed.machine",
            index: Some(3),
            cat: "distributed",
            ts_ns: 0,
            dur_ns: 0,
            tid: 3,
            args: Vec::new(),
        };
        assert_eq!(rec.full_name(), "distributed.machine3");
    }
}
