//! Cross-crate integration tests for the CECI workspace.
//!
//! This crate exists to compile and run the test files in the repository's
//! top-level `tests/` directory (declared as `[[test]]` targets in this
//! crate's manifest), spanning every workspace crate through the public
//! `ceci` facade. It exports nothing.
