//! Bare-graph parallel listing — the Figure 19 baseline.
//!
//! The paper compares CECI against "a baseline parallel subgraph listing
//! solution using graphs only": no auxiliary index, no NLC filtering, no
//! refinement. This engine backtracks directly over the data graph's
//! adjacency lists using the same plan (root, matching order, symmetry
//! breaking) as CECI, checking labels and degrees on the fly and verifying
//! every backward edge against the graph. Parallelism is a pull-based pool
//! over root candidates, like CECI's CGD but without cardinalities.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ceci_core::metrics::{Counters, ThreadTimer};
use ceci_core::sink::{CollectSink, CountSink, EmbeddingSink, SharedBudget, SharedLimitSink};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Result of a bare-graph run.
#[derive(Debug)]
pub struct BareResult {
    /// Embeddings found.
    pub total_embeddings: u64,
    /// Merged counters (recursive calls, edge verifications...).
    pub counters: Counters,
    /// Busy time per worker.
    pub worker_busy: Vec<Duration>,
    /// Collected embeddings (canonically sorted) when requested.
    pub embeddings: Option<Vec<Vec<VertexId>>>,
}

/// Options for the bare engine.
#[derive(Clone, Copy, Debug)]
pub struct BareOptions {
    /// Worker threads.
    pub workers: usize,
    /// Global embedding limit.
    pub limit: Option<u64>,
    /// Collect embeddings.
    pub collect: bool,
}

impl Default for BareOptions {
    fn default() -> Self {
        BareOptions {
            workers: 1,
            limit: None,
            collect: false,
        }
    }
}

struct BareWorker<'a> {
    graph: &'a Graph,
    plan: &'a QueryPlan,
    mapping: Vec<Option<VertexId>>,
    used: std::collections::HashSet<VertexId>,
    emission: Vec<VertexId>,
}

impl<'a> BareWorker<'a> {
    fn new(graph: &'a Graph, plan: &'a QueryPlan) -> Self {
        let n = plan.query().num_vertices();
        BareWorker {
            graph,
            plan,
            mapping: vec![None; n],
            used: std::collections::HashSet::new(),
            emission: vec![VertexId(0); n],
        }
    }

    fn run_root<S: EmbeddingSink>(
        &mut self,
        root_image: VertexId,
        sink: &mut S,
        counters: &mut Counters,
    ) -> bool {
        let root = self.plan.root();
        let query = self.plan.query();
        // On-the-fly label + degree check at the root.
        if !query
            .labels(root)
            .is_subset_of(self.graph.labels(root_image))
            || self.graph.degree(root_image) < query.degree(root)
        {
            return true;
        }
        self.mapping[root.index()] = Some(root_image);
        self.used.insert(root_image);
        let keep = self.search(1, sink, counters);
        self.mapping[root.index()] = None;
        self.used.remove(&root_image);
        keep
    }

    fn search<S: EmbeddingSink>(
        &mut self,
        depth: usize,
        sink: &mut S,
        counters: &mut Counters,
    ) -> bool {
        counters.recursive_calls += 1;
        let (graph, plan) = (self.graph, self.plan);
        let order = plan.matching_order();
        let u = order[depth];
        let query = plan.query();
        let parent = plan.tree().parent(u).expect("non-root");
        let parent_image = self.mapping[parent.index()].expect("assigned");
        let last = depth + 1 == order.len();
        let mut keep = true;
        // Candidates: neighbors of the parent's image (no index).
        for &v in graph.neighbors(parent_image) {
            if self.used.contains(&v) {
                counters.injectivity_rejections += 1;
                continue;
            }
            if !query.labels(u).is_subset_of(graph.labels(v)) || graph.degree(v) < query.degree(u) {
                continue;
            }
            // Verify all backward non-tree edges directly.
            let mut ok = true;
            for un in plan.backward_nte(u) {
                let image = self.mapping[un.index()].expect("assigned earlier");
                counters.edge_verifications += 1;
                if !graph.has_edge(v, image) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            if !plan.satisfies_symmetry(u, v, &self.mapping) {
                counters.symmetry_rejections += 1;
                continue;
            }
            self.mapping[u.index()] = Some(v);
            self.used.insert(v);
            keep = if last {
                counters.embeddings += 1;
                for i in 0..self.mapping.len() {
                    self.emission[i] = self.mapping[i].unwrap();
                }
                sink.emit(&self.emission)
            } else {
                self.search(depth + 1, sink, counters)
            };
            self.mapping[u.index()] = None;
            self.used.remove(&v);
            if !keep {
                break;
            }
        }
        keep
    }
}

/// Runs the bare-graph listing engine.
pub fn enumerate_bare(graph: &Graph, plan: &QueryPlan, options: &BareOptions) -> BareResult {
    assert!(options.workers >= 1);
    // Root candidates by label + degree only — the bare engine must not
    // benefit from CECI's NLC filtering (it is the Fig 19 baseline).
    let root = plan.root();
    let query = plan.query();
    let seed = query
        .labels(root)
        .iter()
        .min_by_key(|&l| graph.vertices_with_label(l).len())
        .expect("non-empty label set");
    let roots: Vec<VertexId> = graph
        .vertices_with_label(seed)
        .iter()
        .copied()
        .filter(|&v| query.labels(root).is_subset_of(graph.labels(v)))
        .filter(|&v| graph.degree(v) >= query.degree(root))
        .collect();
    let single_vertex = plan.query().num_vertices() == 1;
    let budget = SharedBudget::new(options.limit);
    let next = AtomicUsize::new(0);
    let mut results: Vec<(Counters, Duration, Vec<Vec<VertexId>>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..options.workers {
            let roots = &roots;
            let next = &next;
            let budget = budget.clone();
            handles.push(scope.spawn(move || {
                let mut counters = Counters::default();
                let mut busy = Duration::ZERO;
                let mut collected = Vec::new();
                let mut worker = BareWorker::new(graph, plan);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&root_image) = roots.get(i) else {
                        break;
                    };
                    if budget.stopped() {
                        break;
                    }
                    let start = ThreadTimer::start();
                    if options.collect {
                        let mut inner = CollectSink::unbounded();
                        {
                            let mut sink = SharedLimitSink::new(&mut inner, budget.clone());
                            run_one(
                                &mut worker,
                                single_vertex,
                                root_image,
                                &mut sink,
                                &mut counters,
                            );
                        }
                        collected.extend(inner.into_embeddings());
                    } else {
                        let mut inner = CountSink::unbounded();
                        let mut sink = SharedLimitSink::new(&mut inner, budget.clone());
                        run_one(
                            &mut worker,
                            single_vertex,
                            root_image,
                            &mut sink,
                            &mut counters,
                        );
                    }
                    busy += start.elapsed();
                }
                (counters, busy, collected)
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    let mut counters = Counters::default();
    let mut worker_busy = Vec::new();
    let mut all = Vec::new();
    for (c, busy, collected) in results {
        counters.merge(&c);
        worker_busy.push(busy);
        all.extend(collected);
    }
    let embeddings = if options.collect {
        all.sort();
        if let Some(l) = options.limit {
            all.truncate(l as usize);
        }
        Some(all)
    } else {
        None
    };
    BareResult {
        total_embeddings: counters.embeddings,
        counters,
        worker_busy,
        embeddings,
    }
}

fn run_one<S: EmbeddingSink>(
    worker: &mut BareWorker<'_>,
    single_vertex: bool,
    root_image: VertexId,
    sink: &mut S,
    counters: &mut Counters,
) {
    if single_vertex {
        counters.embeddings += 1;
        sink.emit(&[root_image]);
    } else {
        worker.run_root(root_image, sink, counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn sample_graph() -> Graph {
        // Two triangles sharing an edge plus a tail.
        Graph::unlabeled(
            5,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
            ],
        )
    }

    #[test]
    fn matches_reference_on_triangles() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let expected = reference::enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
        let result = enumerate_bare(
            &graph,
            &plan,
            &BareOptions {
                collect: true,
                ..Default::default()
            },
        );
        // Reference maps by query id; plan's matching order may differ but
        // output embeddings are by query id in both engines.
        assert_eq!(result.embeddings.unwrap(), expected);
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let serial = enumerate_bare(
            &graph,
            &plan,
            &BareOptions {
                collect: true,
                ..Default::default()
            },
        );
        let parallel = enumerate_bare(
            &graph,
            &plan,
            &BareOptions {
                workers: 4,
                collect: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.embeddings, parallel.embeddings);
    }

    #[test]
    fn counts_edge_verifications() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = enumerate_bare(&graph, &plan, &BareOptions::default());
        assert!(result.counters.edge_verifications > 0);
        assert!(result.counters.recursive_calls > 0);
    }

    #[test]
    fn limit_respected() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = enumerate_bare(
            &graph,
            &plan,
            &BareOptions {
                limit: Some(1),
                collect: true,
                ..Default::default()
            },
        );
        assert_eq!(result.embeddings.unwrap().len(), 1);
    }

    #[test]
    fn single_vertex_query() {
        let graph = sample_graph();
        let plan = QueryPlan::new(ceci_query::QueryGraph::unlabeled(1, &[]).unwrap(), &graph);
        let result = enumerate_bare(&graph, &plan, &BareOptions::default());
        assert_eq!(result.total_embeddings, 5);
    }
}
