//! DualSim-style matcher (Kim et al., SIGMOD 2016) — lite, with a paged-IO
//! model.
//!
//! DualSim is a *disk-based* enumerator: adjacency lists live in slotted
//! pages, a bounded set of pages is memory-resident at a time, and the dual
//! approach iterates page combinations, running matching against whatever is
//! loaded. Its performance is IO-bound — the CECI paper's explanation for
//! beating it is exactly that DualSim "loads a set of few slotted pages from
//! graph at a time ... and is able to supply very limited amount of workload
//! in a given time" (§6.1).
//!
//! We do not have the authors' disk format (the paper itself *quotes*
//! DualSim's published numbers rather than rerunning it). This lite engine
//! reproduces the *behavioral model*: adjacency data is split into fixed-size
//! pages, every neighbor-list access goes through an LRU page cache of
//! bounded capacity, cache misses are counted, and the reported runtime is
//! `cpu_time + page_faults × page_load_latency`. The matching logic itself
//! is the same bare backtracking CECI's baseline uses, so the only modeled
//! difference is the IO bottleneck — which is the property the figures need.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use ceci_core::metrics::Counters;
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Paged view of a graph's adjacency data with an LRU cache.
pub struct PagedGraph<'a> {
    graph: &'a Graph,
    /// Adjacency entries per page.
    page_size: usize,
    /// Pages the cache can hold.
    capacity: usize,
    /// LRU queue of resident page ids (front = oldest).
    resident: VecDeque<usize>,
    resident_set: std::collections::HashSet<usize>,
    /// Cache misses (page loads).
    page_faults: u64,
    /// Total page accesses.
    page_accesses: u64,
}

impl<'a> PagedGraph<'a> {
    /// Wraps `graph` with a page model: `page_size` adjacency entries per
    /// page, `capacity` resident pages.
    pub fn new(graph: &'a Graph, page_size: usize, capacity: usize) -> Self {
        assert!(page_size >= 1 && capacity >= 1);
        PagedGraph {
            graph,
            page_size,
            capacity,
            resident: VecDeque::new(),
            resident_set: std::collections::HashSet::new(),
            page_faults: 0,
            page_accesses: 0,
        }
    }

    /// Pages the adjacency slice of `v` spans.
    fn pages_of(&self, v: VertexId) -> (usize, usize) {
        let offsets = self.graph.csr().offsets();
        let start = offsets[v.index()] / self.page_size;
        let end = offsets[v.index() + 1].saturating_sub(1) / self.page_size;
        (start, end.max(start))
    }

    /// Touches the pages backing `v`'s adjacency list, then returns it.
    pub fn neighbors(&mut self, v: VertexId) -> &'a [VertexId] {
        let (first, last) = self.pages_of(v);
        for page in first..=last {
            self.touch(page);
        }
        self.graph.neighbors(v)
    }

    /// Edge check through the pager (touches the smaller endpoint's pages).
    pub fn has_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        let probe = if self.graph.degree(a) <= self.graph.degree(b) {
            a
        } else {
            b
        };
        let key = if probe == a { b } else { a };
        self.neighbors(probe).binary_search(&key).is_ok()
    }

    fn touch(&mut self, page: usize) {
        self.page_accesses += 1;
        if self.resident_set.contains(&page) {
            return;
        }
        self.page_faults += 1;
        if self.resident.len() == self.capacity {
            if let Some(evicted) = self.resident.pop_front() {
                self.resident_set.remove(&evicted);
            }
        }
        self.resident.push_back(page);
        self.resident_set.insert(page);
    }

    /// Cache misses so far.
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Total page touches so far.
    pub fn page_accesses(&self) -> u64 {
        self.page_accesses
    }
}

/// Result of a DualSim-style run.
#[derive(Debug)]
pub struct DualSimResult {
    /// Embeddings found.
    pub total_embeddings: u64,
    /// Counters.
    pub counters: Counters,
    /// Page cache misses.
    pub page_faults: u64,
    /// Page touches.
    pub page_accesses: u64,
    /// Pure CPU wall time.
    pub cpu_time: Duration,
    /// Modeled total time: `cpu_time + page_faults × page_load_latency`.
    pub modeled_time: Duration,
}

/// Options for the DualSim-style engine.
#[derive(Clone, Copy, Debug)]
pub struct DualSimOptions {
    /// Adjacency entries per slotted page.
    pub page_size: usize,
    /// Resident page budget (the "small portion of graph in memory").
    pub cache_pages: usize,
    /// Modeled latency per page load.
    pub page_load_latency: Duration,
}

impl Default for DualSimOptions {
    fn default() -> Self {
        DualSimOptions {
            // Calibrated so the modeled IO penalty lands in the ballpark of
            // the DualSim numbers the CECI paper quotes (1.9x-20x slower
            // than CECI): a 4 KiB slotted page of 1,024 u32 adjacency
            // entries, an NVMe-class ~2us effective read (queue-depth
            // amortized), and a resident budget of 512 pages — small graphs
            // mostly fit (small penalty), larger ones thrash (large
            // penalty), matching the paper's spread.
            page_size: 1024,
            cache_pages: 512,
            page_load_latency: Duration::from_micros(2),
        }
    }
}

/// Runs the DualSim-style paged matcher (sequential; counts all embeddings).
pub fn enumerate_dualsim(
    graph: &Graph,
    plan: &QueryPlan,
    options: &DualSimOptions,
) -> DualSimResult {
    let start = Instant::now();
    let mut pager = PagedGraph::new(graph, options.page_size, options.cache_pages);
    let mut counters = Counters::default();
    let n = plan.query().num_vertices();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = std::collections::HashSet::new();

    let root = plan.root();
    let query = plan.query();
    let roots: Vec<VertexId> = graph
        .vertices_with_label(
            query
                .labels(root)
                .iter()
                .min_by_key(|&l| graph.vertices_with_label(l).len())
                .expect("non-empty label set"),
        )
        .iter()
        .copied()
        .filter(|&v| query.labels(root).is_subset_of(graph.labels(v)))
        .filter(|&v| graph.degree(v) >= query.degree(root))
        .collect();
    for s in roots {
        if n == 1 {
            counters.embeddings += 1;
            continue;
        }
        mapping[root.index()] = Some(s);
        used.insert(s);
        search(
            graph,
            plan,
            &mut pager,
            1,
            &mut mapping,
            &mut used,
            &mut counters,
        );
        mapping[root.index()] = None;
        used.remove(&s);
    }
    let cpu_time = start.elapsed();
    let modeled_time = cpu_time + options.page_load_latency * pager.page_faults() as u32;
    DualSimResult {
        total_embeddings: counters.embeddings,
        counters,
        page_faults: pager.page_faults(),
        page_accesses: pager.page_accesses(),
        cpu_time,
        modeled_time,
    }
}

fn search(
    graph: &Graph,
    plan: &QueryPlan,
    pager: &mut PagedGraph<'_>,
    depth: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut std::collections::HashSet<VertexId>,
    counters: &mut Counters,
) {
    counters.recursive_calls += 1;
    let order = plan.matching_order();
    let u = order[depth];
    let query = plan.query();
    let parent = plan.tree().parent(u).expect("non-root");
    let parent_image = mapping[parent.index()].expect("assigned");
    let last = depth + 1 == order.len();
    let neighbors = pager.neighbors(parent_image);
    'cand: for &v in neighbors {
        if used.contains(&v) {
            counters.injectivity_rejections += 1;
            continue;
        }
        if !query.labels(u).is_subset_of(graph.labels(v)) || graph.degree(v) < query.degree(u) {
            continue;
        }
        for un in plan.backward_nte(u) {
            let image = mapping[un.index()].expect("assigned earlier");
            counters.edge_verifications += 1;
            if !pager.has_edge(v, image) {
                continue 'cand;
            }
        }
        if !plan.satisfies_symmetry(u, v, mapping) {
            counters.symmetry_rejections += 1;
            continue;
        }
        mapping[u.index()] = Some(v);
        used.insert(v);
        if last {
            counters.embeddings += 1;
        } else {
            search(graph, plan, pager, depth + 1, mapping, used, counters);
        }
        mapping[u.index()] = None;
        used.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn sample_graph() -> Graph {
        Graph::unlabeled(
            6,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
                (vid(4), vid(5)),
                (vid(5), vid(3)),
            ],
        )
    }

    #[test]
    fn counts_match_reference() {
        let graph = sample_graph();
        for pq in PaperQuery::ALL {
            let plan = QueryPlan::new(pq.build(), &graph);
            let expected = reference::count_all(&graph, plan.query(), plan.symmetry_constraints());
            let result = enumerate_dualsim(&graph, &plan, &DualSimOptions::default());
            assert_eq!(result.total_embeddings, expected, "{}", pq.name());
        }
    }

    #[test]
    fn tiny_cache_causes_more_faults() {
        // Big enough graph that adjacency spans many 8-entry pages.
        let mut edges = Vec::new();
        for i in 0..200u32 {
            edges.push((vid(i), vid((i + 1) % 200)));
            edges.push((vid(i), vid((i + 7) % 200)));
            edges.push((vid(i), vid((i + 31) % 200)));
        }
        let graph = Graph::unlabeled(200, &edges);
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let small = enumerate_dualsim(
            &graph,
            &plan,
            &DualSimOptions {
                page_size: 8,
                cache_pages: 1,
                ..Default::default()
            },
        );
        let large = enumerate_dualsim(
            &graph,
            &plan,
            &DualSimOptions {
                page_size: 8,
                cache_pages: 4096,
                ..Default::default()
            },
        );
        assert_eq!(small.total_embeddings, large.total_embeddings);
        assert!(
            small.page_faults > large.page_faults,
            "small-cache faults {} should exceed large-cache faults {}",
            small.page_faults,
            large.page_faults
        );
    }

    #[test]
    fn modeled_time_includes_io() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = enumerate_dualsim(
            &graph,
            &plan,
            &DualSimOptions {
                page_size: 2,
                cache_pages: 2,
                page_load_latency: Duration::from_millis(1),
            },
        );
        assert!(result.page_faults > 0);
        assert!(result.modeled_time > result.cpu_time);
        assert!(result.page_accesses >= result.page_faults);
    }

    #[test]
    fn pager_lru_eviction() {
        let graph = sample_graph();
        let mut pager = PagedGraph::new(&graph, 2, 1);
        let _ = pager.neighbors(vid(0));
        let f1 = pager.page_faults();
        let _ = pager.neighbors(vid(0));
        // Single adjacency spanning the same pages: re-touch may or may not
        // fault depending on span; but capacity 1 with a multi-page span
        // always evicts, so faults never decrease.
        assert!(pager.page_faults() >= f1);
    }
}
