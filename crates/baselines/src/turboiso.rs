//! TurboIso-style matcher (Han et al., SIGMOD 2013) — lite.
//!
//! TurboIso's recipe: pick a start query vertex by `|cand|/deg`, build a
//! *candidate region* (a tree-shaped exploration of the data graph mirroring
//! the BFS query tree) per start-vertex match, compute a region-local
//! matching order from candidate-region sizes, then enumerate inside the
//! region verifying non-tree edges against the graph.
//!
//! This lite version keeps the start-vertex rule, the per-region candidate
//! exploration (equivalent to CECI's TE tables restricted to one pivot), the
//! region-size-ordered enumeration, and edge verification for NTEs. It
//! omits the NEC-tree query compression (our plans already carry complete
//! symmetry breaking, which subsumes its de-duplication role) — noted in
//! DESIGN.md as a simplification.
//!
//! Crucially — and this is the paper's §6.2 comparison point — the auxiliary
//! structure is built and torn down *per region*, serializing index creation
//! with enumeration, and non-tree edges cost adjacency lookups instead of
//! intersections.

use std::time::Instant;

use ceci_core::metrics::Counters;
use ceci_core::sink::{CollectSink, EmbeddingSink};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Result of a TurboIso-style run.
#[derive(Debug)]
pub struct TurboResult {
    /// Embeddings found (≤ limit when set).
    pub total_embeddings: u64,
    /// Counters.
    pub counters: Counters,
    /// Regions explored.
    pub regions: usize,
    /// Collected embeddings (canonically sorted) when requested.
    pub embeddings: Option<Vec<Vec<VertexId>>>,
    /// Wall time.
    pub elapsed: std::time::Duration,
}

/// Options for the TurboIso-style engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct TurboOptions {
    /// Stop after this many embeddings.
    pub limit: Option<u64>,
    /// Collect embeddings.
    pub collect: bool,
}

/// A candidate region: per query node, the data vertices reachable from the
/// region's start match along the query tree (TE-equivalent, one pivot).
struct Region {
    /// `cand[u]` — sorted candidates of query node `u` inside the region.
    cand: Vec<Vec<VertexId>>,
}

/// Runs the TurboIso-style matcher (sequential, as the original).
pub fn enumerate_turboiso(graph: &Graph, plan: &QueryPlan, options: &TurboOptions) -> TurboResult {
    let start = Instant::now();
    let mut counters = Counters::default();
    let mut collect = CollectSink::unbounded();
    let mut total = 0u64;
    let mut regions = 0usize;
    let starts: Vec<VertexId> = plan.initial_candidates(plan.root()).to_vec();
    let single = plan.query().num_vertices() == 1;
    'outer: for s in starts {
        regions += 1;
        if single {
            total += 1;
            counters.embeddings += 1;
            if options.collect {
                collect.emit(&[s]);
            }
            if options.limit.map(|l| total >= l).unwrap_or(false) {
                break 'outer;
            }
            continue;
        }
        let Some(region) = explore_region(graph, plan, s) else {
            continue;
        };
        let mut mapping = vec![None; plan.query().num_vertices()];
        let mut used = std::collections::HashSet::new();
        mapping[plan.root().index()] = Some(s);
        used.insert(s);
        let keep = region_search(
            graph,
            plan,
            &region,
            1,
            &mut mapping,
            &mut used,
            &mut total,
            options,
            &mut collect,
            &mut counters,
        );
        if !keep {
            break 'outer;
        }
    }
    let embeddings = if options.collect {
        let mut all = collect.into_embeddings();
        all.sort();
        Some(all)
    } else {
        None
    };
    TurboResult {
        total_embeddings: total,
        counters,
        regions,
        embeddings,
        elapsed: start.elapsed(),
    }
}

/// Explores the candidate region rooted at `s`: BFS over the query tree,
/// collecting per-node candidates by label/degree filtering of frontier
/// neighborhoods. Returns `None` when some query node has no candidates.
fn explore_region(graph: &Graph, plan: &QueryPlan, s: VertexId) -> Option<Region> {
    let query = plan.query();
    let n = query.num_vertices();
    let mut cand: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    cand[plan.root().index()].push(s);
    for &u in plan.matching_order().iter().skip(1) {
        let p = plan.tree().parent(u).expect("non-root");
        let mut set = std::collections::BTreeSet::new();
        for &vp in &cand[p.index()] {
            for &v in graph.neighbors(vp) {
                if query.labels(u).is_subset_of(graph.labels(v))
                    && graph.degree(v) >= query.degree(u)
                {
                    set.insert(v);
                }
            }
        }
        if set.is_empty() {
            return None;
        }
        cand[u.index()] = set.into_iter().collect();
    }
    Some(Region { cand })
}

#[allow(clippy::too_many_arguments)]
fn region_search(
    graph: &Graph,
    plan: &QueryPlan,
    region: &Region,
    depth: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut std::collections::HashSet<VertexId>,
    total: &mut u64,
    options: &TurboOptions,
    collect: &mut CollectSink,
    counters: &mut Counters,
) -> bool {
    counters.recursive_calls += 1;
    let order = plan.matching_order();
    let u = order[depth];
    let query = plan.query();
    let parent = plan.tree().parent(u).expect("non-root");
    let parent_image = mapping[parent.index()].expect("assigned");
    let last = depth + 1 == order.len();
    'cand: for &v in &region.cand[u.index()] {
        // Region candidates are per-node; the tree edge to the parent's
        // image still needs verification (the region merges all parents).
        counters.edge_verifications += 1;
        if !graph.has_edge(v, parent_image) {
            continue;
        }
        if used.contains(&v) {
            counters.injectivity_rejections += 1;
            continue;
        }
        for un in plan.backward_nte(u) {
            let image = mapping[un.index()].expect("assigned earlier");
            counters.edge_verifications += 1;
            if !graph.has_edge(v, image) {
                continue 'cand;
            }
        }
        if !plan.satisfies_symmetry(u, v, mapping) {
            counters.symmetry_rejections += 1;
            continue;
        }
        mapping[u.index()] = Some(v);
        used.insert(v);
        let mut keep = true;
        if last {
            *total += 1;
            counters.embeddings += 1;
            if options.collect {
                let emb: Vec<VertexId> = mapping.iter().map(|m| m.unwrap()).collect();
                collect.emit(&emb);
            }
            if let Some(limit) = options.limit {
                if *total >= limit {
                    keep = false;
                }
            }
        } else {
            keep = region_search(
                graph,
                plan,
                region,
                depth + 1,
                mapping,
                used,
                total,
                options,
                collect,
                counters,
            );
        }
        mapping[u.index()] = None;
        used.remove(&v);
        if !keep {
            return false;
        }
        let _ = query;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn sample_graph() -> Graph {
        Graph::unlabeled(
            6,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
                (vid(4), vid(5)),
                (vid(5), vid(3)),
            ],
        )
    }

    #[test]
    fn matches_reference() {
        let graph = sample_graph();
        for pq in [
            PaperQuery::Qg1,
            PaperQuery::Qg2,
            PaperQuery::Qg3,
            PaperQuery::Qg5,
        ] {
            let plan = QueryPlan::new(pq.build(), &graph);
            let expected =
                reference::enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
            let result = enumerate_turboiso(
                &graph,
                &plan,
                &TurboOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(result.embeddings.unwrap(), expected, "{}", pq.name());
        }
    }

    #[test]
    fn limit_stops_early() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let all = enumerate_turboiso(&graph, &plan, &TurboOptions::default()).total_embeddings;
        assert!(all >= 2);
        let result = enumerate_turboiso(
            &graph,
            &plan,
            &TurboOptions {
                limit: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(result.total_embeddings, 1);
    }

    #[test]
    fn explores_regions_and_verifies_edges() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let result = enumerate_turboiso(&graph, &plan, &TurboOptions::default());
        assert!(result.regions > 0);
        assert!(result.counters.edge_verifications > 0);
    }
}
