//! PsgL-style parallel subgraph listing (Shao et al., SIGMOD 2014) — lite.
//!
//! PsgL enumerates *all embeddings at once*: it materializes every partial
//! embedding of the first `i` query nodes as a level-`i` frontier, then
//! expands the whole frontier to level `i+1` in parallel, re-balancing work
//! after every expansion. The paper's critique — which this implementation
//! reproduces faithfully — is (a) exponential intermediate result sets and
//! (b) no pruning of unpromising paths before exhaustive expansion.
//!
//! Differences from the original: PsgL runs on Giraph over partitioned
//! graphs; we run level-synchronous expansion over threads with the data
//! graph shared in memory (the CECI authors did the same — "We implemented
//! PsgL ... on shared memory using OpenMP", §6.1).

use std::time::Instant;

use ceci_core::metrics::{Counters, ThreadTimer};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Result of a PsgL-style run.
#[derive(Debug)]
pub struct PsglResult {
    /// Embeddings found.
    pub total_embeddings: u64,
    /// Counters: `recursive_calls` counts partial-embedding expansions —
    /// the same search-space proxy as CECI's recursive calls (Fig 18).
    pub counters: Counters,
    /// Peak number of materialized partial embeddings across levels — the
    /// memory blow-up the paper criticizes.
    pub peak_intermediate: usize,
    /// Collected embeddings (canonically sorted) when requested.
    pub embeddings: Option<Vec<Vec<VertexId>>>,
    /// Wall time of the run.
    pub elapsed: std::time::Duration,
    /// Modeled makespan on one core per worker: Σ over levels of the
    /// busiest chunk's CPU time — PsgL's level-synchronous barriers mean
    /// each level costs its slowest worker.
    pub modeled_time: std::time::Duration,
}

/// Options for the PsgL-style engine.
#[derive(Clone, Copy, Debug)]
pub struct PsglOptions {
    /// Worker threads for each expansion level.
    pub workers: usize,
    /// Collect embeddings.
    pub collect: bool,
    /// Stop once at least this many embeddings exist (checked per level —
    /// coarser than CECI's per-embedding limit, reflecting the
    /// all-at-once design).
    pub limit: Option<u64>,
}

impl Default for PsglOptions {
    fn default() -> Self {
        PsglOptions {
            workers: 1,
            collect: false,
            limit: None,
        }
    }
}

/// Runs PsgL-style level-synchronous enumeration.
pub fn enumerate_psgl(graph: &Graph, plan: &QueryPlan, options: &PsglOptions) -> PsglResult {
    assert!(options.workers >= 1);
    let start = Instant::now();
    let order = plan.matching_order();
    let query = plan.query();
    let n = order.len();

    // Level 0: all label/degree-compatible images of the first query node.
    let root = order[0];
    let seed = query
        .labels(root)
        .iter()
        .min_by_key(|&l| graph.vertices_with_label(l).len())
        .expect("non-empty label set");
    let mut frontier: Vec<Vec<VertexId>> = graph
        .vertices_with_label(seed)
        .iter()
        .copied()
        .filter(|&v| query.labels(root).is_subset_of(graph.labels(v)))
        .filter(|&v| graph.degree(v) >= query.degree(root))
        .map(|v| vec![v])
        .collect();

    let mut counters = Counters::default();
    let mut peak = frontier.len();
    let mut modeled = std::time::Duration::ZERO;

    #[allow(clippy::needless_range_loop)] // depth is semantic, not just an index
    for depth in 1..n {
        if frontier.is_empty() {
            break;
        }
        let u = order[depth];
        let chunk = frontier.len().div_ceil(options.workers);
        let mut level_counters: Vec<Counters> = Vec::new();
        let mut next_level: Vec<Vec<VertexId>> = Vec::new();
        let mut level_max_busy = std::time::Duration::ZERO;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in frontier.chunks(chunk.max(1)) {
                handles.push(scope.spawn(move || {
                    let t = ThreadTimer::start();
                    let mut local = Vec::new();
                    let mut c = Counters::default();
                    for partial in piece {
                        expand_partial(graph, plan, u, depth, partial, &mut local, &mut c);
                    }
                    (local, c, t.elapsed())
                }));
            }
            for h in handles {
                let (local, c, busy) = h.join().expect("psgl worker panicked");
                next_level.extend(local);
                level_counters.push(c);
                level_max_busy = level_max_busy.max(busy);
            }
        });
        modeled += level_max_busy;
        for c in level_counters {
            counters.merge(&c);
        }
        frontier = next_level;
        peak = peak.max(frontier.len());
        if let Some(limit) = options.limit {
            if depth == n - 1 && frontier.len() as u64 >= limit {
                frontier.truncate(limit as usize);
            }
        }
    }

    counters.embeddings = frontier.len() as u64;
    // Partial embeddings are stored in matching order; re-index by query id.
    let by_query_id = |p: &Vec<VertexId>| -> Vec<VertexId> {
        let mut emb = vec![VertexId(0); n];
        for (i, &v) in p.iter().enumerate() {
            emb[order[i].index()] = v;
        }
        emb
    };
    let embeddings = if options.collect {
        let mut all: Vec<Vec<VertexId>> = frontier.iter().map(by_query_id).collect();
        all.sort();
        Some(all)
    } else {
        None
    };
    let elapsed = start.elapsed();
    // Level-0 seeding and bookkeeping run serially; charge the difference.
    let serial_overhead = elapsed.saturating_sub(modeled).min(elapsed);
    PsglResult {
        total_embeddings: frontier.len() as u64,
        counters,
        peak_intermediate: peak,
        embeddings,
        elapsed,
        modeled_time: if options.workers <= 1 {
            elapsed
        } else {
            modeled + serial_overhead / 2
        },
    }
}

/// Expands one partial embedding by query node `u` (at `depth` in the
/// matching order), appending the extended partials to `out`.
fn expand_partial(
    graph: &Graph,
    plan: &QueryPlan,
    u: VertexId,
    depth: usize,
    partial: &[VertexId],
    out: &mut Vec<Vec<VertexId>>,
    counters: &mut Counters,
) {
    counters.recursive_calls += 1;
    let order = plan.matching_order();
    let query = plan.query();
    // Reconstruct the by-query-id mapping for symmetry checks.
    let n = query.num_vertices();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    for (i, &v) in partial.iter().enumerate() {
        mapping[order[i].index()] = Some(v);
    }
    let parent = plan.tree().parent(u).expect("non-root");
    let parent_image = mapping[parent.index()].expect("assigned");
    'cand: for &v in graph.neighbors(parent_image) {
        if partial.contains(&v) {
            counters.injectivity_rejections += 1;
            continue;
        }
        if !query.labels(u).is_subset_of(graph.labels(v)) || graph.degree(v) < query.degree(u) {
            continue;
        }
        for un in plan.backward_nte(u) {
            let image = mapping[un.index()].expect("assigned earlier");
            counters.edge_verifications += 1;
            if !graph.has_edge(v, image) {
                continue 'cand;
            }
        }
        if !plan.satisfies_symmetry(u, v, &mapping) {
            counters.symmetry_rejections += 1;
            continue;
        }
        let mut next = Vec::with_capacity(depth + 1);
        next.extend_from_slice(partial);
        next.push(v);
        out.push(next);
    }
    let _ = depth;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn sample_graph() -> Graph {
        Graph::unlabeled(
            6,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
                (vid(4), vid(5)),
                (vid(5), vid(3)),
            ],
        )
    }

    #[test]
    fn matches_reference() {
        let graph = sample_graph();
        for pq in [PaperQuery::Qg1, PaperQuery::Qg2, PaperQuery::Qg3] {
            let plan = QueryPlan::new(pq.build(), &graph);
            let expected =
                reference::enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
            let result = enumerate_psgl(
                &graph,
                &plan,
                &PsglOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(result.embeddings.unwrap(), expected, "{}", pq.name());
            assert_eq!(result.total_embeddings, expected.len() as u64);
        }
    }

    #[test]
    fn parallel_levels_agree() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let serial = enumerate_psgl(
            &graph,
            &plan,
            &PsglOptions {
                collect: true,
                ..Default::default()
            },
        );
        let parallel = enumerate_psgl(
            &graph,
            &plan,
            &PsglOptions {
                workers: 4,
                collect: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.embeddings, parallel.embeddings);
    }

    #[test]
    fn tracks_peak_intermediate() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = enumerate_psgl(&graph, &plan, &PsglOptions::default());
        assert!(result.peak_intermediate >= result.total_embeddings as usize);
        assert!(result.counters.recursive_calls > 0);
    }

    #[test]
    fn empty_result_for_impossible_query() {
        let graph = Graph::unlabeled(3, &[(vid(0), vid(1)), (vid(1), vid(2))]);
        let plan = QueryPlan::new(PaperQuery::Qg4.build(), &graph);
        let result = enumerate_psgl(&graph, &plan, &PsglOptions::default());
        assert_eq!(result.total_embeddings, 0);
    }
}
