//! Boosted-TurboIso: TurboIso accelerated with BoostIso-style data-graph
//! vertex equivalence (Ren & Wang, VLDB 2015) — lite.
//!
//! BoostIso observes that real graphs contain many *syntactically
//! equivalent* (SE) vertices — same label, same neighborhood — which a
//! matcher explores redundantly. Two flavors exist:
//!
//! * **non-adjacent twins**: `N(v) = N(w)`, `v ≁ w` (e.g. two pendant
//!   vertices hanging off the same hub);
//! * **adjacent twins**: `N(v) ∪ {v} = N(w) ∪ {w}`, `v ~ w` (e.g. two
//!   members of a clique module).
//!
//! This engine compresses each *candidate list* to one representative per
//! equivalence class, searches the compressed space (allowing several query
//! vertices to share a class up to its multiplicity, with class-aware edge
//! semantics), and expands every compressed embedding into its concrete
//! embeddings by injectively assigning class members — honoring symmetry
//! constraints at expansion time.

use std::collections::HashMap;
use std::time::Instant;

use ceci_core::metrics::Counters;
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Kind of a twin class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwinKind {
    /// Members are pairwise **non**-adjacent (`N(v) = N(w)`).
    Independent,
    /// Members are pairwise adjacent (`N[v] = N[w]`, closed neighborhoods).
    Clique,
}

/// SE-equivalence classes of a data graph.
#[derive(Debug)]
pub struct VertexEquivalence {
    /// `class_of[v]` = class id of vertex `v`.
    pub class_of: Vec<u32>,
    /// Members per class, sorted ascending (index = class id).
    pub members: Vec<Vec<VertexId>>,
    /// Twin kind per class (singletons are `Independent` by convention).
    pub kind: Vec<TwinKind>,
}

impl VertexEquivalence {
    /// Computes SE classes by hashing open and closed neighborhoods.
    pub fn compute(graph: &Graph) -> Self {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let n = graph.num_vertices();
        let mut groups: HashMap<(u64, bool), Vec<VertexId>> = HashMap::new();
        for v in graph.vertices() {
            // Open-neighborhood signature (non-adjacent twins).
            let mut h = DefaultHasher::new();
            graph.labels(v).as_slice().hash(&mut h);
            graph.neighbors(v).hash(&mut h);
            groups.entry((h.finish(), false)).or_default().push(v);
            // Closed-neighborhood signature (adjacent twins): hash the
            // sorted union N(v) ∪ {v}.
            let mut closed: Vec<VertexId> = graph.neighbors(v).to_vec();
            let pos = closed.binary_search(&v).unwrap_or_else(|p| p);
            closed.insert(pos, v);
            let mut h = DefaultHasher::new();
            graph.labels(v).as_slice().hash(&mut h);
            closed.hash(&mut h);
            groups.entry((h.finish(), true)).or_default().push(v);
        }
        // Verify hash groups exactly (guard against collisions) and build
        // classes; closed-neighborhood classes win for mutually adjacent
        // sets, open-neighborhood for independent sets. Each vertex joins at
        // most one nontrivial class (the first verified one).
        let mut class_of: Vec<Option<u32>> = vec![None; n];
        let mut members: Vec<Vec<VertexId>> = Vec::new();
        let mut kind: Vec<TwinKind> = Vec::new();
        let mut sorted_groups: Vec<((u64, bool), Vec<VertexId>)> = groups.into_iter().collect();
        sorted_groups.sort_by_key(|((h, closed), _)| (!closed, *h));
        for ((_, closed), mut group) in sorted_groups {
            group.sort_unstable();
            group.dedup();
            if group.len() < 2 {
                continue;
            }
            // Split the hash bucket into exact-equality runs.
            let mut runs: Vec<Vec<VertexId>> = Vec::new();
            'outer: for &v in &group {
                if class_of[v.index()].is_some() {
                    continue;
                }
                for run in &mut runs {
                    let w = run[0];
                    if equivalent(graph, v, w, closed) {
                        run.push(v);
                        continue 'outer;
                    }
                }
                runs.push(vec![v]);
            }
            for run in runs {
                if run.len() < 2 {
                    continue;
                }
                let id = members.len() as u32;
                for &v in &run {
                    class_of[v.index()] = Some(id);
                }
                members.push(run);
                kind.push(if closed {
                    TwinKind::Clique
                } else {
                    TwinKind::Independent
                });
            }
        }
        // Singleton classes for the rest.
        for (v, class) in class_of.iter_mut().enumerate() {
            if class.is_none() {
                let id = members.len() as u32;
                *class = Some(id);
                members.push(vec![VertexId::from_index(v)]);
                kind.push(TwinKind::Independent);
            }
        }
        VertexEquivalence {
            class_of: class_of.into_iter().map(|c| c.unwrap()).collect(),
            members,
            kind,
        }
    }

    /// Number of non-singleton classes.
    pub fn num_nontrivial_classes(&self) -> usize {
        self.members.iter().filter(|m| m.len() > 1).count()
    }

    /// Vertices covered by non-singleton classes.
    pub fn compressed_vertices(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.len() > 1)
            .map(|m| m.len())
            .sum()
    }
}

fn equivalent(graph: &Graph, v: VertexId, w: VertexId, closed: bool) -> bool {
    if v == w {
        return true;
    }
    if graph.labels(v) != graph.labels(w) {
        return false;
    }
    if closed {
        // N[v] == N[w] requires v ~ w and N(v)\{w} == N(w)\{v}.
        if !graph.has_edge(v, w) {
            return false;
        }
        let nv: Vec<VertexId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&x| x != w)
            .collect();
        let nw: Vec<VertexId> = graph
            .neighbors(w)
            .iter()
            .copied()
            .filter(|&x| x != v)
            .collect();
        nv == nw
    } else {
        graph.neighbors(v) == graph.neighbors(w)
    }
}

/// Result of a boosted run.
#[derive(Debug)]
pub struct BoostResult {
    /// Concrete embeddings reported (≤ limit when set).
    pub total_embeddings: u64,
    /// Compressed (representative) embeddings explored.
    pub compressed_embeddings: u64,
    /// Counters.
    pub counters: Counters,
    /// Non-singleton classes in the data graph.
    pub nontrivial_classes: usize,
    /// Collected embeddings (canonically sorted) when requested.
    pub embeddings: Option<Vec<Vec<VertexId>>>,
    /// Wall time including equivalence computation.
    pub elapsed: std::time::Duration,
}

/// Options for the boosted engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoostOptions {
    /// Stop after this many concrete embeddings.
    pub limit: Option<u64>,
    /// Collect embeddings.
    pub collect: bool,
}

struct Search<'a> {
    graph: &'a Graph,
    plan: &'a QueryPlan,
    eq: &'a VertexEquivalence,
    /// Per query node: sorted candidate list (representatives only), plus
    /// the per-class member subset present among that node's candidates.
    reps: Vec<Vec<VertexId>>,
    node_members: Vec<HashMap<u32, Vec<VertexId>>>,
    /// mapping[u] = class id.
    mapping_class: Vec<Option<u32>>,
    /// Query vertices mapped per class.
    class_count: HashMap<u32, u32>,
    options: BoostOptions,
    emitted: u64,
    compressed: u64,
    collected: Vec<Vec<VertexId>>,
    /// Epoch-stamped per-class visited marks (avoids a HashSet per depth).
    class_stamp: Vec<u64>,
    stamp_epoch: u64,
    /// Per-depth candidate buffers.
    cand_buffers: Vec<Vec<VertexId>>,
    /// Expansion scratch.
    expand_assignment: Vec<Option<VertexId>>,
    expand_used: std::collections::HashSet<VertexId>,
}

/// Runs Boosted-TurboIso-lite: candidate compression + compressed search +
/// expansion. Computes the vertex equivalence inline; when matching many
/// queries against one graph, precompute it once and use
/// [`enumerate_boosted_with`] (the original BoostIso treats graph adaptation
/// as offline preprocessing).
pub fn enumerate_boosted(graph: &Graph, plan: &QueryPlan, options: &BoostOptions) -> BoostResult {
    let eq = VertexEquivalence::compute(graph);
    enumerate_boosted_with(graph, plan, &eq, options)
}

/// [`enumerate_boosted`] with a precomputed [`VertexEquivalence`].
pub fn enumerate_boosted_with(
    graph: &Graph,
    plan: &QueryPlan,
    eq: &VertexEquivalence,
    options: &BoostOptions,
) -> BoostResult {
    let start = Instant::now();
    let mut counters = Counters::default();
    let query = plan.query();
    let n = query.num_vertices();

    // Per-node candidate lists from the plan's initial candidates, collapsed
    // to class representatives.
    let mut reps: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut node_members: Vec<HashMap<u32, Vec<VertexId>>> = Vec::with_capacity(n);
    for u in query.vertices() {
        let mut per_class: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for &v in plan.initial_candidates(u) {
            per_class.entry(eq.class_of[v.index()]).or_default().push(v);
        }
        let mut rep_list: Vec<VertexId> = per_class
            .values()
            .map(|ms| *ms.iter().min().expect("non-empty"))
            .collect();
        rep_list.sort_unstable();
        reps.push(rep_list);
        node_members.push(per_class);
    }

    let mut search = Search {
        graph,
        plan,
        eq,
        reps,
        node_members,
        mapping_class: vec![None; n],
        class_count: HashMap::new(),
        options: *options,
        emitted: 0,
        compressed: 0,
        collected: Vec::new(),
        class_stamp: vec![0; eq.members.len()],
        stamp_epoch: 0,
        cand_buffers: vec![Vec::new(); n + 1],
        expand_assignment: vec![None; n],
        expand_used: std::collections::HashSet::new(),
    };
    search.run(&mut counters);

    let embeddings = if options.collect {
        let mut all = std::mem::take(&mut search.collected);
        all.sort();
        Some(all)
    } else {
        None
    };
    BoostResult {
        total_embeddings: search.emitted,
        compressed_embeddings: search.compressed,
        counters,
        nontrivial_classes: eq.num_nontrivial_classes(),
        embeddings,
        elapsed: start.elapsed(),
    }
}

impl Search<'_> {
    fn run(&mut self, counters: &mut Counters) {
        let order = self.plan.matching_order().to_vec();
        let root = order[0];
        let roots = self.reps[root.index()].clone();
        for rep in roots {
            let class = self.eq.class_of[rep.index()];
            self.mapping_class[root.index()] = Some(class);
            *self.class_count.entry(class).or_insert(0) += 1;
            let keep = self.search_depth(1, counters);
            self.mapping_class[root.index()] = None;
            *self.class_count.get_mut(&class).unwrap() -= 1;
            if !keep {
                break;
            }
        }
    }

    /// Compressed backtracking: maps query nodes to *classes*; a class may
    /// host several query vertices up to the number of its members present
    /// in each node's candidate list (exactness is settled at expansion).
    ///
    /// Candidates for a non-root node come from the tree parent's
    /// representative adjacency (twins share adjacency, so the
    /// representative's neighbor list covers every class reachable from any
    /// member), intersected with the node's per-class candidate membership.
    fn search_depth(&mut self, depth: usize, counters: &mut Counters) -> bool {
        counters.recursive_calls += 1;
        let order = self.plan.matching_order();
        if depth == order.len() {
            self.compressed += 1;
            return self.expand(counters);
        }
        let u = order[depth];
        let parent = self.plan.tree().parent(u).expect("non-root");
        let parent_class = self.mapping_class[parent.index()].expect("assigned");
        let parent_rep = self.eq.members[parent_class as usize][0];
        // Classes adjacent to the parent's image, deduped with an epoch
        // stamp. If the parent's class is a clique with >1 member, the class
        // itself is adjacent to its members even though the rep's own list
        // omits the rep.
        self.stamp_epoch += 1;
        let epoch = self.stamp_epoch;
        let mut candidates = std::mem::take(&mut self.cand_buffers[depth]);
        candidates.clear();
        for &nb in self.graph.neighbors(parent_rep) {
            let c = self.eq.class_of[nb.index()];
            if self.class_stamp[c as usize] != epoch {
                self.class_stamp[c as usize] = epoch;
                candidates.push(self.eq.members[c as usize][0]);
            }
        }
        if self.eq.kind[parent_class as usize] == TwinKind::Clique
            && self.eq.members[parent_class as usize].len() > 1
            && self.class_stamp[parent_class as usize] != epoch
        {
            self.class_stamp[parent_class as usize] = epoch;
            candidates.push(parent_rep);
        }
        let mut keep_all = true;
        'cand: for &rep in &candidates {
            let class = self.eq.class_of[rep.index()];
            let used = self.class_count.get(&class).copied().unwrap_or(0) as usize;
            // Multiplicity: can this class host one more query vertex?
            let avail = self.node_members[u.index()]
                .get(&class)
                .map(|m| m.len())
                .unwrap_or(0);
            if avail == 0 || used >= self.eq.members[class as usize].len() {
                counters.injectivity_rejections += 1;
                continue;
            }
            // Class-aware edge checks against all earlier query neighbors.
            for &w in self.plan.query().neighbors(u) {
                let Some(wclass) = self.mapping_class[w.index()] else {
                    continue;
                };
                counters.edge_verifications += 1;
                let ok = if wclass == class {
                    self.eq.kind[class as usize] == TwinKind::Clique
                } else {
                    let wrep = self.eq.members[wclass as usize][0];
                    self.graph.has_edge(rep, wrep)
                };
                if !ok {
                    continue 'cand;
                }
            }
            self.mapping_class[u.index()] = Some(class);
            *self.class_count.entry(class).or_insert(0) += 1;
            let keep = self.search_depth(depth + 1, counters);
            self.mapping_class[u.index()] = None;
            *self.class_count.get_mut(&class).unwrap() -= 1;
            if !keep {
                keep_all = false;
                break 'cand;
            }
        }
        self.cand_buffers[depth] = candidates;
        keep_all
    }

    /// Expands a complete compressed embedding: injectively assigns concrete
    /// class members to query vertices (each from that vertex's own
    /// candidate member list), honoring symmetry constraints.
    fn expand(&mut self, counters: &mut Counters) -> bool {
        let mut assignment = std::mem::take(&mut self.expand_assignment);
        let mut used = std::mem::take(&mut self.expand_used);
        assignment.fill(None);
        used.clear();
        let keep = self.expand_rec(0, &mut assignment, &mut used, counters);
        self.expand_assignment = assignment;
        self.expand_used = used;
        keep
    }

    fn expand_rec(
        &mut self,
        idx: usize,
        assignment: &mut Vec<Option<VertexId>>,
        used: &mut std::collections::HashSet<VertexId>,
        counters: &mut Counters,
    ) -> bool {
        let order = self.plan.matching_order();
        if idx == order.len() {
            counters.embeddings += 1;
            self.emitted += 1;
            if self.options.collect {
                self.collected
                    .push(assignment.iter().map(|a| a.unwrap()).collect());
            }
            return self.options.limit.map(|l| self.emitted < l).unwrap_or(true);
        }
        let u = order[idx];
        let class = self.mapping_class[u.index()].expect("complete compressed embedding");
        // Singleton fast path: one candidate member, no clone.
        let members: &[VertexId] = match self.node_members[u.index()].get(&class) {
            Some(m) => m,
            None => &[],
        };
        let members: Vec<VertexId> = if members.len() == 1 {
            vec![members[0]]
        } else {
            members.to_vec()
        };
        for v in members {
            if used.contains(&v) {
                continue;
            }
            if !self.plan.satisfies_symmetry(u, v, assignment) {
                counters.symmetry_rejections += 1;
                continue;
            }
            assignment[u.index()] = Some(v);
            used.insert(v);
            let keep = self.expand_rec(idx + 1, assignment, used, counters);
            assignment[u.index()] = None;
            used.remove(&v);
            if !keep {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::generators::{attach_pendants, erdos_renyi, kronecker_default};
    use ceci_graph::vid;
    use ceci_query::{PaperQuery, QueryGraph};

    #[test]
    fn twin_detection_pendants_and_cliques() {
        // Hub 0 with three pendant twins 1,2,3 plus a triangle module 4,5,6
        // all attached to 0.
        let g = ceci_graph::Graph::unlabeled(
            7,
            &[
                (vid(0), vid(1)),
                (vid(0), vid(2)),
                (vid(0), vid(3)),
                (vid(0), vid(4)),
                (vid(0), vid(5)),
                (vid(0), vid(6)),
                (vid(4), vid(5)),
                (vid(5), vid(6)),
                (vid(4), vid(6)),
            ],
        );
        let eq = VertexEquivalence::compute(&g);
        // Pendants 1,2,3 are independent twins; 4,5,6 are clique twins.
        let c1 = eq.class_of[1];
        assert_eq!(eq.class_of[2], c1);
        assert_eq!(eq.class_of[3], c1);
        assert_eq!(eq.kind[c1 as usize], TwinKind::Independent);
        let c4 = eq.class_of[4];
        assert_eq!(eq.class_of[5], c4);
        assert_eq!(eq.class_of[6], c4);
        assert_eq!(eq.kind[c4 as usize], TwinKind::Clique);
        assert_ne!(c1, c4);
        assert_eq!(eq.num_nontrivial_classes(), 2);
        assert_eq!(eq.compressed_vertices(), 6);
    }

    fn check_against_reference(graph: &ceci_graph::Graph, query: QueryGraph, ctx: &str) {
        let plan = QueryPlan::new(query, graph);
        let expected = reference::enumerate_all(graph, plan.query(), plan.symmetry_constraints());
        let result = enumerate_boosted(
            graph,
            &plan,
            &BoostOptions {
                collect: true,
                ..Default::default()
            },
        );
        assert_eq!(result.embeddings.unwrap(), expected, "{ctx}");
        // Compressed embeddings may over- or under-count concrete ones
        // (some expand to many, some — blocked by symmetry or injectivity —
        // to none), but a complete run must visit at least one compressed
        // embedding whenever concrete embeddings exist.
        if !expected.is_empty() {
            assert!(result.compressed_embeddings >= 1, "{ctx}");
        }
    }

    #[test]
    fn matches_reference_on_twin_heavy_graphs() {
        let core = kronecker_default(6, 4, 7);
        let graph = attach_pendants(&core, 60, 8);
        for q in PaperQuery::ALL {
            check_against_reference(&graph, q.build(), q.name());
        }
        check_against_reference(&graph, ceci_query::catalog::star(3), "star3");
        check_against_reference(&graph, ceci_query::catalog::path(4), "path4");
    }

    #[test]
    fn matches_reference_on_er() {
        let graph = erdos_renyi(50, 160, 5);
        for q in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
            check_against_reference(&graph, q.build(), q.name());
        }
    }

    #[test]
    fn star_query_into_pendant_class() {
        // Star with 3 leaves matched into a hub with 5 pendant twins: all
        // leaves land in ONE class; expansion must produce P(5,3) = 60
        // injective assignments / |Aut fixes|... with symmetry breaking the
        // three leaves are interchangeable, so 5·4·3/3! = 10 embeddings.
        let mut edges = Vec::new();
        for i in 1..=5u32 {
            edges.push((vid(0), vid(i)));
        }
        let graph = ceci_graph::Graph::unlabeled(6, &edges);
        let plan = QueryPlan::new(ceci_query::catalog::star(3), &graph);
        let expected = reference::enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
        assert_eq!(expected.len(), 10);
        let result = enumerate_boosted(&graph, &plan, &BoostOptions::default());
        assert_eq!(result.total_embeddings, 10);
        // One compressed embedding covers all ten concrete ones.
        assert_eq!(result.compressed_embeddings, 1);
    }

    #[test]
    fn limit_respected() {
        let core = kronecker_default(6, 4, 9);
        let graph = attach_pendants(&core, 40, 10);
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let all = enumerate_boosted(&graph, &plan, &BoostOptions::default()).total_embeddings;
        if all >= 3 {
            let result = enumerate_boosted(
                &graph,
                &plan,
                &BoostOptions {
                    limit: Some(3),
                    collect: true,
                },
            );
            assert_eq!(result.total_embeddings, 3);
            assert_eq!(result.embeddings.unwrap().len(), 3);
        }
    }
}
