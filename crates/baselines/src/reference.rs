//! Brute-force reference enumerator — the correctness oracle.
//!
//! Deliberately shares almost nothing with the CECI machinery: it walks
//! query vertices in plain id order, tries every label-compatible data
//! vertex, and checks *all* adjacent assigned query vertices by direct edge
//! lookup. Slow, obvious, and easy to audit; every other engine is tested
//! against it.

use ceci_graph::{Graph, VertexId};
use ceci_query::{OrderConstraint, QueryGraph};

/// Enumerates every isomorphic embedding of `query` in `graph`, subject to
/// optional symmetry-breaking `constraints` (`map(smaller) < map(larger)`).
///
/// Returns embeddings as `mapping[query vertex] = data vertex`, sorted
/// lexicographically.
pub fn enumerate_all(
    graph: &Graph,
    query: &QueryGraph,
    constraints: &[OrderConstraint],
) -> Vec<Vec<VertexId>> {
    let n = query.num_vertices();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::new();
    rec(
        graph,
        query,
        constraints,
        0,
        &mut mapping,
        &mut used,
        &mut out,
    );
    out.sort();
    out
}

/// Counts embeddings without materializing them.
pub fn count_all(graph: &Graph, query: &QueryGraph, constraints: &[OrderConstraint]) -> u64 {
    enumerate_all(graph, query, constraints).len() as u64
}

fn rec(
    graph: &Graph,
    query: &QueryGraph,
    constraints: &[OrderConstraint],
    depth: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut std::collections::HashSet<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    let n = query.num_vertices();
    if depth == n {
        out.push(mapping.iter().map(|m| m.unwrap()).collect());
        return;
    }
    let u = VertexId(depth as u32);
    // Seed candidates from the label index of the rarest member label.
    let seed = query
        .labels(u)
        .iter()
        .min_by_key(|&l| graph.vertices_with_label(l).len())
        .expect("non-empty label set");
    for &v in graph.vertices_with_label(seed) {
        if used.contains(&v) {
            continue;
        }
        if !query.labels(u).is_subset_of(graph.labels(v)) {
            continue;
        }
        // Every query edge to an assigned vertex must exist in the graph.
        let edges_ok = query.neighbors(u).iter().all(|&w| {
            mapping[w.index()]
                .map(|img| graph.has_edge(v, img))
                .unwrap_or(true)
        });
        if !edges_ok {
            continue;
        }
        // Symmetry constraints against assigned endpoints.
        let sym_ok = constraints.iter().all(|c| {
            if c.smaller == u {
                mapping[c.larger.index()].map(|img| v < img).unwrap_or(true)
            } else if c.larger == u {
                mapping[c.smaller.index()]
                    .map(|img| img < v)
                    .unwrap_or(true)
            } else {
                true
            }
        });
        if !sym_ok {
            continue;
        }
        mapping[u.index()] = Some(v);
        used.insert(v);
        rec(graph, query, constraints, depth + 1, mapping, used, out);
        mapping[u.index()] = None;
        used.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;
    use ceci_query::nec::break_symmetry;
    use ceci_query::PaperQuery;

    #[test]
    fn triangle_counts_with_and_without_breaking() {
        // Two triangles sharing an edge: 0-1-2, 1-2-3.
        let graph = Graph::unlabeled(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
            ],
        );
        let q = PaperQuery::Qg1.build();
        assert_eq!(count_all(&graph, &q, &[]), 12); // 2 triangles × 3! autos
        let (constraints, complete) = break_symmetry(&q, 1_000_000);
        assert!(complete);
        assert_eq!(count_all(&graph, &q, &constraints), 2);
    }

    #[test]
    fn square_count() {
        // 4-cycle data graph contains exactly one square.
        let graph = Graph::unlabeled(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(3)),
                (vid(3), vid(0)),
            ],
        );
        let q = PaperQuery::Qg2.build();
        let (constraints, _) = break_symmetry(&q, 1_000_000);
        assert_eq!(count_all(&graph, &q, &constraints), 1);
        // Without breaking: |Aut(C4)| = 8 listings.
        assert_eq!(count_all(&graph, &q, &[]), 8);
    }

    #[test]
    fn labeled_matching_respects_labels() {
        use ceci_graph::{lid, LabelSet};
        let graph = Graph::new(
            vec![
                LabelSet::single(lid(0)),
                LabelSet::single(lid(1)),
                LabelSet::single(lid(1)),
            ],
            &[(vid(0), vid(1)), (vid(0), vid(2))],
            false,
        );
        let q = ceci_query::QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap();
        let found = enumerate_all(&graph, &q, &[]);
        assert_eq!(found, vec![vec![vid(0), vid(1)], vec![vid(0), vid(2)]]);
    }

    #[test]
    fn no_match_returns_empty() {
        let graph = Graph::unlabeled(3, &[(vid(0), vid(1))]);
        let q = PaperQuery::Qg1.build();
        assert!(enumerate_all(&graph, &q, &[]).is_empty());
    }
}
