//! # ceci-baselines
//!
//! From-scratch implementations of the algorithms the CECI paper compares
//! against, sharing the same [`ceci_query::QueryPlan`] preprocessing so the
//! comparisons isolate the engine differences:
//!
//! * [`mod@reference`] — brute-force oracle used by every correctness test.
//! * [`bare`] — index-free parallel backtracking (the Figure 19 baseline).
//! * [`psgl`] — PsgL-style all-embeddings-at-once level expansion with
//!   materialized intermediates (Figures 7, 8, 13, 14, 18).
//! * [`turboiso`] — TurboIso-style per-region candidate exploration with
//!   edge verification (Figure 10).
//! * [`boostiso`] — Boosted-TurboIso: BoostIso-style data-vertex twin
//!   compression with compressed search + expansion (Figure 10).
//! * [`cfl`] — CFLMatch-style CPI (TE-only index) + edge verification, with
//!   the adjacency-matrix size guard the paper criticizes (Figure 9, §6.4).
//! * [`dualsim`] — DualSim-style paged-IO behavioural model (Figures 7, 8).
//!
//! Simplifications relative to the originals are documented in each module
//! and in DESIGN.md; all engines are validated against [`mod@reference`] on
//! random graphs in the workspace property tests.

#![warn(missing_docs)]

pub mod bare;
pub mod boostiso;
pub mod cfl;
pub mod dualsim;
pub mod psgl;
pub mod reference;
pub mod turboiso;

pub use bare::{enumerate_bare, BareOptions, BareResult};
pub use boostiso::{
    enumerate_boosted, enumerate_boosted_with, BoostOptions, BoostResult, VertexEquivalence,
};
pub use cfl::{enumerate_cfl, AdjacencyMatrix, CflOptions, CflResult};
pub use dualsim::{enumerate_dualsim, DualSimOptions, DualSimResult, PagedGraph};
pub use psgl::{enumerate_psgl, PsglOptions, PsglResult};
pub use reference::{count_all, enumerate_all};
pub use turboiso::{enumerate_turboiso, TurboOptions, TurboResult};
