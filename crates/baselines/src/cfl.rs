//! CFLMatch-style matcher (Bi et al., SIGMOD 2016) — lite.
//!
//! CFLMatch builds a *Compact Path Index* (CPI): per query node, candidates
//! keyed by the tree parent's candidates — structurally CECI's TE tables
//! without NTE tables — refined in both directions, then enumerates with
//! adjacency checks for non-tree edges. The original additionally uses a
//! core-forest-leaf decomposition for its matching order and an adjacency-
//! *matrix* edge check (the very design CECI's §4.1/§6.4 criticizes for
//! restricting it to small graphs).
//!
//! This lite version reuses the CECI builder with `build_nte = false`
//! (yielding exactly a CPI), enumerates in `EdgeVerification` mode, and —
//! faithful to the critique — offers an optional dense adjacency-matrix edge
//! oracle whose memory blows up quadratically, with a guard that reports the
//! paper's observed failure ("failed to run data graphs larger than 500K
//! nodes") instead of thrashing.

use std::time::Instant;

use ceci_core::metrics::Counters;
use ceci_core::sink::{CollectSink, CountSink};
use ceci_core::{enumerate_sequential, BuildOptions, Ceci, EnumOptions, VerifyMode};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

/// Result of a CFL-style run.
#[derive(Debug)]
pub struct CflResult {
    /// Embeddings found (≤ limit when set).
    pub total_embeddings: u64,
    /// Counters (edge verifications dominate; intersections stay 0).
    pub counters: Counters,
    /// CPI build time.
    pub build_time: std::time::Duration,
    /// Enumeration time.
    pub enumerate_time: std::time::Duration,
    /// Collected embeddings (canonically sorted) when requested.
    pub embeddings: Option<Vec<Vec<VertexId>>>,
}

/// Options for the CFL-style engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct CflOptions {
    /// Stop after this many embeddings.
    pub limit: Option<u64>,
    /// Collect embeddings.
    pub collect: bool,
}

/// Vertex-count ceiling for the adjacency-matrix oracle: the paper reports
/// CFLMatch failing beyond 500K vertices on a 512 GB machine (§6.4).
pub const ADJACENCY_MATRIX_VERTEX_LIMIT: usize = 500_000;

/// Error for data graphs the adjacency-matrix design cannot hold.
#[derive(Debug, PartialEq, Eq)]
pub struct GraphTooLarge {
    /// Vertices in the offending graph.
    pub num_vertices: usize,
}

impl std::fmt::Display for GraphTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "adjacency-matrix representation needs {} bits — CFLMatch-style engines cap out near {} vertices",
            self.num_vertices as u128 * self.num_vertices as u128,
            ADJACENCY_MATRIX_VERTEX_LIMIT
        )
    }
}

impl std::error::Error for GraphTooLarge {}

/// Dense bit-matrix edge oracle — CFLMatch's `O(|V|²)`-bit representation.
#[derive(Debug)]
pub struct AdjacencyMatrix {
    n: usize,
    bits: Vec<u64>,
}

impl AdjacencyMatrix {
    /// Builds the matrix, refusing graphs past the practical limit.
    pub fn build(graph: &Graph) -> Result<Self, GraphTooLarge> {
        let n = graph.num_vertices();
        if n > ADJACENCY_MATRIX_VERTEX_LIMIT {
            return Err(GraphTooLarge { num_vertices: n });
        }
        let words = (n * n).div_ceil(64);
        let mut bits = vec![0u64; words];
        for v in graph.vertices() {
            for &nb in graph.neighbors(v) {
                let idx = v.index() * n + nb.index();
                bits[idx / 64] |= 1 << (idx % 64);
            }
        }
        Ok(AdjacencyMatrix { n, bits })
    }

    /// Constant-time edge test.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let idx = a.index() * self.n + b.index();
        self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Bytes held by the matrix.
    pub fn size_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }
}

/// Runs the CFL-style matcher: CPI build (TE-only CECI) + edge-verification
/// enumeration. Sequential, as the original.
pub fn enumerate_cfl(graph: &Graph, plan: &QueryPlan, options: &CflOptions) -> CflResult {
    let t0 = Instant::now();
    let cpi = Ceci::build_with(
        graph,
        plan,
        BuildOptions {
            build_nte: false,
            refine: true,
            ..BuildOptions::default()
        },
    );
    let build_time = t0.elapsed();
    let enum_opts = EnumOptions {
        verify: VerifyMode::EdgeVerification,
        ..Default::default()
    };
    let t1 = Instant::now();
    let (counters, total, embeddings) = if options.collect {
        let mut sink = match options.limit {
            Some(l) => CollectSink::with_limit(l as usize),
            None => CollectSink::unbounded(),
        };
        let counters = enumerate_sequential(graph, plan, &cpi, enum_opts, &mut sink);
        let total = sink.len() as u64;
        let mut all = sink.into_embeddings();
        all.sort();
        (counters, total, Some(all))
    } else {
        let mut sink = match options.limit {
            Some(l) => CountSink::with_limit(l),
            None => CountSink::unbounded(),
        };
        let counters = enumerate_sequential(graph, plan, &cpi, enum_opts, &mut sink);
        (counters, sink.count(), None)
    };
    CflResult {
        total_embeddings: total,
        counters,
        build_time,
        enumerate_time: t1.elapsed(),
        embeddings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn sample_graph() -> Graph {
        Graph::unlabeled(
            6,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
                (vid(4), vid(5)),
                (vid(5), vid(3)),
            ],
        )
    }

    #[test]
    fn matches_reference() {
        let graph = sample_graph();
        for pq in PaperQuery::ALL {
            let plan = QueryPlan::new(pq.build(), &graph);
            let expected =
                reference::enumerate_all(&graph, plan.query(), plan.symmetry_constraints());
            let result = enumerate_cfl(
                &graph,
                &plan,
                &CflOptions {
                    collect: true,
                    ..Default::default()
                },
            );
            assert_eq!(result.embeddings.unwrap(), expected, "{}", pq.name());
        }
    }

    #[test]
    fn uses_edge_verification_not_intersection() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let result = enumerate_cfl(&graph, &plan, &CflOptions::default());
        assert!(result.counters.edge_verifications > 0);
        assert_eq!(result.counters.intersection_ops, 0);
    }

    #[test]
    fn limit_respected() {
        let graph = sample_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let result = enumerate_cfl(
            &graph,
            &plan,
            &CflOptions {
                limit: Some(1),
                collect: true,
            },
        );
        assert_eq!(result.total_embeddings, 1);
    }

    #[test]
    fn adjacency_matrix_edge_oracle() {
        let graph = sample_graph();
        let m = AdjacencyMatrix::build(&graph).unwrap();
        for a in graph.vertices() {
            for b in graph.vertices() {
                assert_eq!(m.has_edge(a, b), graph.has_edge(a, b));
            }
        }
        assert!(m.size_bytes() >= 1);
    }

    #[test]
    fn adjacency_matrix_refuses_large_graphs() {
        // Construct a fake "large" graph cheaply by checking the guard only.
        // (We cannot allocate 500K² bits in a unit test; the guard triggers
        // before any allocation.)
        let n = ADJACENCY_MATRIX_VERTEX_LIMIT + 1;
        let graph = Graph::unlabeled(n, &[]);
        let err = AdjacencyMatrix::build(&graph).unwrap_err();
        assert_eq!(err.num_vertices, n);
        assert!(err.to_string().contains("cap out"));
    }
}
