//! Degree-one tail attachment.
//!
//! Real communication/web graphs (wiki-talk, Youtube, citPatent) carry a
//! heavy tail of degree-1 vertices — the property that makes the paper's
//! degree filter so effective (Table 2 reports up to 88% space saved on
//! WT). Pure R-MAT cores lack that tail; [`attach_pendants`] grafts one on:
//! `count` new vertices, each attached by a single edge to a host vertex
//! chosen degree-proportionally (hubs collect most pendants, as in real
//! data). New vertices inherit label 0 in unlabeled graphs or a random
//! existing label otherwise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Returns a copy of `graph` with `count` pendant (degree-1) vertices
/// attached to degree-proportionally sampled hosts. Deterministic in `seed`.
///
/// # Panics
/// Panics if `graph` has no edges (no hosts to attach to).
pub fn attach_pendants(graph: &Graph, count: usize, seed: u64) -> Graph {
    assert!(
        graph.num_edges() > 0,
        "cannot attach pendants to an edgeless graph"
    );
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);

    // Degree-proportional host sampling via the flattened adjacency array:
    // picking a random adjacency entry endpoint is exactly degree-weighted.
    let raw = graph.csr().raw_neighbors();
    let mut labels: Vec<LabelSet> = (0..n)
        .map(|i| graph.labels(VertexId::from_index(i)).clone())
        .collect();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(graph.num_edges() + count);
    for v in graph.vertices() {
        for &nb in graph.neighbors(v) {
            if v < nb {
                edges.push((v, nb));
            }
        }
    }
    let num_labels = graph.num_labels().max(1);
    for i in 0..count {
        let host = raw[rng.gen_range(0..raw.len())];
        let new_id = VertexId::from_index(n + i);
        let label = if num_labels == 1 {
            LabelId(0)
        } else {
            LabelId(rng.gen_range(0..num_labels))
        };
        labels.push(LabelSet::single(label));
        edges.push((host, new_id));
    }
    Graph::new(labels, &edges, graph.is_directed_input())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::kronecker::kronecker_default;

    #[test]
    fn pendants_have_degree_one() {
        let core = kronecker_default(8, 4, 7);
        let n = core.num_vertices();
        let g = attach_pendants(&core, 100, 1);
        assert_eq!(g.num_vertices(), n + 100);
        assert_eq!(g.num_edges(), core.num_edges() + 100);
        for i in 0..100 {
            assert_eq!(g.degree(VertexId::from_index(n + i)), 1);
        }
    }

    #[test]
    fn core_structure_preserved() {
        let core = kronecker_default(7, 4, 9);
        let g = attach_pendants(&core, 50, 2);
        for v in core.vertices() {
            for &nb in core.neighbors(v) {
                assert!(g.has_edge(v, nb));
            }
        }
    }

    #[test]
    fn deterministic() {
        let core = kronecker_default(7, 4, 9);
        let a = attach_pendants(&core, 30, 5);
        let b = attach_pendants(&core, 30, 5);
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn hubs_collect_more_pendants() {
        let core = kronecker_default(9, 8, 3);
        let hub = core.vertices().max_by_key(|&v| core.degree(v)).unwrap();
        let g = attach_pendants(&core, 2000, 4);
        let gained_hub = g.degree(hub) - core.degree(hub);
        // A degree-proportional process gives the hub far more pendants than
        // an average vertex would get under uniform attachment.
        let uniform_share = 2000 / core.num_vertices();
        assert!(gained_hub > uniform_share * 3, "hub gained {gained_hub}");
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn edgeless_graph_rejected() {
        let g = Graph::unlabeled(3, &[]);
        let _ = attach_pendants(&g, 1, 0);
    }
}
