//! Label injection and dense labeled graph generation.
//!
//! §6.2 of the paper: *"We randomly inject each node of RD with one of the
//! 100 different labels. HU dataset comes with one or more of 90 different
//! labels on each node."* — [`inject_random_labels`] reproduces the former;
//! [`dense_labeled`] synthesizes a Human-like dense graph with multi-label
//! vertices for the latter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Returns a copy of `graph` where every vertex gets a single label drawn
/// uniformly from `0..num_labels`. Deterministic in `seed`.
pub fn inject_random_labels(graph: &Graph, num_labels: u32, seed: u64) -> Graph {
    assert!(num_labels > 0, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<LabelSet> = (0..graph.num_vertices())
        .map(|_| LabelSet::single(LabelId(rng.gen_range(0..num_labels))))
        .collect();
    rebuild_with_labels(graph, labels)
}

/// Returns a copy of `graph` where each vertex gets between `min_labels` and
/// `max_labels` distinct labels drawn from `0..num_labels`. Deterministic in
/// `seed`.
pub fn inject_random_multilabels(
    graph: &Graph,
    num_labels: u32,
    min_labels: usize,
    max_labels: usize,
    seed: u64,
) -> Graph {
    assert!(num_labels > 0, "need at least one label");
    assert!(
        (1..=num_labels as usize).contains(&min_labels) && min_labels <= max_labels,
        "label count range invalid"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<LabelSet> = (0..graph.num_vertices())
        .map(|_| {
            let k = rng.gen_range(min_labels..=max_labels.min(num_labels as usize));
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < k {
                picked.insert(LabelId(rng.gen_range(0..num_labels)));
            }
            LabelSet::from_labels(picked)
        })
        .collect();
    rebuild_with_labels(graph, labels)
}

fn rebuild_with_labels(graph: &Graph, labels: Vec<LabelSet>) -> Graph {
    let mut edges = Vec::with_capacity(graph.num_edges());
    for v in graph.vertices() {
        for &nb in graph.neighbors(v) {
            if v < nb {
                edges.push((v, nb));
            }
        }
    }
    Graph::new(labels, &edges, graph.is_directed_input())
}

/// Synthesizes a dense multi-labeled graph resembling the paper's Human (HU)
/// dataset: `n` vertices, ~`avg_degree` average degree, each vertex carrying
/// one to three of `num_labels` labels. Deterministic in `seed`.
pub fn dense_labeled(n: usize, avg_degree: usize, num_labels: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let target_edges = (n * avg_degree / 2).min(n * (n.saturating_sub(1)) / 2);
    let mut seen = std::collections::HashSet::with_capacity(target_edges * 2);
    let mut edges = Vec::with_capacity(target_edges);
    while edges.len() < target_edges {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b {
            ((a as u64) << 32) | b as u64
        } else {
            ((b as u64) << 32) | a as u64
        };
        if seen.insert(key) {
            edges.push((VertexId(a), VertexId(b)));
        }
    }
    let labels: Vec<LabelSet> = (0..n)
        .map(|_| {
            let k = rng.gen_range(1..=3usize.min(num_labels as usize));
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < k {
                picked.insert(LabelId(rng.gen_range(0..num_labels)));
            }
            LabelSet::from_labels(picked)
        })
        .collect();
    Graph::new(labels, &edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::er::erdos_renyi;

    #[test]
    fn inject_preserves_structure() {
        let g = erdos_renyi(100, 300, 5);
        let labeled = inject_random_labels(&g, 10, 1);
        assert_eq!(labeled.num_vertices(), g.num_vertices());
        assert_eq!(labeled.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(labeled.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn inject_uses_label_range() {
        let g = erdos_renyi(500, 1000, 5);
        let labeled = inject_random_labels(&g, 7, 1);
        assert!(labeled.num_labels() <= 7);
        // With 500 vertices and 7 labels all labels appear w.h.p.
        for l in 0..7 {
            assert!(
                !labeled.vertices_with_label(LabelId(l)).is_empty(),
                "label {l} unused"
            );
        }
    }

    #[test]
    fn inject_deterministic() {
        let g = erdos_renyi(50, 100, 5);
        let a = inject_random_labels(&g, 4, 9);
        let b = inject_random_labels(&g, 4, 9);
        for v in g.vertices() {
            assert_eq!(a.labels(v), b.labels(v));
        }
    }

    #[test]
    fn multilabel_bounds_respected() {
        let g = erdos_renyi(200, 400, 5);
        let labeled = inject_random_multilabels(&g, 20, 2, 4, 3);
        for v in labeled.vertices() {
            let k = labeled.labels(v).len();
            assert!((2..=4).contains(&k), "vertex {v:?} has {k} labels");
        }
    }

    #[test]
    fn dense_labeled_matches_target() {
        let g = dense_labeled(300, 20, 15, 8);
        assert_eq!(g.num_vertices(), 300);
        assert_eq!(g.num_edges(), 300 * 20 / 2);
        assert!(g.num_labels() <= 15);
        for v in g.vertices() {
            assert!((1..=3).contains(&g.labels(v).len()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_labels_panics() {
        let g = erdos_renyi(10, 5, 0);
        let _ = inject_random_labels(&g, 0, 0);
    }
}
