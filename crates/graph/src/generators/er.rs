//! Erdős–Rényi random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Generates a `G(n, m)` Erdős–Rényi graph: `m` distinct undirected edges
/// chosen uniformly at random among `n` vertices. Deterministic in `seed`.
///
/// Used as the stand-in for the paper's `rand_500k` synthetic dataset.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n−1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible for n = {n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while edges.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b {
            ((a as u64) << 32) | b as u64
        } else {
            ((b as u64) << 32) | a as u64
        };
        if seen.insert(key) {
            edges.push((VertexId(a), VertexId(b)));
        }
    }
    Graph::new(vec![LabelSet::single(LabelId(0)); n], &edges, false)
}

/// `G(n, p)` variant: each of the `n·(n−1)/2` possible edges is present
/// independently with probability `p`. Only suitable for small `n` (it
/// enumerates all pairs). Deterministic in `seed`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((VertexId(a), VertexId(b)));
            }
        }
    }
    Graph::new(vec![LabelSet::single(LabelId(0)); n], &edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi(100, 250, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_deterministic_in_seed() {
        let a = erdos_renyi(50, 80, 42);
        let b = erdos_renyi(50, 80, 42);
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        let c = erdos_renyi(50, 80, 43);
        let differs = a.vertices().any(|v| a.neighbors(v) != c.neighbors(v));
        assert!(differs, "different seeds should produce different graphs");
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_too_many_edges_panics() {
        let _ = erdos_renyi(3, 10, 0);
    }

    #[test]
    fn gnp_edge_probability_plausible() {
        let g = erdos_renyi_gnp(200, 0.1, 11);
        let expected = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < expected * 0.25,
            "edge count {m} far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).num_edges(), 45);
    }
}
