//! Classic social-network generators: Barabási–Albert preferential
//! attachment and Watts–Strogatz small-world rewiring.
//!
//! These complement the Graph500 Kronecker generator: BA produces clean
//! power-law degree tails (hub-dominated ExtremeClusters), WS produces the
//! high-clustering/low-diameter regime where triangle-type queries are
//! dense. Both are used by the test suites to diversify the structures the
//! engines are validated on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Barabási–Albert preferential attachment: starts from a clique of
/// `attach` vertices; each new vertex attaches to `attach` distinct existing
/// vertices sampled proportionally to their degree. Deterministic in `seed`.
///
/// # Panics
/// Panics if `n < attach + 1` or `attach == 0`.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "attach must be positive");
    assert!(n > attach, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * attach);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * attach);
    // Seed clique over the first `attach + 1` vertices.
    let seed_n = attach + 1;
    for a in 0..seed_n as u32 {
        for b in (a + 1)..seed_n as u32 {
            edges.push((VertexId(a), VertexId(b)));
            endpoints.push(VertexId(a));
            endpoints.push(VertexId(b));
        }
    }
    for v in seed_n..n {
        let vid = VertexId::from_index(v);
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < attach && guard < 100 * attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
            guard += 1;
        }
        for &t in &targets {
            edges.push((vid, t));
            endpoints.push(vid);
            endpoints.push(t);
        }
    }
    Graph::new(vec![LabelSet::single(LabelId(0)); n], &edges, false)
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k/2` nearest neighbors on each side, with each edge
/// rewired to a uniform random endpoint with probability `p`. Deterministic
/// in `seed`.
///
/// # Panics
/// Panics if `k` is odd, `k == 0`, `k >= n`, or `p ∉ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k > 0 && k % 2 == 0, "k must be positive and even");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
    for v in 0..n {
        for j in 1..=(k / 2) {
            let w = (v + j) % n;
            let (mut a, mut b) = (v, w);
            if rng.gen_bool(p) {
                // Rewire: keep `a`, pick a fresh random endpoint.
                let mut guard = 0;
                loop {
                    let c = rng.gen_range(0..n);
                    if c != a {
                        b = c;
                        break;
                    }
                    guard += 1;
                    if guard > 100 {
                        break;
                    }
                }
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            edges.push((VertexId::from_index(a), VertexId::from_index(b)));
        }
    }
    Graph::new(vec![LabelSet::single(LabelId(0)); n], &edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_shapes() {
        let g = barabasi_albert(500, 3, 1);
        assert_eq!(g.num_vertices(), 500);
        // Each non-seed vertex adds ~3 edges (dedup may trim a few).
        assert!(g.num_edges() > 400 * 3 / 2);
        // Power-law hubs: max degree far above attach count.
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn ba_deterministic() {
        let a = barabasi_albert(100, 2, 9);
        let b = barabasi_albert(100, 2, 9);
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "need more vertices")]
    fn ba_too_small_panics() {
        let _ = barabasi_albert(3, 3, 0);
    }

    #[test]
    fn ws_unrewired_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 2);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "lattice degree at {v:?}");
        }
    }

    #[test]
    fn ws_rewiring_changes_structure_preserving_count_bound() {
        let lattice = watts_strogatz(100, 6, 0.0, 3);
        let rewired = watts_strogatz(100, 6, 0.5, 3);
        assert!(rewired.num_edges() <= lattice.num_edges());
        let differs = lattice
            .vertices()
            .any(|v| lattice.neighbors(v) != rewired.neighbors(v));
        assert!(differs);
    }

    #[test]
    fn ws_full_rewire_still_valid() {
        let g = watts_strogatz(50, 4, 1.0, 4);
        assert_eq!(g.num_vertices(), 50);
        assert!(g.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive and even")]
    fn ws_odd_k_panics() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    fn ws_high_clustering_at_zero_p() {
        // Ring lattice with k=4 has many triangles; check a few exist.
        let g = watts_strogatz(30, 4, 0.0, 5);
        let mut triangles = 0;
        for v in g.vertices() {
            for &a in g.neighbors(v) {
                for &b in g.neighbors(v) {
                    if a < b && g.has_edge(a, b) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(triangles > 0);
    }
}
