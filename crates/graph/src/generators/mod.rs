//! Synthetic graph generators.
//!
//! Stand-ins for the paper's datasets (Table 1): Kronecker/R-MAT for the
//! power-law social graphs, Erdős–Rényi for `rand_500k`, dense multi-labeled
//! graphs for Human, and label injection for RD. All generators are
//! deterministic in their seed so experiments are reproducible.

pub mod er;
pub mod kronecker;
pub mod labeled;
pub mod social;
pub mod tail;

pub use er::{erdos_renyi, erdos_renyi_gnp};
pub use kronecker::{kronecker, kronecker_default, RmatParams};
pub use labeled::{dense_labeled, inject_random_labels, inject_random_multilabels};
pub use social::{barabasi_albert, watts_strogatz};
pub use tail::attach_pendants;
