//! Graph500-style Kronecker (R-MAT) generator.
//!
//! The paper generates its `rand_500k` synthetic graph with the Graph500
//! Kronecker generator \[15\], and its real datasets are power-law social
//! networks. This module implements the standard R-MAT edge-dropping
//! recursion with the Graph500 parameters `(a, b, c) = (0.57, 0.19, 0.19)`
//! as the default, producing skewed degree distributions — exactly the
//! property that makes ExtremeClusters appear (§4.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Parameters of the R-MAT recursion. `a + b + c` must be ≤ 1; the fourth
/// quadrant probability is `1 − a − b − c`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    /// The Graph500 reference parameters.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and `edge_factor ×
/// 2^scale` undirected edge samples (duplicates and self-loops are dropped
/// during CSR construction, so the final edge count is slightly lower, as in
/// Graph500 itself). Deterministic in `seed`.
pub fn kronecker(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph {
    assert!(scale < 31, "scale {scale} too large for u32 vertex ids");
    let sum = params.a + params.b + params.c;
    assert!(
        params.a >= 0.0 && params.b >= 0.0 && params.c >= 0.0 && sum <= 1.0 + 1e-9,
        "invalid R-MAT parameters"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut lo_r, mut hi_r) = (0u32, (n - 1) as u32);
        let (mut lo_c, mut hi_c) = (0u32, (n - 1) as u32);
        for _ in 0..scale {
            let x: f64 = rng.gen();
            let mid_r = lo_r + (hi_r - lo_r) / 2;
            let mid_c = lo_c + (hi_c - lo_c) / 2;
            if x < params.a {
                hi_r = mid_r;
                hi_c = mid_c;
            } else if x < params.a + params.b {
                hi_r = mid_r;
                lo_c = mid_c + 1;
            } else if x < params.a + params.b + params.c {
                lo_r = mid_r + 1;
                hi_c = mid_c;
            } else {
                lo_r = mid_r + 1;
                lo_c = mid_c + 1;
            }
        }
        edges.push((VertexId(lo_r), VertexId(lo_c)));
    }
    Graph::new(vec![LabelSet::single(LabelId(0)); n], &edges, false)
}

/// Convenience wrapper with the default Graph500 parameters.
pub fn kronecker_default(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    kronecker(scale, edge_factor, RmatParams::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = kronecker_default(8, 8, 1);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 8 * 256);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = kronecker_default(7, 6, 99);
        let b = kronecker_default(7, 6, 99);
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn skewed_degree_distribution() {
        // R-MAT with Graph500 parameters should be far more skewed than ER:
        // the max degree should exceed several times the average degree.
        let g = kronecker_default(10, 8, 3);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        assert!(
            max > 4.0 * avg,
            "expected skew: max degree {max} vs average {avg}"
        );
    }

    #[test]
    fn uniform_params_resemble_er() {
        // a = b = c = 0.25 makes every cell equally likely — low skew.
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = kronecker(10, 8, p, 3);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        assert!(max < 4.0 * avg, "uniform R-MAT should not be skewed");
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT parameters")]
    fn invalid_params_panic() {
        let p = RmatParams {
            a: 0.9,
            b: 0.2,
            c: 0.2,
        };
        let _ = kronecker(4, 2, p, 0);
    }
}
