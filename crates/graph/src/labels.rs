//! Vertex label sets.
//!
//! The paper's graph model (§2.1) assigns *one or more* labels to each vertex
//! (`L : V → 2^Σ`), and isomorphism requires label containment:
//! `L_q(u) ⊆ L(f(u))`. Most vertices carry exactly one label, so [`LabelSet`]
//! stores the single-label case inline and only allocates for multi-label
//! vertices.

use crate::ids::LabelId;

/// A sorted, duplicate-free set of labels attached to one vertex.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum LabelSet {
    /// The common case: exactly one label.
    One(LabelId),
    /// Two or more labels, sorted ascending with no duplicates.
    Many(Box<[LabelId]>),
}

impl LabelSet {
    /// Creates a set holding a single label.
    #[inline]
    pub fn single(label: LabelId) -> Self {
        LabelSet::One(label)
    }

    /// Creates a set from an arbitrary list of labels; sorts and dedups.
    ///
    /// # Panics
    /// Panics if `labels` is empty — every vertex must carry at least one
    /// label (unlabeled graphs use a single shared label, conventionally 0).
    pub fn from_labels(labels: impl IntoIterator<Item = LabelId>) -> Self {
        let mut v: Vec<LabelId> = labels.into_iter().collect();
        assert!(!v.is_empty(), "a vertex must have at least one label");
        v.sort_unstable();
        v.dedup();
        if v.len() == 1 {
            LabelSet::One(v[0])
        } else {
            LabelSet::Many(v.into_boxed_slice())
        }
    }

    /// Number of labels in the set (always ≥ 1).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            LabelSet::One(_) => 1,
            LabelSet::Many(ls) => ls.len(),
        }
    }

    /// `false` — label sets are never empty. Provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The labels as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[LabelId] {
        match self {
            LabelSet::One(l) => std::slice::from_ref(l),
            LabelSet::Many(ls) => ls,
        }
    }

    /// The first (smallest) label. For single-label vertices this is *the*
    /// label; §6.2 of the paper uses "only the first label" when deriving
    /// query labels from multi-labeled data vertices.
    #[inline]
    pub fn primary(&self) -> LabelId {
        match self {
            LabelSet::One(l) => *l,
            LabelSet::Many(ls) => ls[0],
        }
    }

    /// Does the set contain `label`?
    #[inline]
    pub fn contains(&self, label: LabelId) -> bool {
        match self {
            LabelSet::One(l) => *l == label,
            LabelSet::Many(ls) => ls.binary_search(&label).is_ok(),
        }
    }

    /// Containment test `self ⊆ other` — the isomorphism label condition
    /// `L_q(u) ⊆ L(v)` with `self` the query side.
    pub fn is_subset_of(&self, other: &LabelSet) -> bool {
        match self {
            LabelSet::One(l) => other.contains(*l),
            LabelSet::Many(ls) => {
                // Both sides sorted: linear merge scan.
                let os = other.as_slice();
                let mut i = 0;
                for l in ls.iter() {
                    while i < os.len() && os[i] < *l {
                        i += 1;
                    }
                    if i >= os.len() || os[i] != *l {
                        return false;
                    }
                    i += 1;
                }
                true
            }
        }
    }

    /// Iterates the labels in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl std::fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.as_slice()).finish()
    }
}

impl From<LabelId> for LabelSet {
    #[inline]
    fn from(l: LabelId) -> Self {
        LabelSet::One(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::lid;

    #[test]
    fn single_label_basics() {
        let s = LabelSet::single(lid(3));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(s.contains(lid(3)));
        assert!(!s.contains(lid(2)));
        assert_eq!(s.primary(), lid(3));
        assert_eq!(s.as_slice(), &[lid(3)]);
    }

    #[test]
    fn from_labels_sorts_and_dedups() {
        let s = LabelSet::from_labels([lid(5), lid(1), lid(5), lid(3)]);
        assert_eq!(s.as_slice(), &[lid(1), lid(3), lid(5)]);
        assert_eq!(s.primary(), lid(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn from_labels_collapses_to_one() {
        let s = LabelSet::from_labels([lid(4), lid(4)]);
        assert!(matches!(s, LabelSet::One(_)));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_label_set_panics() {
        let _ = LabelSet::from_labels(std::iter::empty());
    }

    #[test]
    fn subset_semantics() {
        let one = LabelSet::single(lid(2));
        let many = LabelSet::from_labels([lid(1), lid(2), lid(4)]);
        assert!(one.is_subset_of(&many));
        assert!(!many.is_subset_of(&one));
        assert!(many.is_subset_of(&many));
        assert!(LabelSet::from_labels([lid(1), lid(4)]).is_subset_of(&many));
        assert!(!LabelSet::from_labels([lid(1), lid(3)]).is_subset_of(&many));
        assert!(!LabelSet::single(lid(9)).is_subset_of(&many));
    }

    #[test]
    fn iter_is_sorted() {
        let s = LabelSet::from_labels([lid(9), lid(0), lid(4)]);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![lid(0), lid(4), lid(9)]);
    }
}
