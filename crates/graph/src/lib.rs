//! # ceci-graph
//!
//! Graph substrate for the CECI subgraph-matching system ([Bhattarai, Liu,
//! Huang — *CECI: Compact Embedding Cluster Index for Scalable Subgraph
//! Matching*, SIGMOD 2019]).
//!
//! Provides:
//!
//! * [`Graph`] — labeled graphs over sorted-adjacency CSR storage ([`Csr`]),
//!   with a label inverted index and an optional neighborhood-label-count
//!   index ([`graph::NlcIndex`]) backing the paper's NLC filter.
//! * [`GraphBuilder`] — incremental construction.
//! * [`io`] — SNAP edge lists, the labeled `t/v/e` text format, and a compact
//!   binary format used by the simulated shared store.
//! * [`generators`] — deterministic Erdős–Rényi, Graph500-style Kronecker
//!   (R-MAT), and labeled-graph generators standing in for the paper's
//!   datasets.
//! * [`overlay`] — delta overlay for streaming edge mutations over a frozen
//!   CSR, committed into compacted snapshots at configurable thresholds.
//! * [`extract`] — DFS-based connected query extraction (§6.2).
//! * [`stats`] — dataset statistics and the distributed pivot workload
//!   estimates of §5.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod error;
pub mod extract;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod labels;
pub mod overlay;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::{GraphError, Result};
pub use extract::{extract_query, ExtractedQuery};
pub use graph::{Graph, LabelPairIndex};
pub use ids::{lid, vid, LabelId, VertexId};
pub use labels::LabelSet;
pub use overlay::DeltaOverlay;
pub use stats::GraphStats;
