//! Incremental graph construction.

use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Builder for [`Graph`] when vertices and edges arrive incrementally
/// (loaders, generators, tests).
///
/// # Examples
///
/// ```
/// use ceci_graph::{lid, GraphBuilder};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_vertex(lid(0));
/// let c = b.add_vertex(lid(1));
/// b.add_edge(a, c);
/// let graph = b.build();
/// assert_eq!(graph.num_edges(), 1);
/// assert!(graph.has_edge(a, c));
/// ```
#[derive(Default)]
pub struct GraphBuilder {
    labels: Vec<LabelSet>,
    edges: Vec<(VertexId, VertexId)>,
    directed_input: bool,
}

impl GraphBuilder {
    /// A fresh builder for an undirected graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the source data as directed (adjacency is still symmetrized;
    /// the flag is provenance recorded on the built graph).
    pub fn directed(mut self) -> Self {
        self.directed_input = true;
        self
    }

    /// Adds a vertex with a single label, returning its id.
    pub fn add_vertex(&mut self, label: LabelId) -> VertexId {
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(LabelSet::single(label));
        id
    }

    /// Adds a vertex with a full label set, returning its id.
    pub fn add_vertex_with_labels(&mut self, labels: LabelSet) -> VertexId {
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(labels);
        id
    }

    /// Adds `count` vertices sharing `label`; returns the first new id.
    pub fn add_vertices(&mut self, count: usize, label: LabelId) -> VertexId {
        let first = VertexId::from_index(self.labels.len());
        self.labels
            .extend(std::iter::repeat_with(|| LabelSet::single(label)).take(count));
        first
    }

    /// Records an edge. Endpoints must already exist when `build` runs.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> &mut Self {
        self.edges.push((a, b));
        self
    }

    /// Records many edges at once.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        self.edges.extend(edges);
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge records added so far (before dedup).
    pub fn num_edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph: symmetrizes, sorts, dedups.
    ///
    /// # Panics
    /// Panics if an edge references a vertex that was never added.
    pub fn build(self) -> Graph {
        Graph::new(self.labels, &self.edges, self.directed_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::lid;

    #[test]
    fn incremental_build() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(lid(0));
        let c = b.add_vertex(lid(1));
        let d = b.add_vertex_with_labels(LabelSet::from_labels([lid(0), lid(2)]));
        b.add_edge(a, c);
        b.add_edge(c, d);
        assert_eq!(b.num_vertices(), 3);
        assert_eq!(b.num_edge_records(), 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(a, d));
        assert!(g.has_label(d, lid(2)));
    }

    #[test]
    fn bulk_vertices_share_label() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(5, lid(3));
        assert_eq!(first.index(), 0);
        assert_eq!(b.num_vertices(), 5);
        let g = b.build();
        assert_eq!(g.vertices_with_label(lid(3)).len(), 5);
    }

    #[test]
    fn directed_flag_propagates() {
        let mut b = GraphBuilder::new().directed();
        let a = b.add_vertex(lid(0));
        let c = b.add_vertex(lid(0));
        b.add_edge(a, c);
        let g = b.build();
        assert!(g.is_directed_input());
        // ... but adjacency is symmetric.
        assert!(g.has_edge(c, a));
    }

    #[test]
    fn duplicate_edges_deduped_at_build() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(lid(0));
        let c = b.add_vertex(lid(0));
        b.add_edge(a, c);
        b.add_edge(c, a);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }
}
