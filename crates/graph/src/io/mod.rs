//! Graph loaders and writers.

pub mod binary;
pub mod edge_list;
pub mod temporal;

pub use binary::{
    load_binary, load_binary_mmap, read_binary, save_binary, write_binary, MappedCsr, Mmap,
};
pub use edge_list::{load_edge_list, load_labeled, read_edge_list, read_labeled, write_labeled};
pub use temporal::{batch_by_timestamp, load_temporal, read_temporal, TemporalEdge};
