//! Temporal edge-list loader for streaming replay.
//!
//! SNAP temporal networks (wiki-talk, sx-stackoverflow, …) ship as
//! timestamped edge lists, one `src dst ts` triple per line. The streaming
//! benchmark replays such a file against a loaded base graph: edges are
//! sorted by timestamp and grouped into mutation batches, exactly the
//! SMFresh-style workload of applying 10k–1M-edge batches per boundary.
//!
//! Unlike [`super::edge_list::read_edge_list`], ids are **not** remapped —
//! a temporal stream mutates an already-loaded graph, so vertex ids must
//! align with that graph's id space. Range validation happens at mutation
//! time against the target graph.

use std::io::BufRead;
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::ids::VertexId;

/// One timestamped undirected edge of a temporal stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemporalEdge {
    /// Source endpoint (id in the target graph's space).
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Event timestamp (opaque units; only the ordering matters).
    pub ts: u64,
}

/// Parses a SNAP-style temporal edge list (`src dst ts`) from a reader and
/// returns the edges **sorted by timestamp** (stable, so same-timestamp
/// edges keep file order).
///
/// * Lines starting with `#` or `%` are comments; blank lines are skipped.
/// * The timestamp column is optional per line (plain `src dst` files replay
///   with `ts = 0`); extra columns beyond the third are ignored.
pub fn read_temporal<R: BufRead>(reader: R) -> Result<Vec<TemporalEdge>> {
    let mut edges: Vec<TemporalEdge> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("expected `src dst [ts]`, got {t:?}"),
                })
            }
        };
        let vertex = |s: &str| -> Result<VertexId> {
            s.parse::<u32>()
                .map(VertexId)
                .map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("invalid vertex id {s:?}"),
                })
        };
        let ts = match it.next() {
            Some(s) => s.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid timestamp {s:?}"),
            })?,
            None => 0,
        };
        edges.push(TemporalEdge {
            src: vertex(a)?,
            dst: vertex(b)?,
            ts,
        });
    }
    edges.sort_by_key(|e| e.ts);
    Ok(edges)
}

/// Loads a temporal edge list from a file. See [`read_temporal`].
///
/// Errors are wrapped with the file path, so a malformed input reports both
/// the file and the offending line.
pub fn load_temporal(path: impl AsRef<Path>) -> Result<Vec<TemporalEdge>> {
    let path = path.as_ref();
    let attempt = || -> Result<Vec<TemporalEdge>> {
        let file = std::fs::File::open(path)?;
        read_temporal(std::io::BufReader::new(file))
    };
    attempt().map_err(|e| e.in_file(path))
}

/// Splits a timestamp-sorted temporal stream into mutation batches of at
/// most `batch_size` edges, never splitting a timestamp across batches:
/// a batch boundary only falls between edges with distinct timestamps
/// (unless a single timestamp alone exceeds `batch_size`, in which case it
/// becomes one oversized batch — events at one instant are atomic).
///
/// # Panics
/// Panics if `batch_size` is 0.
pub fn batch_by_timestamp(edges: &[TemporalEdge], batch_size: usize) -> Vec<&[TemporalEdge]> {
    assert!(batch_size > 0, "batch size must be positive");
    debug_assert!(edges.windows(2).all(|w| w[0].ts <= w[1].ts));
    let mut batches = Vec::new();
    let mut start = 0usize;
    while start < edges.len() {
        let mut end = (start + batch_size).min(edges.len());
        if end < edges.len() {
            // Pull the boundary back to the start of the straddled timestamp.
            let ts = edges[end].ts;
            let mut cut = end;
            while cut > start && edges[cut - 1].ts == ts {
                cut -= 1;
            }
            if cut > start {
                end = cut;
            } else {
                // One timestamp larger than the batch size: emit it whole.
                while end < edges.len() && edges[end].ts == ts {
                    end += 1;
                }
            }
        }
        batches.push(&edges[start..end]);
        start = end;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::vid;

    #[test]
    fn parses_and_sorts_by_timestamp() {
        let text = "# temporal\n3 4 200\n1 2 100\n% trailer\n5 6 150 extra\n";
        let edges = read_temporal(text.as_bytes()).unwrap();
        assert_eq!(
            edges,
            vec![
                TemporalEdge {
                    src: vid(1),
                    dst: vid(2),
                    ts: 100
                },
                TemporalEdge {
                    src: vid(5),
                    dst: vid(6),
                    ts: 150
                },
                TemporalEdge {
                    src: vid(3),
                    dst: vid(4),
                    ts: 200
                },
            ]
        );
    }

    #[test]
    fn missing_timestamp_defaults_to_zero() {
        let edges = read_temporal("7 8\n".as_bytes()).unwrap();
        assert_eq!(edges[0].ts, 0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_temporal("1 2 3\nonly_one\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_temporal("1 x 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"), "{err}");
        let err = read_temporal("1 2 notime\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid timestamp"), "{err}");
    }

    #[test]
    fn load_wraps_file_context() {
        let dir = std::env::temp_dir().join(format!("ceci-temporal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "1 2 10\nbroken\n").unwrap();
        let err = load_temporal(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.txt"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batching_respects_timestamp_boundaries() {
        let mk = |ts| TemporalEdge {
            src: vid(0),
            dst: vid(1),
            ts,
        };
        // ts runs: 1,1,1 | 2 | 3,3
        let edges = vec![mk(1), mk(1), mk(1), mk(2), mk(3), mk(3)];
        let batches = batch_by_timestamp(&edges, 4);
        // A naive 4-cut would split the pair of ts=3 events; the boundary
        // pulls back to keep them together.
        assert_eq!(
            batches.iter().map(|b| b.len()).collect::<Vec<_>>(),
            vec![4, 2]
        );
        // One timestamp larger than the batch emits whole.
        let burst = vec![mk(9), mk(9), mk(9), mk(10)];
        let batches = batch_by_timestamp(&burst, 2);
        assert_eq!(
            batches.iter().map(|b| b.len()).collect::<Vec<_>>(),
            vec![3, 1]
        );
        assert!(batch_by_timestamp(&[], 5).is_empty());
    }
}
