//! Compact binary graph format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"CECIGRF1"
//! flags    u32   bit 0 = directed provenance
//! n        u64   vertex count
//! m2       u64   adjacency entries (2 × edges)
//! offsets  (n+1) × u64
//! nbrs     m2 × u32
//! nlabels  u64   total label entries
//! lsizes   n × u32   labels per vertex
//! labels   nlabels × u32
//! ```
//!
//! This is the on-disk format the simulated shared store (§5) maps, so the
//! reader exposes both a full [`read_binary`]/[`load_binary`] path and the
//! raw section offsets used by `ceci-distributed` for partial loads.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

const MAGIC: &[u8; 8] = b"CECIGRF1";

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serializes a graph into the binary format.
pub fn write_binary<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, graph.is_directed_input() as u32)?;
    let n = graph.num_vertices();
    write_u64(&mut w, n as u64)?;
    let csr = graph.csr();
    write_u64(&mut w, csr.num_adjacency_entries() as u64)?;
    for &off in csr.offsets() {
        write_u64(&mut w, off as u64)?;
    }
    for &nb in csr.raw_neighbors() {
        write_u32(&mut w, nb.0)?;
    }
    let total_labels: u64 = graph.vertices().map(|v| graph.labels(v).len() as u64).sum();
    write_u64(&mut w, total_labels)?;
    for v in graph.vertices() {
        write_u32(&mut w, graph.labels(v).len() as u32)?;
    }
    for v in graph.vertices() {
        for l in graph.labels(v).iter() {
            write_u32(&mut w, l.0)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from the binary format.
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!(
            "bad magic {:?}, expected {:?}",
            magic, MAGIC
        )));
    }
    let flags = read_u32(&mut r)?;
    let directed = flags & 1 != 0;
    let n = read_u64(&mut r)? as usize;
    let m2 = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m2) {
        return Err(GraphError::Format(
            "offset array inconsistent with adjacency length".into(),
        ));
    }
    let mut neighbors = Vec::with_capacity(m2);
    for _ in 0..m2 {
        neighbors.push(VertexId(read_u32(&mut r)?));
    }
    let total_labels = read_u64(&mut r)? as usize;
    let mut lsizes = Vec::with_capacity(n);
    for _ in 0..n {
        lsizes.push(read_u32(&mut r)? as usize);
    }
    if lsizes.iter().sum::<usize>() != total_labels {
        return Err(GraphError::Format("label counts inconsistent".into()));
    }
    let mut labels = Vec::with_capacity(n);
    for &sz in &lsizes {
        let mut ls = Vec::with_capacity(sz);
        for _ in 0..sz {
            ls.push(LabelId(read_u32(&mut r)?));
        }
        labels.push(LabelSet::from_labels(ls));
    }
    // Reconstruct edges (v < nb once each) and rebuild through the normal
    // constructor so all indexes come out consistent.
    let mut edges = Vec::with_capacity(m2 / 2);
    for v in 0..n {
        for &nb in &neighbors[offsets[v]..offsets[v + 1]] {
            if (v as u32) < nb.0 {
                edges.push((VertexId(v as u32), nb));
            }
        }
    }
    Ok(Graph::new(labels, &edges, directed))
}

/// Writes the binary format to a file.
pub fn save_binary(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_binary(graph, std::io::BufWriter::new(file))
}

/// Reads the binary format from a file. Errors are wrapped with the file
/// path (see [`crate::error::GraphError::File`]).
pub fn load_binary(path: impl AsRef<Path>) -> Result<Graph> {
    let path = path.as_ref();
    let attempt = || -> Result<Graph> {
        let file = std::fs::File::open(path)?;
        read_binary(std::io::BufReader::new(file))
    };
    attempt().map_err(|e| e.in_file(path))
}

/// A read-only `mmap(2)` of a whole file, unmapped on drop.
///
/// The mapping is `MAP_PRIVATE` + `PROT_READ`: the kernel pages bytes in on
/// demand and evicts them under memory pressure, so a [`MappedCsr`] view
/// over this serves graph files larger than RAM.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut libc::c_void,
    len: usize,
}

// A read-only mapping has no interior mutability; sharing the raw pointer
// across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only in its entirety. Zero-length files cannot be
    /// mapped on Linux and are rejected with a format error (the graph
    /// format always has at least a header).
    pub fn map(path: impl AsRef<Path>) -> Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path.as_ref())?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(GraphError::Format("cannot mmap an empty file".into()));
        }
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(GraphError::Format(format!(
                "mmap failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        // The fd can close now; the mapping keeps the pages alive.
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the mapping is empty (never constructed; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            libc::munmap(self.ptr, self.len);
        }
    }
}

/// Section layout of a `CECIGRF1` file, in byte offsets from the start.
///
/// The header is 28 bytes (magic 8 + flags 4 + n 8 + m2 8), so the offsets
/// section is 4-aligned but *not* 8-aligned — `u64` reads there go through
/// [`u64::from_le_bytes`] on byte slices instead of casting to `&[u64]`.
/// Every later section stays 4-aligned, so `&[u32]` views are zero-copy.
#[derive(Debug)]
struct Sections {
    offsets_at: usize,
    nbrs_at: usize,
    lsizes_at: usize,
    labels_at: usize,
}

/// A zero-copy CSR view over a memory-mapped `CECIGRF1` file.
///
/// Header and section bounds are validated once at open; neighbor lists and
/// per-vertex label slices read straight out of the mapping. This is the
/// out-of-core substrate for `ceci-shard`: a shard extracts per-pivot
/// fragments from this view without ever materializing the full graph in
/// heap memory.
#[derive(Debug)]
pub struct MappedCsr {
    map: Mmap,
    directed: bool,
    n: usize,
    m2: usize,
    sections: Sections,
    /// Prefix sums of per-vertex label counts (`n + 1` entries), computed
    /// once at open — O(n) `usize`s, the only heap the view owns.
    label_offsets: Vec<usize>,
}

impl MappedCsr {
    /// Maps and validates a binary graph file.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedCsr> {
        let path = path.as_ref();
        Self::from_map(Mmap::map(path)?).map_err(|e| e.in_file(path))
    }

    fn from_map(map: Mmap) -> Result<MappedCsr> {
        let bytes = map.as_bytes();
        let need = |at: usize, len: usize| -> Result<()> {
            if at.checked_add(len).map_or(true, |end| end > bytes.len()) {
                return Err(GraphError::Format(format!(
                    "file truncated: need {len} bytes at offset {at}, have {}",
                    bytes.len()
                )));
            }
            Ok(())
        };
        need(0, 28)?;
        if &bytes[..8] != MAGIC {
            return Err(GraphError::Format(format!(
                "bad magic {:?}, expected {:?}",
                &bytes[..8],
                MAGIC
            )));
        }
        let flags = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let n = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let m2 = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
        let offsets_at = 28;
        let nbrs_at = offsets_at + (n + 1) * 8;
        need(offsets_at, (n + 1) * 8)?;
        need(nbrs_at, m2 * 4)?;
        let nlabels_at = nbrs_at + m2 * 4;
        need(nlabels_at, 8)?;
        let total_labels = u64::from_le_bytes(
            bytes[nlabels_at..nlabels_at + 8]
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        let lsizes_at = nlabels_at + 8;
        need(lsizes_at, n * 4)?;
        let labels_at = lsizes_at + n * 4;
        need(labels_at, total_labels * 4)?;
        let sections = Sections {
            offsets_at,
            nbrs_at,
            lsizes_at,
            labels_at,
        };
        let csr = MappedCsr {
            map,
            directed: flags & 1 != 0,
            n,
            m2,
            sections,
            label_offsets: Vec::new(),
        };
        if csr.offset(0) != 0 || csr.offset(n) != m2 {
            return Err(GraphError::Format(
                "offset array inconsistent with adjacency length".into(),
            ));
        }
        let mut label_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        label_offsets.push(0);
        for v in 0..n {
            acc += csr.read_u32(csr.sections.lsizes_at + v * 4) as usize;
            label_offsets.push(acc);
        }
        if acc != total_labels {
            return Err(GraphError::Format("label counts inconsistent".into()));
        }
        Ok(MappedCsr {
            label_offsets,
            ..csr
        })
    }

    #[inline]
    fn read_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.map.as_bytes()[at..at + 4].try_into().expect("4 bytes"))
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Undirected edge count (adjacency entries / 2).
    pub fn num_edges(&self) -> usize {
        self.m2 / 2
    }

    /// Directed-provenance flag.
    pub fn is_directed_input(&self) -> bool {
        self.directed
    }

    /// Adjacency offset of vertex `v` (valid for `v <= n`). The offsets
    /// section starts 28 bytes in — 4-aligned, not 8-aligned — so this is a
    /// byte-slice decode, never an aligned `u64` load.
    #[inline]
    pub fn offset(&self, v: usize) -> usize {
        let at = self.sections.offsets_at + v * 8;
        u64::from_le_bytes(self.map.as_bytes()[at..at + 8].try_into().expect("8 bytes")) as usize
    }

    /// Zero-copy neighbor slice of vertex `v`, straight out of the mapping.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offset(v as usize);
        let hi = self.offset(v as usize + 1);
        let at = self.sections.nbrs_at + lo * 4;
        let bytes = &self.map.as_bytes()[at..at + (hi - lo) * 4];
        // The neighbor section begins at 28 + (n+1)*8, a multiple of 4, and
        // the mapping itself is page-aligned, so the u32 view is aligned.
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<u32>(), 0);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, hi - lo) }
    }

    /// Raw label ids of vertex `v` (sorted as written).
    #[inline]
    pub fn label_ids(&self, v: u32) -> &[u32] {
        let lo = self.label_offsets[v as usize];
        let hi = self.label_offsets[v as usize + 1];
        let at = self.sections.labels_at + lo * 4;
        let bytes = &self.map.as_bytes()[at..at + (hi - lo) * 4];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<u32>(), 0);
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, hi - lo) }
    }

    /// The label set of vertex `v` (materialized).
    pub fn label_set(&self, v: u32) -> LabelSet {
        LabelSet::from_labels(self.label_ids(v).iter().map(|&l| LabelId(l)))
    }

    /// Materializes the whole view into a heap [`Graph`] — identical to
    /// [`read_binary`] on the same file (the mmap-vs-heap differential).
    pub fn to_graph(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.m2 / 2);
        for v in 0..self.n as u32 {
            for &nb in self.neighbors(v) {
                if v < nb {
                    edges.push((VertexId(v), VertexId(nb)));
                }
            }
        }
        let labels = (0..self.n as u32).map(|v| self.label_set(v)).collect();
        Graph::new(labels, &edges, self.directed)
    }
}

/// Loads a binary graph file through `mmap` and materializes it. Exists
/// mainly as the differential lever for [`MappedCsr`]; callers that want
/// out-of-core access keep the [`MappedCsr`] instead.
pub fn load_binary_mmap(path: impl AsRef<Path>) -> Result<Graph> {
    Ok(MappedCsr::open(path)?.to_graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::{lid, vid};

    fn sample() -> Graph {
        let mut b = GraphBuilder::new().directed();
        let v0 = b.add_vertex(lid(2));
        let v1 = b.add_vertex_with_labels(LabelSet::from_labels([lid(0), lid(3)]));
        let v2 = b.add_vertex(lid(1));
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v0);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.is_directed_input(), g.is_directed_input());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            assert_eq!(g2.labels(v), g.labels(v));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTMAGIC________________".to_vec();
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_input_errors() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("ceci_graph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ceci");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(g2.has_edge(vid(0), vid(1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::unlabeled(0, &[]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ceci_graph_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mmap_view_matches_heap_reader() {
        let core = crate::generators::kronecker_default(7, 5, 11);
        let g = crate::generators::attach_pendants(&core, 40, 12);
        let path = scratch("diff.ceci");
        save_binary(&g, &path).unwrap();
        let heap = load_binary(&path).unwrap();
        let mapped = MappedCsr::open(&path).unwrap();
        assert_eq!(mapped.num_vertices(), heap.num_vertices());
        assert_eq!(mapped.num_edges(), heap.num_edges());
        assert_eq!(mapped.is_directed_input(), heap.is_directed_input());
        for v in heap.vertices() {
            let nbrs: Vec<u32> = heap.neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(mapped.neighbors(v.0), &nbrs[..], "neighbors of {v:?}");
            assert_eq!(mapped.label_set(v.0), *heap.labels(v), "labels of {v:?}");
        }
        // Full materialization path too.
        let g2 = load_binary_mmap(&path).unwrap();
        assert_eq!(g2.num_edges(), heap.num_edges());
        for v in heap.vertices() {
            assert_eq!(g2.neighbors(v), heap.neighbors(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_rejects_corrupt_files() {
        let g = sample();
        let path = scratch("bad.ceci");

        // Truncated mid-section.
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        assert!(MappedCsr::open(&path).is_err());

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = MappedCsr::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        // Empty file (unmappable).
        std::fs::write(&path, b"").unwrap();
        assert!(MappedCsr::open(&path).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_directed_flag_roundtrips() {
        let g = sample(); // built with .directed()
        let path = scratch("directed.ceci");
        save_binary(&g, &path).unwrap();
        let mapped = MappedCsr::open(&path).unwrap();
        assert!(mapped.is_directed_input());
        assert!(mapped.to_graph().is_directed_input());
        std::fs::remove_file(&path).ok();
    }
}
