//! Compact binary graph format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  b"CECIGRF1"
//! flags    u32   bit 0 = directed provenance
//! n        u64   vertex count
//! m2       u64   adjacency entries (2 × edges)
//! offsets  (n+1) × u64
//! nbrs     m2 × u32
//! nlabels  u64   total label entries
//! lsizes   n × u32   labels per vertex
//! labels   nlabels × u32
//! ```
//!
//! This is the on-disk format the simulated shared store (§5) maps, so the
//! reader exposes both a full [`read_binary`]/[`load_binary`] path and the
//! raw section offsets used by `ceci-distributed` for partial loads.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

const MAGIC: &[u8; 8] = b"CECIGRF1";

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serializes a graph into the binary format.
pub fn write_binary<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, graph.is_directed_input() as u32)?;
    let n = graph.num_vertices();
    write_u64(&mut w, n as u64)?;
    let csr = graph.csr();
    write_u64(&mut w, csr.num_adjacency_entries() as u64)?;
    for &off in csr.offsets() {
        write_u64(&mut w, off as u64)?;
    }
    for &nb in csr.raw_neighbors() {
        write_u32(&mut w, nb.0)?;
    }
    let total_labels: u64 = graph.vertices().map(|v| graph.labels(v).len() as u64).sum();
    write_u64(&mut w, total_labels)?;
    for v in graph.vertices() {
        write_u32(&mut w, graph.labels(v).len() as u32)?;
    }
    for v in graph.vertices() {
        for l in graph.labels(v).iter() {
            write_u32(&mut w, l.0)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from the binary format.
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!(
            "bad magic {:?}, expected {:?}",
            magic, MAGIC
        )));
    }
    let flags = read_u32(&mut r)?;
    let directed = flags & 1 != 0;
    let n = read_u64(&mut r)? as usize;
    let m2 = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m2) {
        return Err(GraphError::Format(
            "offset array inconsistent with adjacency length".into(),
        ));
    }
    let mut neighbors = Vec::with_capacity(m2);
    for _ in 0..m2 {
        neighbors.push(VertexId(read_u32(&mut r)?));
    }
    let total_labels = read_u64(&mut r)? as usize;
    let mut lsizes = Vec::with_capacity(n);
    for _ in 0..n {
        lsizes.push(read_u32(&mut r)? as usize);
    }
    if lsizes.iter().sum::<usize>() != total_labels {
        return Err(GraphError::Format("label counts inconsistent".into()));
    }
    let mut labels = Vec::with_capacity(n);
    for &sz in &lsizes {
        let mut ls = Vec::with_capacity(sz);
        for _ in 0..sz {
            ls.push(LabelId(read_u32(&mut r)?));
        }
        labels.push(LabelSet::from_labels(ls));
    }
    // Reconstruct edges (v < nb once each) and rebuild through the normal
    // constructor so all indexes come out consistent.
    let mut edges = Vec::with_capacity(m2 / 2);
    for v in 0..n {
        for &nb in &neighbors[offsets[v]..offsets[v + 1]] {
            if (v as u32) < nb.0 {
                edges.push((VertexId(v as u32), nb));
            }
        }
    }
    Ok(Graph::new(labels, &edges, directed))
}

/// Writes the binary format to a file.
pub fn save_binary(graph: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_binary(graph, std::io::BufWriter::new(file))
}

/// Reads the binary format from a file. Errors are wrapped with the file
/// path (see [`crate::error::GraphError::File`]).
pub fn load_binary(path: impl AsRef<Path>) -> Result<Graph> {
    let path = path.as_ref();
    let attempt = || -> Result<Graph> {
        let file = std::fs::File::open(path)?;
        read_binary(std::io::BufReader::new(file))
    };
    attempt().map_err(|e| e.in_file(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::{lid, vid};

    fn sample() -> Graph {
        let mut b = GraphBuilder::new().directed();
        let v0 = b.add_vertex(lid(2));
        let v1 = b.add_vertex_with_labels(LabelSet::from_labels([lid(0), lid(3)]));
        let v2 = b.add_vertex(lid(1));
        b.add_edge(v0, v1);
        b.add_edge(v1, v2);
        b.add_edge(v2, v0);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.is_directed_input(), g.is_directed_input());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            assert_eq!(g2.labels(v), g.labels(v));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTMAGIC________________".to_vec();
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_input_errors() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("ceci_graph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ceci");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(g2.has_edge(vid(0), vid(1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::unlabeled(0, &[]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
    }
}
