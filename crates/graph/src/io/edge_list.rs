//! Text loaders: SNAP-style edge lists and the labeled `.graph` format used
//! by the subgraph-matching literature.
//!
//! The paper sources its real datasets from the SNAP collection (Table 1);
//! SNAP ships plain edge lists. Labeled benchmarks (e.g. the Human dataset of
//! §6.2) circulate in the `t/v/e` format:
//!
//! ```text
//! t <num_vertices> <num_edges>
//! v <id> <label> <degree>
//! e <src> <dst>
//! ```

use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// Parses a SNAP-style edge list from a reader.
///
/// * Lines starting with `#` or `%` are comments.
/// * Each data line is `src dst` (whitespace separated). Extra columns are
///   ignored (some SNAP files carry timestamps).
/// * Raw ids are arbitrary `u64`s and get remapped to dense [`VertexId`]s in
///   first-appearance order.
/// * The resulting graph is unlabeled (shared label 0); `directed` marks the
///   provenance flag.
pub fn read_edge_list<R: BufRead>(reader: R, directed: bool) -> Result<Graph> {
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("expected `src dst`, got {t:?}"),
                })
            }
        };
        let parse = |s: &str| -> Result<u64> {
            s.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex id {s:?}"),
            })
        };
        let (ra, rb) = (parse(a)?, parse(b)?);
        let next = remap.len();
        let va = *remap
            .entry(ra)
            .or_insert_with(|| VertexId::from_index(next));
        let next = remap.len();
        let vb = *remap
            .entry(rb)
            .or_insert_with(|| VertexId::from_index(next));
        edges.push((va, vb));
    }
    let n = remap.len();
    let labels = vec![LabelSet::single(LabelId(0)); n];
    Ok(Graph::new(labels, &edges, directed))
}

/// Loads a SNAP-style edge list from a file. See [`read_edge_list`].
///
/// Errors are wrapped with the file path, so a malformed input reports both
/// the file and the offending line (`data/bad.txt: parse error at line 3:
/// ...`).
pub fn load_edge_list(path: impl AsRef<Path>, directed: bool) -> Result<Graph> {
    let path = path.as_ref();
    let attempt = || -> Result<Graph> {
        let file = std::fs::File::open(path)?;
        read_edge_list(std::io::BufReader::new(file), directed)
    };
    attempt().map_err(|e| e.in_file(path))
}

/// Parses the labeled `t/v/e` format from a reader.
pub fn read_labeled<R: BufRead>(reader: R) -> Result<Graph> {
    let mut declared: Option<(usize, usize)> = None;
    let mut labels: Vec<LabelSet> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let err = |message: String| GraphError::Parse {
            line: lineno + 1,
            message,
        };
        let mut it = t.split_whitespace();
        match it.next() {
            Some("t") => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad vertex count in `t` line".into()))?;
                let m: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad edge count in `t` line".into()))?;
                declared = Some((n, m));
                labels.reserve(n);
                edges.reserve(m);
            }
            Some("v") => {
                let id: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad vertex id in `v` line".into()))?;
                if id != labels.len() {
                    return Err(err(format!(
                        "vertex ids must be dense and in order (expected {}, got {id})",
                        labels.len()
                    )));
                }
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad label in `v` line".into()))?;
                // degree column (and any extra labels) — extra numeric tokens
                // after the first are treated as: last = degree, middle =
                // additional labels. The common format is `v id label degree`.
                let rest: Vec<u32> = it.filter_map(|s| s.parse().ok()).collect();
                let extra_labels = if rest.is_empty() {
                    &rest[..]
                } else {
                    &rest[..rest.len() - 1]
                };
                let set = if extra_labels.is_empty() {
                    LabelSet::single(LabelId(label))
                } else {
                    LabelSet::from_labels(
                        std::iter::once(LabelId(label))
                            .chain(extra_labels.iter().map(|&l| LabelId(l))),
                    )
                };
                labels.push(set);
            }
            Some("e") => {
                let a: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad src in `e` line".into()))?;
                let b: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad dst in `e` line".into()))?;
                edges.push((VertexId(a), VertexId(b)));
            }
            Some(other) => {
                return Err(err(format!("unknown record type {other:?}")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    if let Some((n, _)) = declared {
        if n != labels.len() {
            return Err(GraphError::Format(format!(
                "header declared {n} vertices but {} `v` lines found",
                labels.len()
            )));
        }
    }
    Ok(Graph::new(labels, &edges, false))
}

/// Loads the labeled `t/v/e` format from a file. See [`read_labeled`].
///
/// Errors are wrapped with the file path, so a malformed input reports both
/// the file and the offending line.
pub fn load_labeled(path: impl AsRef<Path>) -> Result<Graph> {
    let path = path.as_ref();
    let attempt = || -> Result<Graph> {
        let file = std::fs::File::open(path)?;
        read_labeled(std::io::BufReader::new(file))
    };
    attempt().map_err(|e| e.in_file(path))
}

/// Writes a graph in the labeled `t/v/e` format.
///
/// Multi-label vertices emit their extra labels between the primary label
/// and the degree column, mirroring what [`read_labeled`] accepts.
pub fn write_labeled<W: std::io::Write>(graph: &Graph, mut w: W) -> Result<()> {
    writeln!(w, "t {} {}", graph.num_vertices(), graph.num_edges())?;
    for v in graph.vertices() {
        let ls = graph.labels(v);
        write!(w, "v {} {}", v, ls.primary())?;
        for l in ls.iter().skip(1) {
            write!(w, " {l}")?;
        }
        writeln!(w, " {}", graph.degree(v))?;
    }
    for v in graph.vertices() {
        for &nb in graph.neighbors(v) {
            if v < nb {
                writeln!(w, "e {} {}", v, nb)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{lid, vid};

    #[test]
    fn snap_edge_list_roundtrip() {
        let text = "# comment\n% other comment\n10 20\n20 30 999\n30 10\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        // 10→v0, 20→v1, 30→v2 (first-appearance order)
        assert!(g.has_edge(vid(0), vid(1)));
        assert!(g.has_edge(vid(1), vid(2)));
        assert!(g.has_edge(vid(2), vid(0)));
    }

    #[test]
    fn snap_bad_line_errors() {
        let text = "1 2\nonly_one_token\n";
        let err = read_edge_list(text.as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn snap_bad_id_errors() {
        let text = "1 x\n";
        let err = read_edge_list(text.as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
    }

    #[test]
    fn labeled_format_roundtrip() {
        let text = "t 3 2\nv 0 5 1\nv 1 7 2\nv 2 5 1\ne 0 1\ne 1 2\n";
        let g = read_labeled(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_label(vid(0), lid(5)));
        assert!(g.has_label(vid(1), lid(7)));

        let mut out = Vec::new();
        write_labeled(&g, &mut out).unwrap();
        let g2 = read_labeled(&out[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g2.labels(v), g.labels(v));
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn labeled_multilabel_roundtrip() {
        // v 0 has labels {5, 9} and degree 1
        let text = "t 2 1\nv 0 5 9 1\nv 1 7 1\ne 0 1\n";
        let g = read_labeled(text.as_bytes()).unwrap();
        assert!(g.has_label(vid(0), lid(5)));
        assert!(g.has_label(vid(0), lid(9)));
        let mut out = Vec::new();
        write_labeled(&g, &mut out).unwrap();
        let g2 = read_labeled(&out[..]).unwrap();
        assert_eq!(g2.labels(vid(0)), g.labels(vid(0)));
    }

    #[test]
    fn labeled_dense_id_violation() {
        let text = "t 2 0\nv 0 1 0\nv 5 1 0\n";
        let err = read_labeled(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn labeled_header_mismatch() {
        let text = "t 3 0\nv 0 1 0\n";
        let err = read_labeled(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 3"));
    }

    #[test]
    fn labeled_unknown_record() {
        let text = "x 1 2\n";
        let err = read_labeled(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }
}
