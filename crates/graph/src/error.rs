//! Error type for graph loading and parsing.

use std::fmt;

/// Errors produced by the text/binary graph loaders.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line of a text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Structural problem (bad header, inconsistent counts, bad magic...).
    Format(String),
    /// An error that occurred while reading a specific file — wraps the
    /// underlying failure with the path so callers (CLI tools, the serving
    /// layer) can report *which* input was malformed, not just how.
    File {
        /// The file being read.
        path: std::path::PathBuf,
        /// The underlying failure (IO, parse-with-line, or format error).
        source: Box<GraphError>,
    },
}

impl GraphError {
    /// Wraps `self` with the file it arose from. Loader entry points taking
    /// paths apply this so every error carries file context; line context is
    /// already carried by [`GraphError::Parse`].
    pub fn in_file(self, path: impl Into<std::path::PathBuf>) -> GraphError {
        GraphError::File {
            path: path.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(m) => write!(f, "format error: {m}"),
            GraphError::File { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Result alias for loader APIs.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io = GraphError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        let parse = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(parse.to_string().contains("line 7"));
        let fmt = GraphError::Format("bad magic".into());
        assert!(fmt.to_string().contains("bad magic"));
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let io = GraphError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        let fmt = GraphError::Format("y".into());
        assert!(fmt.source().is_none());
    }
}
