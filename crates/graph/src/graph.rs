//! The labeled data graph.
//!
//! [`Graph`] combines CSR adjacency with per-vertex [`LabelSet`]s, a
//! label → vertices inverted index (used by root selection and candidate
//! seeding), and an optional precomputed neighborhood-label-count (NLC)
//! index used by the paper's NLC filter (§3.2).
//!
//! Directed inputs are symmetrized: the paper matches undirected query graphs
//! against directed or undirected data graphs, and its candidate/adjacency
//! machinery only consults connectivity, so we store one undirected adjacency
//! and keep a `directed` provenance flag.

use crate::csr::Csr;
use crate::ids::{LabelId, VertexId};
use crate::labels::LabelSet;

/// A labeled graph with sorted CSR adjacency.
#[derive(Clone, Debug)]
pub struct Graph {
    csr: Csr,
    labels: Vec<LabelSet>,
    num_labels: u32,
    directed_input: bool,
    /// `label_index[l]` = sorted vertices whose label set contains `l`.
    label_index: Vec<Vec<VertexId>>,
    /// Optional NLC index; see [`NlcIndex`].
    nlc: Option<NlcIndex>,
    /// Optional label-pair admission index; see [`LabelPairIndex`].
    label_pairs: Option<LabelPairIndex>,
}

/// Precomputed neighborhood label counts: for each vertex, a sorted
/// `(label, count)` list over the labels appearing among its neighbors.
///
/// The NLC filter asks, for every distinct label `l` in the query node's
/// neighborhood, whether `count_v(l) >= count_u(l)`. With this index the
/// check is a merge over two short sorted lists instead of a rescan of the
/// data vertex's adjacency.
#[derive(Clone, Debug)]
pub struct NlcIndex {
    offsets: Vec<usize>,
    entries: Vec<(LabelId, u32)>,
}

impl NlcIndex {
    fn build(csr: &Csr, labels: &[LabelSet]) -> Self {
        let n = csr.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries: Vec<(LabelId, u32)> = Vec::new();
        offsets.push(0);
        let mut scratch: Vec<LabelId> = Vec::new();
        for v in 0..n {
            scratch.clear();
            for &nb in csr.neighbors(VertexId::from_index(v)) {
                scratch.extend(labels[nb.index()].iter());
            }
            scratch.sort_unstable();
            let mut i = 0;
            while i < scratch.len() {
                let l = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j] == l {
                    j += 1;
                }
                entries.push((l, (j - i) as u32));
                i = j;
            }
            offsets.push(entries.len());
        }
        NlcIndex { offsets, entries }
    }

    /// The sorted `(label, count)` list of `v`.
    #[inline]
    pub fn counts(&self, v: VertexId) -> &[(LabelId, u32)] {
        &self.entries[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// How many neighbors of `v` carry label `l`.
    #[inline]
    pub fn count(&self, v: VertexId, l: LabelId) -> u32 {
        let c = self.counts(v);
        match c.binary_search_by_key(&l, |&(label, _)| label) {
            Ok(i) => c[i].1,
            Err(_) => 0,
        }
    }

    /// Bytes of heap memory held by the index.
    pub fn size_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.entries.capacity() * std::mem::size_of::<(LabelId, u32)>()
    }
}

/// Label-pair admission index: for every ordered label pair `(l, m)` with at
/// least one data edge joining an `l`-labeled vertex to an `m`-labeled
/// vertex, the maximum over all `l`-labeled vertices of the number of
/// `m`-labeled neighbors.
///
/// Two sound rejection tests fall out of this summary. Any embedding maps a
/// query edge `(a, b)` onto a data edge whose endpoints carry *all* labels
/// of `a` and `b` respectively, so if any `(la, lb)` pair across the edge is
/// absent from the data graph the query has zero embeddings. Likewise a
/// query vertex carrying label `l` and requiring `c` neighbors of label `m`
/// can only map to a vertex with `max_count(l, m) >= c`. Both checks run in
/// O(query edges × label-set size) — before any candidate computation or
/// CECI build.
#[derive(Clone, Debug, Default)]
pub struct LabelPairIndex {
    /// Sorted by packed key `(l << 32) | m`; value = max `m`-neighbor count
    /// over vertices carrying `l`.
    entries: Vec<(u64, u32)>,
}

impl LabelPairIndex {
    #[inline]
    fn key(l: LabelId, m: LabelId) -> u64 {
        ((l.0 as u64) << 32) | m.0 as u64
    }

    fn build(csr: &Csr, labels: &[LabelSet]) -> Self {
        use std::collections::HashMap;
        let mut max: HashMap<u64, u32> = HashMap::new();
        let mut scratch: Vec<LabelId> = Vec::new();
        for v in 0..csr.num_vertices() {
            // Neighborhood label multiset of v, as sorted runs.
            scratch.clear();
            for &nb in csr.neighbors(VertexId::from_index(v)) {
                scratch.extend(labels[nb.index()].iter());
            }
            scratch.sort_unstable();
            let mut i = 0;
            while i < scratch.len() {
                let m = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j] == m {
                    j += 1;
                }
                let count = (j - i) as u32;
                for l in labels[v].iter() {
                    let e = max.entry(Self::key(l, m)).or_insert(0);
                    *e = (*e).max(count);
                }
                i = j;
            }
        }
        let mut entries: Vec<(u64, u32)> = max.into_iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        LabelPairIndex { entries }
    }

    /// Raises the stored maximum for `(l, m)` to at least `count`, inserting
    /// the pair when absent. No-op when `count` is 0 or the stored maximum
    /// already dominates.
    ///
    /// This is the streaming maintenance primitive: edge *additions* can only
    /// raise per-vertex neighbor-label counts at the two endpoints, so
    /// re-deriving the endpoints' counts and calling `raise` keeps the index
    /// a sound overestimate. Deletions deliberately leave entries in place —
    /// a too-large maximum can only admit more queries, never reject a
    /// satisfiable one — and compaction rebuilds the exact index.
    pub fn raise(&mut self, l: LabelId, m: LabelId, count: u32) {
        if count == 0 {
            return;
        }
        let k = Self::key(l, m);
        match self.entries.binary_search_by_key(&k, |&(key, _)| key) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.max(count),
            Err(i) => self.entries.insert(i, (k, count)),
        }
    }

    /// Re-derives vertex `v`'s neighborhood label counts on `graph` and
    /// raises every `(label-of-v, neighbor-label)` maximum accordingly. Used
    /// after a mutation batch for each touched endpoint.
    pub fn absorb_vertex(&mut self, graph: &Graph, v: VertexId) {
        let mut scratch: Vec<LabelId> = Vec::new();
        for &nb in graph.neighbors(v) {
            scratch.extend(graph.labels(nb).iter());
        }
        scratch.sort_unstable();
        let mut i = 0;
        while i < scratch.len() {
            let m = scratch[i];
            let mut j = i + 1;
            while j < scratch.len() && scratch[j] == m {
                j += 1;
            }
            for l in graph.labels(v).iter() {
                self.raise(l, m, (j - i) as u32);
            }
            i = j;
        }
    }

    /// Does any data edge join an `l`-labeled vertex to an `m`-labeled one?
    #[inline]
    pub fn has_pair(&self, l: LabelId, m: LabelId) -> bool {
        self.max_count(l, m) > 0
    }

    /// Max number of `m`-labeled neighbors over vertices carrying `l`
    /// (0 when the pair never occurs).
    #[inline]
    pub fn max_count(&self, l: LabelId, m: LabelId) -> u32 {
        let k = Self::key(l, m);
        match self.entries.binary_search_by_key(&k, |&(key, _)| key) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Number of distinct ordered label pairs present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the data graph has no labeled edges at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of heap memory held by the index.
    pub fn size_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u32)>()
    }
}

impl Graph {
    /// Builds a graph from an edge list and per-vertex label sets.
    ///
    /// `directed_input` records whether the source data was directed; the
    /// adjacency is symmetrized either way.
    ///
    /// # Panics
    /// Panics if an edge endpoint is out of range (see [`Csr`]).
    pub fn new(
        labels: Vec<LabelSet>,
        edges: &[(VertexId, VertexId)],
        directed_input: bool,
    ) -> Self {
        let n = labels.len();
        let csr = Csr::from_undirected_edges(n, edges);
        let num_labels = labels
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|l| l.0 + 1)
            .max()
            .unwrap_or(0);
        let mut label_index: Vec<Vec<VertexId>> = vec![Vec::new(); num_labels as usize];
        for (i, ls) in labels.iter().enumerate() {
            for l in ls.iter() {
                label_index[l.index()].push(VertexId::from_index(i));
            }
        }
        Graph {
            csr,
            labels,
            num_labels,
            directed_input,
            label_index,
            nlc: None,
            label_pairs: None,
        }
    }

    /// Builds a graph around an already-constructed CSR, rebuilding the
    /// label inverted index but leaving the optional NLC and label-pair
    /// indexes unset. This is the snapshot path of the streaming overlay:
    /// the patched CSR is produced by sorted merges, so re-running the
    /// edge-list sort of [`Graph::new`] would waste the work.
    ///
    /// # Panics
    /// Panics if `labels.len()` differs from the CSR vertex count.
    pub fn from_csr(csr: Csr, labels: Vec<LabelSet>, directed_input: bool) -> Self {
        assert_eq!(
            labels.len(),
            csr.num_vertices(),
            "label list must cover every CSR vertex"
        );
        let num_labels = labels
            .iter()
            .flat_map(|ls| ls.iter())
            .map(|l| l.0 + 1)
            .max()
            .unwrap_or(0);
        let mut label_index: Vec<Vec<VertexId>> = vec![Vec::new(); num_labels as usize];
        for (i, ls) in labels.iter().enumerate() {
            for l in ls.iter() {
                label_index[l.index()].push(VertexId::from_index(i));
            }
        }
        Graph {
            csr,
            labels,
            num_labels,
            directed_input,
            label_index,
            nlc: None,
            label_pairs: None,
        }
    }

    /// Builds an *unlabeled* graph: every vertex gets the shared label `0`,
    /// matching the paper's Figure 6 queries ("all the nodes have same
    /// label 0").
    pub fn unlabeled(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Graph::new(vec![LabelSet::single(LabelId(0)); n], edges, false)
    }

    /// Precomputes the NLC index. Idempotent.
    pub fn build_nlc_index(&mut self) {
        if self.nlc.is_none() {
            self.nlc = Some(NlcIndex::build(&self.csr, &self.labels));
        }
    }

    /// The NLC index, if built.
    #[inline]
    pub fn nlc_index(&self) -> Option<&NlcIndex> {
        self.nlc.as_ref()
    }

    /// Precomputes the label-pair admission index. Idempotent.
    pub fn build_label_pair_index(&mut self) {
        if self.label_pairs.is_none() {
            self.label_pairs = Some(LabelPairIndex::build(&self.csr, &self.labels));
        }
    }

    /// The label-pair admission index, if built.
    #[inline]
    pub fn label_pair_index(&self) -> Option<&LabelPairIndex> {
        self.label_pairs.as_ref()
    }

    /// Attaches an externally maintained label-pair index, replacing any
    /// existing one. The streaming path carries a sound overestimate forward
    /// across mutation batches instead of rebuilding per batch; see
    /// [`LabelPairIndex::raise`].
    pub fn set_label_pair_index(&mut self, index: LabelPairIndex) {
        self.label_pairs = Some(index);
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Size of the label alphabet (max label id + 1).
    #[inline]
    pub fn num_labels(&self) -> u32 {
        self.num_labels
    }

    /// Whether the source data was directed (provenance only).
    #[inline]
    pub fn is_directed_input(&self) -> bool {
        self.directed_input
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.csr.degree(v)
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Edge test (binary search on the lower-degree endpoint).
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.csr.has_edge(a, b)
    }

    /// Label set of `v`.
    #[inline]
    pub fn labels(&self, v: VertexId) -> &LabelSet {
        &self.labels[v.index()]
    }

    /// Does `v` carry label `l`?
    #[inline]
    pub fn has_label(&self, v: VertexId, l: LabelId) -> bool {
        self.labels[v.index()].contains(l)
    }

    /// Sorted vertices carrying label `l` (empty for out-of-alphabet labels).
    #[inline]
    pub fn vertices_with_label(&self, l: LabelId) -> &[VertexId] {
        self.label_index
            .get(l.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Count of neighbors of `v` carrying label `l`. Uses the NLC index when
    /// built, otherwise scans the adjacency list.
    pub fn neighbor_label_count(&self, v: VertexId, l: LabelId) -> u32 {
        if let Some(nlc) = &self.nlc {
            nlc.count(v, l)
        } else {
            self.neighbors(v)
                .iter()
                .filter(|&&nb| self.has_label(nb, l))
                .count() as u32
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The underlying CSR (for the distributed shared-store simulation).
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Approximate heap bytes held by the graph (adjacency + labels + indexes).
    pub fn size_bytes(&self) -> usize {
        let label_bytes: usize = self
            .labels
            .iter()
            .map(|ls| match ls {
                LabelSet::One(_) => std::mem::size_of::<LabelSet>(),
                LabelSet::Many(v) => {
                    std::mem::size_of::<LabelSet>() + v.len() * std::mem::size_of::<LabelId>()
                }
            })
            .sum();
        let index_bytes: usize = self
            .label_index
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        self.csr.size_bytes()
            + label_bytes
            + index_bytes
            + self.nlc.as_ref().map(|n| n.size_bytes()).unwrap_or(0)
            + self
                .label_pairs
                .as_ref()
                .map(|p| p.size_bytes())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{lid, vid};

    /// A small labeled fixture:
    ///
    /// ```text
    ///   0(A) - 1(B) - 2(A,B)
    ///            \    /
    ///             3(C)
    /// ```
    fn fixture() -> Graph {
        Graph::new(
            vec![
                LabelSet::single(lid(0)),
                LabelSet::single(lid(1)),
                LabelSet::from_labels([lid(0), lid(1)]),
                LabelSet::single(lid(2)),
            ],
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
            ],
            false,
        )
    }

    #[test]
    fn counts_and_alphabet() {
        let g = fixture();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_labels(), 3);
        assert!(!g.is_directed_input());
    }

    #[test]
    fn label_index_contains_multilabel_vertices() {
        let g = fixture();
        assert_eq!(g.vertices_with_label(lid(0)), &[vid(0), vid(2)]);
        assert_eq!(g.vertices_with_label(lid(1)), &[vid(1), vid(2)]);
        assert_eq!(g.vertices_with_label(lid(2)), &[vid(3)]);
        assert_eq!(g.vertices_with_label(lid(99)), &[] as &[VertexId]);
    }

    #[test]
    fn neighbor_label_count_without_index() {
        let g = fixture();
        // neighbors of 1: {0(A), 2(A,B), 3(C)} → A:2, B:1, C:1
        assert_eq!(g.neighbor_label_count(vid(1), lid(0)), 2);
        assert_eq!(g.neighbor_label_count(vid(1), lid(1)), 1);
        assert_eq!(g.neighbor_label_count(vid(1), lid(2)), 1);
        assert_eq!(g.neighbor_label_count(vid(0), lid(2)), 0);
    }

    #[test]
    fn neighbor_label_count_with_index_matches_scan() {
        let mut g = fixture();
        let scans: Vec<u32> = g
            .vertices()
            .flat_map(|v| (0..3).map(move |l| (v, lid(l))))
            .map(|(v, l)| g.neighbor_label_count(v, l))
            .collect();
        g.build_nlc_index();
        assert!(g.nlc_index().is_some());
        let indexed: Vec<u32> = g
            .vertices()
            .flat_map(|v| (0..3).map(move |l| (v, lid(l))))
            .map(|(v, l)| g.neighbor_label_count(v, l))
            .collect();
        assert_eq!(scans, indexed);
    }

    #[test]
    fn nlc_index_build_is_idempotent() {
        let mut g = fixture();
        g.build_nlc_index();
        let before = g.nlc_index().unwrap().counts(vid(1)).to_vec();
        g.build_nlc_index();
        assert_eq!(g.nlc_index().unwrap().counts(vid(1)), before.as_slice());
    }

    #[test]
    fn unlabeled_graph_single_label() {
        let g = Graph::unlabeled(3, &[(vid(0), vid(1)), (vid(1), vid(2))]);
        assert_eq!(g.num_labels(), 1);
        assert_eq!(g.vertices_with_label(lid(0)).len(), 3);
    }

    #[test]
    fn max_degree() {
        let g = fixture();
        assert_eq!(g.max_degree(), 3);
        let empty = Graph::unlabeled(0, &[]);
        assert_eq!(empty.max_degree(), 0);
    }

    #[test]
    fn size_bytes_grows_with_nlc() {
        let mut g = fixture();
        let before = g.size_bytes();
        g.build_nlc_index();
        assert!(g.size_bytes() > before);
    }

    #[test]
    fn label_pair_index_presence_matches_edges() {
        let mut g = fixture();
        g.build_label_pair_index();
        let lp = g.label_pair_index().unwrap();
        // Edges: 0(A)-1(B), 1(B)-2(A,B), 1(B)-3(C), 2(A,B)-3(C).
        assert!(lp.has_pair(lid(0), lid(1))); // A-B via (0,1)
        assert!(lp.has_pair(lid(1), lid(0)));
        assert!(lp.has_pair(lid(1), lid(1))); // B-B via (1,2)
        assert!(lp.has_pair(lid(0), lid(2))); // A-C via (2,3)
        assert!(lp.has_pair(lid(2), lid(1))); // C-B via (3,1)
                                              // No edge joins two A-only... (0,2) not an edge; A-A pair would need
                                              // an edge between two vertices both carrying A — none exists.
        assert!(!lp.has_pair(lid(0), lid(0)));
        assert!(!lp.has_pair(lid(2), lid(2))); // single C vertex
        assert!(!lp.has_pair(lid(0), lid(9))); // out of alphabet
    }

    #[test]
    fn label_pair_index_max_counts() {
        let mut g = fixture();
        g.build_label_pair_index();
        let lp = g.label_pair_index().unwrap();
        // Vertex 1(B) has neighbors {0(A), 2(A,B), 3(C)} → two A-neighbors,
        // and it is the B-vertex with the most A-neighbors.
        assert_eq!(lp.max_count(lid(1), lid(0)), 2);
        // Every A-vertex (0 and 2) has exactly one B-neighbor (vertex 1).
        assert_eq!(lp.max_count(lid(0), lid(1)), 1);
        assert_eq!(lp.max_count(lid(0), lid(0)), 0);
    }

    #[test]
    fn label_pair_index_build_is_idempotent_and_sized() {
        let mut g = fixture();
        let before = g.size_bytes();
        g.build_label_pair_index();
        let n = g.label_pair_index().unwrap().len();
        g.build_label_pair_index();
        assert_eq!(g.label_pair_index().unwrap().len(), n);
        assert!(g.size_bytes() > before);
        assert!(!g.label_pair_index().unwrap().is_empty());
    }
}
