//! DFS-based connected query extraction (§6.2).
//!
//! The paper generates labeled query graphs of size 3–50 by DFS-walking the
//! data graph from a random source: *"Iteratively, a new node is selected and
//! every backward edge from that node to already selected nodes is added to
//! query graph until the required node count is achieved."* Labels transfer
//! from data vertices; multi-labeled vertices contribute only their first
//! label. Every extracted query is guaranteed at least one embedding (the
//! vertices it was carved from).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::VertexId;
use crate::labels::LabelSet;

/// A query pattern extracted from a data graph, plus the witness embedding it
/// was carved from (useful for tests: the witness must always be reported by
/// a correct matcher).
#[derive(Clone, Debug)]
pub struct ExtractedQuery {
    /// The extracted pattern as a small labeled graph.
    pub pattern: Graph,
    /// `witness[i]` = the data vertex that pattern vertex `i` was carved from.
    pub witness: Vec<VertexId>,
}

/// Extracts a connected query of `size` vertices by DFS from a random source.
/// Returns `None` if the graph has no connected region of that size reachable
/// from the sampled sources (tried `attempts` times).
pub fn extract_query(
    graph: &Graph,
    size: usize,
    seed: u64,
    attempts: usize,
) -> Option<ExtractedQuery> {
    assert!(size >= 1, "query size must be positive");
    if graph.num_vertices() < size {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..attempts.max(1) {
        if let Some(q) = try_extract(graph, size, &mut rng) {
            return Some(q);
        }
    }
    None
}

fn try_extract(graph: &Graph, size: usize, rng: &mut StdRng) -> Option<ExtractedQuery> {
    let n = graph.num_vertices();
    let source = VertexId(rng.gen_range(0..n as u32));
    // DFS with randomized neighbor order.
    let mut selected: Vec<VertexId> = Vec::with_capacity(size);
    let mut in_selected = std::collections::HashSet::new();
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if in_selected.contains(&v) {
            continue;
        }
        selected.push(v);
        in_selected.insert(v);
        if selected.len() == size {
            break;
        }
        let mut nbrs: Vec<VertexId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|nb| !in_selected.contains(nb))
            .collect();
        nbrs.shuffle(rng);
        stack.extend(nbrs);
    }
    if selected.len() < size {
        return None;
    }
    // Map data vertices → pattern ids in selection order, keep every backward
    // edge among selected vertices.
    let index_of: std::collections::HashMap<VertexId, u32> = selected
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut edges = Vec::new();
    for (i, &v) in selected.iter().enumerate() {
        for &nb in graph.neighbors(v) {
            if let Some(&j) = index_of.get(&nb) {
                if (i as u32) < j {
                    edges.push((VertexId(i as u32), VertexId(j)));
                }
            }
        }
    }
    let labels: Vec<LabelSet> = selected
        .iter()
        .map(|&v| LabelSet::single(graph.labels(v).primary()))
        .collect();
    let pattern = Graph::new(labels, &edges, false);
    // DFS guarantees connectivity of the selected set within the *data*
    // graph, and every data edge among selected vertices is kept, so the
    // pattern is connected.
    Some(ExtractedQuery {
        pattern,
        witness: selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::er::erdos_renyi;
    use crate::generators::labeled::inject_random_labels;

    #[test]
    fn extraction_has_requested_size_and_connected() {
        let g = inject_random_labels(&erdos_renyi(200, 800, 3), 5, 1);
        for size in [3usize, 5, 10, 20] {
            let q = extract_query(&g, size, size as u64, 10).expect("extraction");
            assert_eq!(q.pattern.num_vertices(), size);
            assert!(is_connected(&q.pattern));
        }
    }

    #[test]
    fn witness_edges_exist_in_data_graph() {
        let g = inject_random_labels(&erdos_renyi(100, 400, 9), 4, 2);
        let q = extract_query(&g, 6, 77, 10).unwrap();
        for a in q.pattern.vertices() {
            for &b in q.pattern.neighbors(a) {
                if a < b {
                    assert!(g.has_edge(q.witness[a.index()], q.witness[b.index()]));
                }
            }
        }
    }

    #[test]
    fn witness_labels_match() {
        let g = inject_random_labels(&erdos_renyi(100, 400, 9), 4, 2);
        let q = extract_query(&g, 5, 13, 10).unwrap();
        for v in q.pattern.vertices() {
            let data_labels = g.labels(q.witness[v.index()]);
            assert!(data_labels.contains(q.pattern.labels(v).primary()));
        }
    }

    #[test]
    fn oversized_query_returns_none() {
        let g = erdos_renyi(5, 4, 0);
        assert!(extract_query(&g, 10, 0, 3).is_none());
    }

    #[test]
    fn disconnected_graph_may_fail_gracefully() {
        // Two isolated vertices: can't extract a size-2 connected query.
        let g = Graph::unlabeled(2, &[]);
        assert!(extract_query(&g, 2, 0, 5).is_none());
    }

    fn is_connected(g: &Graph) -> bool {
        if g.num_vertices() == 0 {
            return true;
        }
        let mut seen = vec![false; g.num_vertices()];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            for &nb in g.neighbors(v) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    stack.push(nb);
                }
            }
        }
        count == g.num_vertices()
    }
}
