//! Compressed Sparse Row adjacency storage.
//!
//! The paper stores data graphs in CSR format (§5) with sorted adjacency
//! lists (§3.6) so that edge checks are binary searches and candidate
//! verification can use merge-based set intersection. [`Csr`] is that
//! storage, independent of labels, so the same structure backs both the
//! in-memory graph and the simulated shared (lustre-like) store in
//! `ceci-distributed`.

use crate::ids::VertexId;

/// Sorted-adjacency CSR structure: `offsets[v]..offsets[v+1]` indexes the
/// neighbor slice of vertex `v` inside `neighbors`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from an undirected edge list over `n` vertices.
    ///
    /// Each `(a, b)` pair inserts both `a → b` and `b → a`. Self-loops and
    /// duplicate edges are removed; adjacency lists come out sorted.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_undirected_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            assert!(a.index() < n, "edge endpoint {a:?} out of range (n = {n})");
            assert!(b.index() < n, "edge endpoint {b:?} out of range (n = {n})");
            if a == b {
                continue; // self-loops carry no information for isomorphism
            }
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![VertexId::default(); acc];
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            neighbors[cursor[a.index()]] = b;
            cursor[a.index()] += 1;
            neighbors[cursor[b.index()]] = a;
            cursor[b.index()] += 1;
        }
        let mut csr = Csr { offsets, neighbors };
        csr.sort_and_dedup();
        csr
    }

    /// Builds a CSR directly from prevalidated parts: `offsets` has `n + 1`
    /// monotone entries and `neighbors[offsets[v]..offsets[v + 1]]` is the
    /// sorted, deduplicated adjacency of `v`. Used by the delta-overlay
    /// patch path, which produces sorted lists by merging sorted inputs and
    /// must not pay the full sort-and-dedup of
    /// [`Csr::from_undirected_edges`].
    pub(crate) fn from_sorted_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..offsets.len().saturating_sub(1))
            .all(|v| neighbors[offsets[v]..offsets[v + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])));
        Csr { offsets, neighbors }
    }

    /// Sorts each adjacency list and removes duplicate neighbors, compacting
    /// the arrays in place.
    #[allow(clippy::needless_range_loop)] // read/write cursors alias `neighbors`
    fn sort_and_dedup(&mut self) {
        let n = self.offsets.len() - 1;
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0);
        let mut read_start = self.offsets[0];
        for v in 0..n {
            let read_end = self.offsets[v + 1];
            self.neighbors[read_start..read_end].sort_unstable();
            let mut prev: Option<VertexId> = None;
            for i in read_start..read_end {
                let nb = self.neighbors[i];
                if prev != Some(nb) {
                    self.neighbors[write] = nb;
                    write += 1;
                    prev = Some(nb);
                }
            }
            new_offsets.push(write);
            read_start = read_end;
        }
        self.neighbors.truncate(write);
        self.offsets = new_offsets;
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Total adjacency entries (2·edges for undirected storage).
    #[inline]
    pub fn num_adjacency_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Edge test via binary search over the smaller endpoint's list.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (probe, key) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).binary_search(&key).is_ok()
    }

    /// The raw offsets array (`n + 1` entries) — the `beginning_position`
    /// array of the paper's shared-storage layout (§5).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated neighbor array.
    #[inline]
    pub fn raw_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Bytes of heap memory held by the structure.
    pub fn size_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::vid;

    fn triangle_plus_tail() -> Csr {
        // 0-1, 1-2, 2-0, 2-3
        Csr::from_undirected_edges(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(2), vid(3)),
            ],
        )
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_adjacency_entries(), 8);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(vid(2)), &[vid(0), vid(1), vid(3)]);
        assert_eq!(g.degree(vid(2)), 3);
        assert_eq!(g.degree(vid(3)), 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(vid(0), vid(1)));
        assert!(g.has_edge(vid(1), vid(0)));
        assert!(!g.has_edge(vid(0), vid(3)));
        assert!(!g.has_edge(vid(3), vid(0)));
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Csr::from_undirected_edges(
            3,
            &[
                (vid(0), vid(0)),
                (vid(0), vid(1)),
                (vid(1), vid(0)),
                (vid(0), vid(1)),
                (vid(1), vid(2)),
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(vid(0)), &[vid(1)]);
        assert_eq!(g.neighbors(vid(1)), &[vid(0), vid(2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_undirected_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::from_undirected_edges(5, &[(vid(1), vid(3))]);
        assert_eq!(g.degree(vid(0)), 0);
        assert_eq!(g.neighbors(vid(0)), &[] as &[VertexId]);
        assert_eq!(g.degree(vid(1)), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Csr::from_undirected_edges(2, &[(vid(0), vid(5))]);
    }

    #[test]
    fn size_bytes_nonzero() {
        let g = triangle_plus_tail();
        assert!(g.size_bytes() > 0);
    }
}
