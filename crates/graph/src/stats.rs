//! Graph statistics used in dataset tables and workload estimation.

use crate::graph::Graph;

/// Summary statistics of a graph, as printed in dataset tables (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_vertices: usize,
    /// `|E|` (undirected).
    pub num_edges: usize,
    /// Size of the label alphabet.
    pub num_labels: u32,
    /// Largest degree.
    pub max_degree: usize,
    /// `2|E| / |V|`.
    pub avg_degree: f64,
    /// Whether the source data was directed.
    pub directed: bool,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        GraphStats {
            num_vertices: n,
            num_edges: m,
            num_labels: graph.num_labels(),
            max_degree: graph.max_degree(),
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            directed: graph.is_directed_input(),
        }
    }
}

/// Degree distribution histogram: `hist[d]` = number of vertices of degree
/// `d`. Useful for verifying power-law shape of generated graphs.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Estimated per-vertex workload used for distributed pivot placement (§5):
/// in-memory mode uses `deg(v) + Σ_{w ∈ N(v)} deg(w)`, scaled by vertex id to
/// account for automorphism-breaking order imbalance:
/// `((|V| − v) / |V|) × workload(v)`.
pub fn pivot_workload_in_memory(graph: &Graph, v: crate::ids::VertexId) -> f64 {
    let base = graph.degree(v) as f64
        + graph
            .neighbors(v)
            .iter()
            .map(|&w| graph.degree(w) as f64)
            .sum::<f64>();
    id_scale(graph, v) * base
}

/// Degree-only workload estimate for the shared-storage mode, where neighbor
/// degrees are not locally available (§5).
pub fn pivot_workload_shared(graph: &Graph, v: crate::ids::VertexId) -> f64 {
    id_scale(graph, v) * graph.degree(v) as f64
}

fn id_scale(graph: &Graph, v: crate::ids::VertexId) -> f64 {
    let n = graph.num_vertices() as f64;
    if n == 0.0 {
        return 0.0;
    }
    (n - v.index() as f64) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::vid;

    fn path4() -> Graph {
        Graph::unlabeled(4, &[(vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(3))])
    }

    #[test]
    fn stats_of_path() {
        let s = GraphStats::of(&path4());
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
        assert_eq!(s.num_labels, 1);
        assert!(!s.directed);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = path4();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[1], 2); // endpoints
        assert_eq!(h[2], 2); // middle
    }

    #[test]
    fn workload_scales_down_with_vertex_id() {
        let g = path4();
        // vertices 1 and 2 have identical structure; higher id scales lower.
        let w1 = pivot_workload_in_memory(&g, vid(1));
        let w2 = pivot_workload_in_memory(&g, vid(2));
        assert!(w1 > w2);
    }

    #[test]
    fn shared_workload_uses_degree_only() {
        let g = path4();
        let w = pivot_workload_shared(&g, vid(0));
        // deg = 1, scale = (4-0)/4 = 1.0
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::unlabeled(0, &[]);
        let s = GraphStats::of(&g);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.num_vertices, 0);
    }
}
