//! Strongly-typed identifiers for vertices and labels.
//!
//! Both data graphs and query graphs index vertices with [`VertexId`]; labels
//! from the alphabet `Σ` are [`LabelId`]s. Using `u32` newtypes keeps the hot
//! candidate arrays at four bytes per entry (the paper stores candidate edges
//! in 8 bytes — a `(key, value)` pair of 32-bit ids) while still catching
//! vertex/label mix-ups at compile time.

use std::fmt;

/// Identifier of a vertex in a graph (data or query).
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
///
/// `repr(transparent)` guarantees the layout of `VertexId` is exactly that
/// of `u32`, which lets the intersection kernels in `ceci-core` reinterpret
/// sorted `&[VertexId]` candidate lists as `&[u32]` lanes for SIMD compares.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of a vertex label drawn from the label alphabet `Σ`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LabelId(pub u32);

impl VertexId {
    /// The id as a `usize` index, for slicing into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VertexId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }
}

impl LabelId {
    /// The id as a `usize` index, for slicing into per-label arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `LabelId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        LabelId(u32::try_from(index).expect("label index exceeds u32::MAX"))
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for LabelId {
    #[inline]
    fn from(v: u32) -> Self {
        LabelId(v)
    }
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub const fn vid(v: u32) -> VertexId {
    VertexId(v)
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub const fn lid(l: u32) -> LabelId {
    LabelId(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, vid(42));
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn label_id_roundtrip() {
        let l = LabelId::from_index(7);
        assert_eq!(l.index(), 7);
        assert_eq!(l, lid(7));
        assert_eq!(format!("{l:?}"), "L7");
        assert_eq!(format!("{l}"), "7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(vid(1) < vid(2));
        assert!(lid(0) < lid(9));
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32::MAX")]
    fn vertex_id_overflow_panics() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }
}
