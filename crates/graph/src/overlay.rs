//! Delta overlay over a frozen CSR graph.
//!
//! Streaming mutations (`ADDEDGE`/`DELEDGE`/`BATCH`) must not rebuild the
//! base CSR per edge, but CECI enumeration is far too read-hot to pay a
//! per-`neighbors()` overlay merge. [`DeltaOverlay`] resolves the tension:
//! it accumulates *net* edge additions and deletions relative to a frozen
//! base graph as per-vertex sorted delta lists, and [`DeltaOverlay::commit`]
//! produces a fresh read-optimized [`Graph`] snapshot by a linear patch of
//! the base CSR — clean vertices are bulk-copied, dirty vertices get a
//! sorted three-way merge, and no edge-list re-sort happens. The overlay
//! itself stays attached to the base until the caller *compacts* (adopts a
//! snapshot as the new base and clears the overlay), which bounds delta
//! memory at a configurable threshold.

use std::collections::BTreeMap;

use crate::csr::Csr;
use crate::graph::Graph;
use crate::ids::VertexId;

/// Net pending edge mutations against a frozen base graph.
///
/// All operations are expressed relative to the *base* passed in — the
/// overlay never holds a reference, so the same overlay value can outlive
/// registry lock scopes. Callers must pass the same base graph to every
/// call between two compactions; mixing bases is a logic error.
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    /// Per-vertex sorted lists of neighbors added relative to the base.
    adds: BTreeMap<VertexId, Vec<VertexId>>,
    /// Per-vertex sorted lists of base neighbors deleted.
    dels: BTreeMap<VertexId, Vec<VertexId>>,
    /// Net added undirected edges pending.
    added: usize,
    /// Net deleted undirected edges pending.
    deleted: usize,
}

fn insert_sorted(map: &mut BTreeMap<VertexId, Vec<VertexId>>, k: VertexId, v: VertexId) {
    let list = map.entry(k).or_default();
    if let Err(i) = list.binary_search(&v) {
        list.insert(i, v);
    }
}

fn remove_sorted(map: &mut BTreeMap<VertexId, Vec<VertexId>>, k: VertexId, v: VertexId) {
    if let Some(list) = map.get_mut(&k) {
        if let Ok(i) = list.binary_search(&v) {
            list.remove(i);
        }
        if list.is_empty() {
            map.remove(&k);
        }
    }
}

fn contains(map: &BTreeMap<VertexId, Vec<VertexId>>, k: VertexId, v: VertexId) -> bool {
    map.get(&k).is_some_and(|l| l.binary_search(&v).is_ok())
}

impl DeltaOverlay {
    /// An empty overlay (the view equals the base).
    pub fn new() -> Self {
        Self::default()
    }

    /// Edge test against the overlaid view (base ∖ deletions ∪ additions).
    pub fn has_edge(&self, base: &Graph, a: VertexId, b: VertexId) -> bool {
        if contains(&self.dels, a, b) {
            return false;
        }
        contains(&self.adds, a, b) || base.has_edge(a, b)
    }

    /// Adds undirected edge `{a, b}` to the view. Returns `false` (no-op)
    /// for self-loops and edges already present in the view.
    ///
    /// # Panics
    /// Panics if an endpoint is out of the base vertex range — streaming
    /// mutations never grow the vertex set.
    pub fn add_edge(&mut self, base: &Graph, a: VertexId, b: VertexId) -> bool {
        let n = base.num_vertices();
        assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
        if a == b || self.has_edge(base, a, b) {
            return false;
        }
        if contains(&self.dels, a, b) {
            // Re-adding a base edge pending deletion just cancels the delete.
            remove_sorted(&mut self.dels, a, b);
            remove_sorted(&mut self.dels, b, a);
            self.deleted -= 1;
        } else {
            insert_sorted(&mut self.adds, a, b);
            insert_sorted(&mut self.adds, b, a);
            self.added += 1;
        }
        true
    }

    /// Deletes undirected edge `{a, b}` from the view. Returns `false`
    /// (no-op) when the edge is absent from the view.
    ///
    /// # Panics
    /// Panics if an endpoint is out of the base vertex range.
    pub fn delete_edge(&mut self, base: &Graph, a: VertexId, b: VertexId) -> bool {
        let n = base.num_vertices();
        assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
        if a == b || !self.has_edge(base, a, b) {
            return false;
        }
        if contains(&self.adds, a, b) {
            // Deleting a pending addition cancels it.
            remove_sorted(&mut self.adds, a, b);
            remove_sorted(&mut self.adds, b, a);
            self.added -= 1;
        } else {
            insert_sorted(&mut self.dels, a, b);
            insert_sorted(&mut self.dels, b, a);
            self.deleted += 1;
        }
        true
    }

    /// Net undirected edges added relative to the base.
    pub fn edges_added(&self) -> usize {
        self.added
    }

    /// Net base edges deleted.
    pub fn edges_deleted(&self) -> usize {
        self.deleted
    }

    /// Total pending net mutations — the compaction-threshold signal.
    pub fn pending(&self) -> usize {
        self.added + self.deleted
    }

    /// True when the view equals the base.
    pub fn is_empty(&self) -> bool {
        self.added == 0 && self.deleted == 0
    }

    /// Drops all pending deltas (used after compaction adopts a snapshot).
    pub fn clear(&mut self) {
        self.adds.clear();
        self.dels.clear();
        self.added = 0;
        self.deleted = 0;
    }

    /// Approximate heap bytes held by the delta lists.
    pub fn size_bytes(&self) -> usize {
        let per = |m: &BTreeMap<VertexId, Vec<VertexId>>| {
            m.values()
                .map(|l| l.capacity() * std::mem::size_of::<VertexId>() + 48)
                .sum::<usize>()
        };
        per(&self.adds) + per(&self.dels)
    }

    /// Materializes the overlaid view as a fresh read-optimized [`Graph`]:
    /// offsets are recomputed from per-vertex degree deltas, clean vertices'
    /// adjacency is bulk-copied from the base CSR, and dirty vertices get a
    /// sorted merge of `base ∖ dels ∪ adds`. Labels are carried over; the
    /// NLC and label-pair indexes are left unset (the streaming layer
    /// attaches its maintained label-pair index separately).
    pub fn commit(&self, base: &Graph) -> Graph {
        let n = base.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for v in 0..n {
            let vv = VertexId::from_index(v);
            let d = base.degree(vv) + self.adds.get(&vv).map_or(0, Vec::len)
                - self.dels.get(&vv).map_or(0, Vec::len);
            total += d;
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for v in 0..n {
            let vv = VertexId::from_index(v);
            let base_nbrs = base.neighbors(vv);
            let adds = self.adds.get(&vv).map_or(&[][..], Vec::as_slice);
            let dels = self.dels.get(&vv).map_or(&[][..], Vec::as_slice);
            if adds.is_empty() && dels.is_empty() {
                neighbors.extend_from_slice(base_nbrs);
                continue;
            }
            let mut ai = 0;
            for &b in base_nbrs {
                if dels.binary_search(&b).is_ok() {
                    continue;
                }
                while ai < adds.len() && adds[ai] < b {
                    neighbors.push(adds[ai]);
                    ai += 1;
                }
                debug_assert!(
                    ai >= adds.len() || adds[ai] != b,
                    "pending addition duplicates a base edge"
                );
                neighbors.push(b);
            }
            neighbors.extend_from_slice(&adds[ai..]);
        }
        let csr = Csr::from_sorted_parts(offsets, neighbors);
        let labels = (0..n)
            .map(|i| base.labels(VertexId::from_index(i)).clone())
            .collect();
        Graph::from_csr(csr, labels, base.is_directed_input())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{lid, vid};
    use crate::labels::LabelSet;

    fn base() -> Graph {
        // 0-1, 1-2, 2-3 path with alternating labels.
        Graph::new(
            vec![
                LabelSet::single(lid(0)),
                LabelSet::single(lid(1)),
                LabelSet::single(lid(0)),
                LabelSet::single(lid(1)),
            ],
            &[(vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(3))],
            false,
        )
    }

    #[test]
    fn add_delete_noop_semantics() {
        let g = base();
        let mut o = DeltaOverlay::new();
        assert!(!o.add_edge(&g, vid(0), vid(1)), "existing edge is a no-op");
        assert!(!o.add_edge(&g, vid(2), vid(2)), "self-loop is a no-op");
        assert!(o.add_edge(&g, vid(0), vid(2)));
        assert!(!o.add_edge(&g, vid(2), vid(0)), "view already has it");
        assert!(o.has_edge(&g, vid(0), vid(2)));
        assert!(!o.delete_edge(&g, vid(0), vid(3)), "absent edge is a no-op");
        assert!(o.delete_edge(&g, vid(1), vid(2)));
        assert!(!o.has_edge(&g, vid(1), vid(2)));
        assert_eq!(o.edges_added(), 1);
        assert_eq!(o.edges_deleted(), 1);
        assert_eq!(o.pending(), 2);
    }

    #[test]
    fn add_then_delete_cancels() {
        let g = base();
        let mut o = DeltaOverlay::new();
        assert!(o.add_edge(&g, vid(0), vid(3)));
        assert!(o.delete_edge(&g, vid(3), vid(0)));
        assert!(o.is_empty());
        assert!(o.delete_edge(&g, vid(0), vid(1)));
        assert!(o.add_edge(&g, vid(1), vid(0)));
        assert!(o.is_empty());
        assert!(o.has_edge(&g, vid(0), vid(1)));
    }

    #[test]
    fn commit_matches_from_scratch() {
        let g = base();
        let mut o = DeltaOverlay::new();
        o.add_edge(&g, vid(0), vid(2));
        o.add_edge(&g, vid(0), vid(3));
        o.delete_edge(&g, vid(1), vid(2));
        let snap = o.commit(&g);
        let expect = Graph::new(
            (0..4).map(|i| g.labels(vid(i)).clone()).collect::<Vec<_>>(),
            &[
                (vid(0), vid(1)),
                (vid(2), vid(3)),
                (vid(0), vid(2)),
                (vid(0), vid(3)),
            ],
            false,
        );
        assert_eq!(snap.num_edges(), expect.num_edges());
        for v in 0..4 {
            assert_eq!(snap.neighbors(vid(v)), expect.neighbors(vid(v)));
            assert_eq!(snap.labels(vid(v)), expect.labels(vid(v)));
        }
        assert_eq!(
            snap.vertices_with_label(lid(0)),
            expect.vertices_with_label(lid(0))
        );
    }

    #[test]
    fn commit_of_empty_overlay_copies_base() {
        let g = base();
        let o = DeltaOverlay::new();
        let snap = o.commit(&g);
        assert_eq!(snap.num_edges(), g.num_edges());
        for v in 0..4 {
            assert_eq!(snap.neighbors(vid(v)), g.neighbors(vid(v)));
        }
    }

    #[test]
    fn clear_resets() {
        let g = base();
        let mut o = DeltaOverlay::new();
        o.add_edge(&g, vid(0), vid(2));
        assert!(o.size_bytes() > 0);
        o.clear();
        assert!(o.is_empty());
        assert_eq!(o.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let g = base();
        let mut o = DeltaOverlay::new();
        o.add_edge(&g, vid(0), vid(9));
    }
}
