//! Property tests for the graph substrate: CSR invariants, loader
//! roundtrips, generator guarantees.

use ceci_graph::generators::{attach_pendants, erdos_renyi, kronecker_default};
use ceci_graph::{io, Graph, LabelId, LabelSet, VertexId};
use proptest::prelude::*;

fn arb_edges(max_n: u32) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2u32..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n as usize));
        (Just(n as usize), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_is_sorted_and_symmetric((n, raw) in arb_edges(40)) {
        let edges: Vec<(VertexId, VertexId)> =
            raw.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect();
        let g = Graph::unlabeled(n, &edges);
        let mut degree_sum = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            degree_sum += nbrs.len();
            // Sorted, deduped, no self-loops.
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nbrs.contains(&v));
            // Symmetry.
            for &nb in nbrs {
                prop_assert!(g.has_edge(nb, v));
                prop_assert!(g.neighbors(nb).contains(&v));
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn has_edge_matches_adjacency((n, raw) in arb_edges(24)) {
        let edges: Vec<(VertexId, VertexId)> =
            raw.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect();
        let g = Graph::unlabeled(n, &edges);
        for a in g.vertices() {
            for b in g.vertices() {
                let expected = g.neighbors(a).contains(&b);
                prop_assert_eq!(g.has_edge(a, b), expected);
            }
        }
    }

    #[test]
    fn binary_roundtrip((n, raw) in arb_edges(30), labels in 1u32..5) {
        let edges: Vec<(VertexId, VertexId)> =
            raw.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect();
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|i| LabelSet::single(LabelId(i as u32 % labels)))
            .collect();
        let g = Graph::new(label_sets, &edges, false);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.labels(v), g.labels(v));
        }
    }

    #[test]
    fn labeled_text_roundtrip((n, raw) in arb_edges(20), labels in 1u32..4) {
        let edges: Vec<(VertexId, VertexId)> =
            raw.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect();
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|i| LabelSet::single(LabelId(i as u32 % labels)))
            .collect();
        let g = Graph::new(label_sets, &edges, false);
        let mut out = Vec::new();
        io::write_labeled(&g, &mut out).unwrap();
        let g2 = io::read_labeled(&out[..]).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.labels(v), g.labels(v));
        }
    }

    #[test]
    fn nlc_index_agrees_with_scans((n, raw) in arb_edges(20), labels in 1u32..4) {
        let edges: Vec<(VertexId, VertexId)> =
            raw.iter().map(|&(a, b)| (VertexId(a), VertexId(b))).collect();
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|i| LabelSet::single(LabelId((i as u32 * 7 + 1) % labels)))
            .collect();
        let plain = Graph::new(label_sets, &edges, false);
        let mut indexed = plain.clone();
        indexed.build_nlc_index();
        for v in plain.vertices() {
            for l in 0..labels {
                prop_assert_eq!(
                    plain.neighbor_label_count(v, LabelId(l)),
                    indexed.neighbor_label_count(v, LabelId(l))
                );
            }
        }
    }
}

#[test]
fn generators_are_deterministic_and_sized() {
    let er = erdos_renyi(300, 900, 5);
    assert_eq!(er.num_vertices(), 300);
    assert_eq!(er.num_edges(), 900);
    let rm = kronecker_default(9, 4, 5);
    assert_eq!(rm.num_vertices(), 512);
    let tailed = attach_pendants(&rm, 200, 6);
    assert_eq!(tailed.num_vertices(), rm.num_vertices() + 200);
    assert_eq!(tailed.num_edges(), rm.num_edges() + 200);
}
