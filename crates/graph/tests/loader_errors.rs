//! Loader failures must carry file *and* line context — a server loading
//! operator-supplied graph files needs actionable parse diagnostics, not a
//! bare "invalid digit".

use ceci_graph::io;
use ceci_graph::GraphError;

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn malformed_fixture_reports_file_and_line() {
    let path = fixture("malformed.graph");
    let err = io::load_labeled(&path).unwrap_err();
    let msg = err.to_string();
    // File context...
    assert!(
        msg.contains("malformed.graph"),
        "missing file context: {msg}"
    );
    // ...and the offending line (line 4 holds the bad label).
    assert!(msg.contains("line 4"), "missing line context: {msg}");
    assert!(msg.contains("label"), "missing cause: {msg}");
    // The error chain exposes the underlying parse error.
    match err {
        GraphError::File { path: p, source } => {
            assert!(p.ends_with("malformed.graph"));
            assert!(matches!(*source, GraphError::Parse { line: 4, .. }));
        }
        other => panic!("expected GraphError::File, got {other:?}"),
    }
}

#[test]
fn missing_file_reports_path() {
    let path = fixture("does_not_exist.graph");
    let err = io::load_labeled(&path).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("does_not_exist.graph"),
        "missing file context: {msg}"
    );
    assert!(matches!(err, GraphError::File { .. }));
}

#[test]
fn malformed_edge_list_reports_file_and_line() {
    // Reuse the labeled fixture as an edge list: line 3 (`t 3 2`) parses but
    // line 4 (`v 0 oops 1`) has a non-numeric second column.
    let path = fixture("malformed.graph");
    let err = io::load_edge_list(&path, false).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("malformed.graph") && msg.contains("line"),
        "missing context: {msg}"
    );
}
