//! # ceci-bench
//!
//! Benchmark harness reproducing every table and figure of the CECI paper's
//! evaluation (§6) on synthetic stand-in datasets, plus Criterion
//! micro-benchmarks for the core kernels.
//!
//! Run `cargo run --release -p ceci-bench --bin repro -- help` for the
//! experiment index; each subcommand prints the rows/series of its paper
//! counterpart and dumps JSON records under `bench_results/`.

#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod json;
pub mod table;

pub use datasets::{Dataset, Scale};
