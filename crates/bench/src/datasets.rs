//! Dataset registry: scaled-down synthetic stand-ins for Table 1.
//!
//! The paper's graphs come from SNAP (plus Yahoo and a Graph500 Kronecker
//! graph). Offline, we substitute structure-matched synthetics: Kronecker
//! (R-MAT) for the power-law social/web graphs, Erdős–Rényi with random
//! 100-label injection for RD (§6.2), and a dense multi-labeled graph for
//! Human. Relative vertex/edge proportions between datasets are preserved;
//! absolute sizes shrink to laptop scale (see `Scale`).

use ceci_graph::generators::{
    attach_pendants, dense_labeled, erdos_renyi, inject_random_labels, kronecker_default,
};
use ceci_graph::{Graph, GraphStats};

/// Experiment scale: `Quick` finishes a full `repro all` sweep in tens of
/// minutes on a small host; `Full` doubles every Kronecker dimension (4x
/// edges) for more stable timings on larger machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small graphs (~4–65K vertices).
    Quick,
    /// Larger graphs (~16–260K vertices).
    Full,
}

impl Scale {
    fn bump(self) -> u32 {
        match self {
            Scale::Quick => 0,
            Scale::Full => 1,
        }
    }
}

/// The Table 1 datasets (paper abbreviations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// citPatent — directed citation graph.
    Cp,
    /// Friendster — the largest SNAP social graph used.
    Fs,
    /// Human — small dense multi-labeled biological graph (built at the
    /// paper's real proportions: 4.6K vertices).
    Hu,
    /// live-journal.
    Lj,
    /// Orkut — dense social graph.
    Ok,
    /// Webgoogle — directed web graph.
    Wg,
    /// wiki-talk — directed, very skewed, sparse.
    Wt,
    /// Yahoo — the paper's billion-scale graph (largest stand-in here).
    Yh,
    /// Youtube.
    Yt,
    /// rand_500k — Erdős–Rényi with 100 random labels (the paper's RD).
    Rd,
}

impl Dataset {
    /// All datasets in Table 1 order.
    pub const ALL: [Dataset; 10] = [
        Dataset::Cp,
        Dataset::Fs,
        Dataset::Hu,
        Dataset::Lj,
        Dataset::Ok,
        Dataset::Wg,
        Dataset::Wt,
        Dataset::Yh,
        Dataset::Yt,
        Dataset::Rd,
    ];

    /// The eight unlabeled graphs the small-query experiments use (§6.1).
    pub const UNLABELED: [Dataset; 8] = [
        Dataset::Cp,
        Dataset::Fs,
        Dataset::Lj,
        Dataset::Ok,
        Dataset::Wg,
        Dataset::Wt,
        Dataset::Yh,
        Dataset::Yt,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::Cp => "CP",
            Dataset::Fs => "FS",
            Dataset::Hu => "HU",
            Dataset::Lj => "LJ",
            Dataset::Ok => "OK",
            Dataset::Wg => "WG",
            Dataset::Wt => "WT",
            Dataset::Yh => "YH",
            Dataset::Yt => "YT",
            Dataset::Rd => "RD",
        }
    }

    /// The full dataset name from Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Cp => "citPatent",
            Dataset::Fs => "Friendster",
            Dataset::Hu => "Human",
            Dataset::Lj => "live-journal",
            Dataset::Ok => "Orkut",
            Dataset::Wg => "Webgoogle",
            Dataset::Wt => "wiki-talk",
            Dataset::Yh => "Yahoo",
            Dataset::Yt => "Youtube",
            Dataset::Rd => "rand_500k",
        }
    }

    /// Whether the original dataset is directed (Table 1).
    pub fn directed(self) -> bool {
        matches!(self, Dataset::Cp | Dataset::Wg | Dataset::Wt)
    }

    /// Parses an abbreviation (case-insensitive).
    pub fn parse(s: &str) -> Option<Dataset> {
        Dataset::ALL
            .iter()
            .copied()
            .find(|d| d.abbrev().eq_ignore_ascii_case(s))
    }

    /// Builds the stand-in graph. Deterministic per (dataset, scale).
    pub fn build(self, scale: Scale) -> Graph {
        let b = scale.bump();
        let seed = 0xCEC1_0000 + self as u64;
        match self {
            // Kronecker stand-ins: (scale, edge_factor) roughly preserving
            // each graph's relative density and skew.
            // Sparse skewed graphs get a degree-1 pendant tail, matching
            // the real datasets' degree distributions (most wiki-talk /
            // Youtube / citation vertices are degree 1-2, which the degree
            // filter prunes — the effect behind Table 2's savings).
            Dataset::Cp => {
                let core = kronecker_default(12 + b, 6, seed);
                attach_pendants(&core, core.num_vertices() * 3, seed + 7)
            }
            Dataset::Fs => kronecker_default(14 + b, 10, seed),
            Dataset::Lj => kronecker_default(14 + b, 8, seed),
            Dataset::Ok => kronecker_default(13 + b, 14, seed),
            Dataset::Wg => kronecker_default(13 + b, 5, seed),
            Dataset::Wt => {
                let core = kronecker_default(12 + b, 4, seed);
                attach_pendants(&core, core.num_vertices() * 10, seed + 7)
            }
            Dataset::Yh => kronecker_default(14 + b, 6, seed),
            Dataset::Yt => {
                let core = kronecker_default(12 + b, 5, seed);
                attach_pendants(&core, core.num_vertices() * 5, seed + 7)
            }
            // Human at its real proportions (4.6K vertices, dense, 90
            // labels, 1–3 labels per vertex) but a tamer average degree.
            Dataset::Hu => dense_labeled(4_600, 64 << b, 90, seed),
            // RD: Erdős–Rényi, |E| = 4|V|, 100 uniform labels (§6.2).
            Dataset::Rd => {
                let n = 1usize << (13 + b);
                let g = erdos_renyi(n, 4 * n, seed);
                inject_random_labels(&g, 100, seed + 1)
            }
        }
    }

    /// Table 1 headline sizes of the *original* dataset, for the printed
    /// comparison column: `(vertices, edges)` in millions.
    pub fn paper_size(self) -> (f64, f64) {
        match self {
            Dataset::Cp => (3.77, 16.5),
            Dataset::Fs => (65.6, 1_800.0),
            Dataset::Hu => (0.0046, 0.7),
            Dataset::Lj => (3.99, 34.68),
            Dataset::Ok => (3.0, 117.2),
            Dataset::Wg => (0.9, 8.6),
            Dataset::Wt => (2.3, 5.0),
            Dataset::Yh => (1_400.0, 12_900.0),
            Dataset::Yt => (1.1, 3.0),
            Dataset::Rd => (0.5, 2.0),
        }
    }

    /// Stats of the stand-in at a given scale.
    pub fn stats(self, scale: Scale) -> GraphStats {
        GraphStats::of(&self.build(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.abbrev()), Some(d));
            assert_eq!(Dataset::parse(&d.abbrev().to_lowercase()), Some(d));
        }
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn quick_builds_are_reasonable() {
        for d in [Dataset::Wt, Dataset::Rd, Dataset::Hu] {
            let g = d.build(Scale::Quick);
            assert!(g.num_vertices() > 1_000, "{}", d.abbrev());
            assert!(g.num_edges() > 1_000, "{}", d.abbrev());
        }
    }

    #[test]
    fn rd_has_100_labels() {
        let g = Dataset::Rd.build(Scale::Quick);
        assert!(g.num_labels() <= 100 && g.num_labels() > 90);
    }

    #[test]
    fn hu_is_dense_and_multilabeled() {
        let g = Dataset::Hu.build(Scale::Quick);
        assert_eq!(g.num_vertices(), 4_600);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 50.0);
        assert!(g.num_labels() <= 90);
    }

    #[test]
    fn determinism() {
        let a = Dataset::Yt.build(Scale::Quick);
        let b = Dataset::Yt.build(Scale::Quick);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn relative_density_preserved() {
        // Orkut stand-in denser than Youtube stand-in, as in Table 1.
        let ok = Dataset::Ok.stats(Scale::Quick);
        let yt = Dataset::Yt.stats(Scale::Quick);
        assert!(ok.avg_degree > yt.avg_degree);
    }
}
