//! `repro` — regenerate the CECI paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale quick|full]
//! repro all [--scale quick|full]
//! ```

use ceci_bench::experiments;
use ceci_bench::Scale;
use ceci_core::Kernel;

const HELP: &str = "\
repro — regenerate the CECI paper's tables and figures on synthetic stand-ins

USAGE:
    repro <experiment> [--scale quick|full]

EXPERIMENTS:
    table1              Dataset inventory (Table 1)
    table2              CECI size vs theoretical bound (Table 2)
    queries             The QG1-QG5 query catalog (Figure 6)
    fig7                CECI vs DualSim-lite vs PsgL-lite, QG1/QG4 (Figure 7)
    fig8                Same for QG2/QG3/QG5 on WG/WT/LJ (Figure 8)
    fig9                CECI vs CFLMatch-lite, labeled queries (Figure 9)
    fig10               CECI vs TurboIso-lite on HU (Figure 10)
    fig11               CGD/FGD speedup over static distribution (Figure 11)
    fig12               Effect of beta on per-worker balance (Figure 12)
    fig13               Thread scalability, QG1 (Figure 13)
    fig14               Thread scalability, QG4 (Figure 14)
    fig15               Phase utilization timeline (Figure 15)
    fig16               Distributed speedup, replicated graph (Figure 16)
    fig17               Distributed speedup, shared storage (Figure 17)
    fig18               Recursive-call reduction vs PsgL (Figure 18)
    fig19               Technique-by-technique speedup breakdown (Figure 19)
    fig20               CECI construction IO/comm/compute breakdown (Figure 20)
    ablation-order      Matching-order heuristics vs naive BFS (§2.2)
    ablation-intersect  Intersection vs edge verification (§4.1)
    adaptive            Cost-model-driven adaptive execution: portfolio
                        planner vs fixed BFS vs worst-scoring order on
                        easy/hard/hopeless query classes — asserts
                        bit-identical counts, records speedup + q-error,
                        and shows 1 ms deadline admission verdicts;
                        writes bench_results/adaptive.json
    kernels             Intersection-kernel sweep + end-to-end ablation (§4.1)
    index               Index-construction thread-scaling sweep (§6.4):
                        filter/refine/merge breakdown + bytes per thread
                        count, written to bench_results/index_build.json
    physical            Physical decomposition — future work (§8)
    faults              Fault-injection sweep: crashes, stragglers, steal
                        loss — asserts bit-identical counts vs fault-free
                        and writes bench_results/faults.json
    multiquery          Mixed-workload throughput sweep: admission filter,
                        single-flight builds, shared-prefix batching, and
                        redundant-extension pruning on vs off — asserts
                        bit-identical counts and writes
                        bench_results/multiquery.json
    service             Connection-scaling sweep for the event-driven server
                        core: constant offered load while connections scale
                        8 -> 2048 — asserts zero dropped responses and
                        bit-identical counts, reports p99 inflation vs the
                        8-connection baseline, and writes
                        bench_results/service.json
    shard               Multi-process sharded serving sweep: real ceci-shard
                        processes under SIGKILL / stall / kill+restart —
                        asserts bit-identical counts vs the single-process
                        oracle, reports recovery makespan inflation, and
                        writes bench_results/shard.json
    stream              SMFresh-style temporal batch sweep: incremental
                        index maintenance (patch + delta) vs from-scratch
                        rebuild at every batch boundary — asserts
                        bit-identical counts and writes
                        bench_results/stream.json
    trace               End-to-end trace capture (build/enumerate/distributed)
                        + tracing-overhead gate (<3% asserted); writes
                        bench_results/trace.json and trace_chrome.json
                        (loadable in about:tracing / Perfetto)
    all                 Everything above, in order

OPTIONS:
    --scale quick|full  Stand-in dataset size (default: quick)
    --kernel <name>     Pin one kernel for the `kernels` experiment
                        (merge|branchless|gallop|simd|adaptive; default: all)
    --build-threads <n> BFS-filter worker pool width for index builds
                        (default: 1; any value yields a bit-identical index)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut kernel: Option<Kernel> = None;
    let mut build_threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--build-threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => build_threads = Some(n),
                    _ => {
                        eprintln!(
                            "error: --build-threads expects a positive integer, got {:?}",
                            args.get(i)
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--scale" => {
                i += 1;
                match args.get(i).map(|s| s.as_str()) {
                    Some("quick") => scale = Scale::Quick,
                    Some("full") => scale = Scale::Full,
                    other => {
                        eprintln!("error: --scale expects quick|full, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--kernel" => {
                i += 1;
                match args.get(i).and_then(|s| Kernel::parse(s)) {
                    Some(k) => kernel = Some(k),
                    None => {
                        eprintln!(
                            "error: --kernel expects merge|branchless|gallop|simd|adaptive, got {:?}",
                            args.get(i)
                        );
                        std::process::exit(2);
                    }
                }
            }
            "help" | "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(experiment) = experiment else {
        print!("{HELP}");
        std::process::exit(2);
    };
    if !dispatch(&experiment, scale, kernel, build_threads) {
        eprintln!("error: unknown experiment {experiment:?}\n");
        print!("{HELP}");
        std::process::exit(2);
    }
}

fn dispatch(
    experiment: &str,
    scale: Scale,
    kernel: Option<Kernel>,
    build_threads: Option<usize>,
) -> bool {
    let section = |name: &str| {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================\n");
    };
    match experiment {
        "table1" => experiments::table1::run(scale),
        "table2" => experiments::table2::run(scale),
        "queries" => experiments::queries::run(),
        "fig7" => experiments::fig7_8::run_fig7(scale),
        "fig8" => experiments::fig7_8::run_fig8(scale),
        "fig9" => experiments::fig9_10::run_fig9(scale),
        "fig10" => experiments::fig9_10::run_fig10(scale),
        "fig11" => experiments::fig11::run(scale),
        "fig12" => experiments::fig12::run(scale),
        "fig13" => experiments::fig13_14::run_fig13(scale),
        "fig14" => experiments::fig13_14::run_fig14(scale),
        "fig15" => experiments::fig15::run(scale),
        "fig16" => experiments::fig16_17::run_fig16(scale),
        "fig17" => experiments::fig16_17::run_fig17(scale),
        "fig18" => experiments::fig18::run(scale),
        "fig19" => experiments::fig19::run(scale),
        "fig20" => experiments::fig20::run(scale),
        "kernels" => experiments::kernels::run_with(scale, kernel),
        "index" => experiments::index_build::run_with(scale, build_threads),
        "ablation-order" => experiments::ablation::run_order(scale),
        "ablation-intersect" => experiments::ablation::run_intersection(scale),
        "adaptive" => experiments::adaptive::run(scale),
        "physical" => experiments::physical::run(scale),
        "faults" => experiments::faults::run(scale),
        "multiquery" => experiments::multiquery::run(scale),
        "service" => experiments::service::run(scale),
        "shard" => experiments::shard::run(scale),
        "stream" => experiments::stream::run(scale),
        "trace" => experiments::trace::run(scale),
        "all" => {
            for (name, f) in ALL_EXPERIMENTS {
                section(name);
                f(scale);
            }
        }
        _ => return false,
    }
    true
}

type Runner = fn(Scale);

const ALL_EXPERIMENTS: &[(&str, Runner)] = &[
    ("Table 1", experiments::table1::run),
    ("Table 2", experiments::table2::run),
    ("Figure 6 (queries)", |_| experiments::queries::run()),
    ("Kernel ablation", experiments::kernels::run),
    ("Index construction scaling", experiments::index_build::run),
    ("Figure 7", experiments::fig7_8::run_fig7),
    ("Figure 8", experiments::fig7_8::run_fig8),
    ("Figure 9", experiments::fig9_10::run_fig9),
    ("Figure 10", experiments::fig9_10::run_fig10),
    ("Figure 11", experiments::fig11::run),
    ("Figure 12", experiments::fig12::run),
    ("Figure 13", experiments::fig13_14::run_fig13),
    ("Figure 14", experiments::fig13_14::run_fig14),
    ("Figure 15", experiments::fig15::run),
    ("Figure 16", experiments::fig16_17::run_fig16),
    ("Figure 17", experiments::fig16_17::run_fig17),
    ("Figure 18", experiments::fig18::run),
    ("Figure 19", experiments::fig19::run),
    ("Figure 20", experiments::fig20::run),
    (
        "Ablation: matching order (§2.2)",
        experiments::ablation::run_order,
    ),
    (
        "Ablation: intersection (§4.1)",
        experiments::ablation::run_intersection,
    ),
    (
        "Adaptive execution: planner vs fixed/worst order",
        experiments::adaptive::run,
    ),
    (
        "Future work: physical decomposition (§8)",
        experiments::physical::run,
    ),
    (
        "Fault injection: exactly-once recovery",
        experiments::faults::run,
    ),
    (
        "Multi-query throughput: filter/single-flight/batching/pruning",
        experiments::multiquery::run,
    ),
    (
        "Connection scaling: event-driven server core",
        experiments::service::run,
    ),
    (
        "Sharded serving: cross-process fault recovery",
        experiments::shard::run,
    ),
    (
        "Streaming maintenance: incremental vs rebuild",
        experiments::stream::run,
    ),
    (
        "Trace capture + tracing-overhead gate",
        experiments::trace::run,
    ),
];
