//! `repro multiquery` — mixed-workload throughput sweep for the multi-query
//! optimization layer (PR 6).
//!
//! Runs the same closed-loop workload — 4 concurrent clients, 100 MATCH
//! requests over ~10 query templates, some of them provably unsatisfiable —
//! against two in-process servers:
//!
//! * **optimized**: the default [`ServeConfig`] — label-pair admission
//!   filter, single-flight index builds, shared-prefix batching, and
//!   redundant-extension pruning all on;
//! * **unoptimized**: the same server with all four switches off.
//!
//! The sweep **asserts** that every template's embedding count is
//! bit-identical between the two configurations and against a per-template
//! `MATCH ... RAW` differential pass, then reports the throughput ratio
//! (target: >= 1.3x) and writes `bench_results/multiquery.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ceci_graph::extract::extract_query;
use ceci_graph::{io, lid, vid, Graph, LabelSet, VertexId};
use ceci_service::{start_with_state, Client, ServeConfig, ServerState};

use crate::json::JsonValue;
use crate::table::Table;
use crate::Scale;

/// Throughput ratio the optimization layer is expected to clear on the
/// mixed workload. Recorded in the artifact; a shortfall prints a warning
/// rather than failing the run (wall-clock ratios are host-dependent),
/// while count identity is always asserted.
const TARGET_SPEEDUP: f64 = 1.3;

/// Closed-loop clients issuing the workload.
const CLIENTS: usize = 4;
/// Requests per client (total workload = `CLIENTS * REQUESTS_PER_CLIENT`).
const REQUESTS_PER_CLIENT: usize = 25;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic data graph: `n` vertices labeled uniformly from {0,1,2}
/// plus 4 *isolated* vertices labeled 3. Label 3 therefore occurs in the
/// graph but never across an edge, so any query joining label 3 to anything
/// is rejected by the pair test (not the cheaper label-occurrence test),
/// and label 4+ queries are rejected by label occurrence alone.
fn data_graph(n: u32, m: usize, seed: u64) -> Graph {
    let mut s = seed | 1;
    let mut labels: Vec<LabelSet> = (0..n)
        .map(|_| LabelSet::single(lid((xorshift(&mut s) % 3) as u32)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let a = (xorshift(&mut s) % n as u64) as u32;
        let b = (xorshift(&mut s) % n as u64) as u32;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push((vid(key.0), vid(key.1)));
        }
    }
    for _ in 0..4 {
        labels.push(LabelSet::single(lid(3)));
    }
    Graph::new(labels, &edges, false)
}

struct Template {
    name: String,
    pattern: Graph,
    /// The admission filter should reject this template (and therefore the
    /// true count must be 0).
    impossible: bool,
}

/// ~10 templates: 6 satisfiable patterns extracted from the data graph plus
/// 4 provably-impossible ones (absent label / absent label pair).
fn templates(graph: &Graph, scale: Scale) -> Vec<Template> {
    let sizes: &[(usize, u64)] = match scale {
        Scale::Quick => &[(3, 7), (4, 11), (4, 19), (5, 23), (3, 31), (4, 43)],
        Scale::Full => &[(4, 7), (5, 11), (5, 19), (6, 23), (4, 31), (5, 43)],
    };
    let mut out: Vec<Template> = sizes
        .iter()
        .map(|&(size, seed)| Template {
            name: format!("sat_s{size}_r{seed}"),
            pattern: extract_query(graph, size, seed, 50)
                .expect("extractable query template")
                .pattern,
            impossible: false,
        })
        .collect();
    let tri = |l: [u32; 3]| {
        Graph::new(
            l.iter().map(|&x| LabelSet::single(lid(x))).collect(),
            &[(vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(0))],
            false,
        )
    };
    out.push(Template {
        name: "absent_label_edge".into(),
        pattern: Graph::new(
            vec![LabelSet::single(lid(9)), LabelSet::single(lid(9))],
            &[(vid(0), vid(1))],
            false,
        ),
        impossible: true,
    });
    out.push(Template {
        name: "absent_label_tri".into(),
        pattern: tri([9, 0, 1]),
        impossible: true,
    });
    out.push(Template {
        name: "absent_pair_edge".into(),
        pattern: Graph::new(
            vec![LabelSet::single(lid(0)), LabelSet::single(lid(3))],
            &[(vid(0), vid(1))],
            false,
        ),
        impossible: true,
    });
    out.push(Template {
        name: "absent_pair_path".into(),
        pattern: Graph::new(
            vec![
                LabelSet::single(lid(1)),
                LabelSet::single(lid(3)),
                LabelSet::single(lid(2)),
            ],
            &[(vid(0), vid(1)), (vid(1), vid(2))],
            false,
        ),
        impossible: true,
    });
    out
}

/// Metrics snapshot taken after one workload rep.
#[derive(Clone, Copy, Default)]
struct MetricsSnap {
    builds: u64,
    cache_hits: u64,
    cache_misses: u64,
    filter_rejected: u64,
    singleflight_waits: u64,
    frontier_builds: u64,
    frontier_hits: u64,
}

struct RunOutcome {
    elapsed: Duration,
    /// Per-template embedding count, validated consistent across clients.
    counts: Vec<u64>,
    snap: MetricsSnap,
}

/// Runs the closed-loop workload once against a fresh server with `config`:
/// `CLIENTS` threads, each issuing `REQUESTS_PER_CLIENT` MATCHes cycling
/// through the template list in the same order (so identical queries
/// collide in flight — the single-flight and batching cases).
fn run_workload(config: ServeConfig, graph_path: &str, query_paths: &[String]) -> RunOutcome {
    let state = Arc::new(ServerState::new(config));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");
    let addr = handle.addr();
    let mut ctl = Client::connect(addr).expect("control connection");
    let resp = ctl.request(&format!("LOAD g {graph_path}")).expect("LOAD");
    assert!(resp.is_ok(), "LOAD failed: {}", resp.terminal);

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let paths = query_paths.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connection");
                barrier.wait();
                let mut counts: Vec<(usize, u64)> = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    let t = i % paths.len();
                    let resp = client
                        .request(&format!("MATCH g {}", paths[t]))
                        .expect("MATCH");
                    assert!(resp.is_ok(), "MATCH failed: {}", resp.terminal);
                    counts.push((t, resp.field_u64("count").expect("count field")));
                }
                counts
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut counts: Vec<Option<u64>> = vec![None; query_paths.len()];
    for t in threads {
        for (idx, count) in t.join().expect("client thread") {
            match counts[idx] {
                None => counts[idx] = Some(count),
                Some(prev) => assert_eq!(
                    prev, count,
                    "template {idx}: divergent counts within one server"
                ),
            }
        }
    }
    let elapsed = t0.elapsed();
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let snap = MetricsSnap {
        builds: state.metrics.build_latency.count(),
        cache_hits: g(&state.metrics.cache_hits),
        cache_misses: g(&state.metrics.cache_misses),
        filter_rejected: g(&state.metrics.filter_rejected),
        singleflight_waits: g(&state.metrics.singleflight_waits),
        frontier_builds: g(&state.metrics.batch_frontier_builds),
        frontier_hits: g(&state.metrics.batch_frontier_hits),
    };
    handle.shutdown();
    RunOutcome {
        elapsed,
        counts: counts
            .into_iter()
            .map(|c| c.expect("every template covered by the workload"))
            .collect(),
        snap,
    }
}

/// Optimized-vs-RAW differential on one server: both forms of every
/// template must report the same count, rejected templates must short-
/// circuit with `filter=REJECTED`, and the count must be zero exactly for
/// the impossible templates.
fn raw_differential(graph_path: &str, query_paths: &[String], templates: &[Template]) -> Vec<u64> {
    let state = Arc::new(ServerState::new(ServeConfig::default()));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let resp = client
        .request(&format!("LOAD g {graph_path}"))
        .expect("LOAD");
    assert!(resp.is_ok(), "{}", resp.terminal);
    let mut counts = Vec::with_capacity(templates.len());
    for (path, template) in query_paths.iter().zip(templates) {
        let optimized = client.request(&format!("MATCH g {path}")).expect("MATCH");
        let raw = client
            .request(&format!("MATCH g {path} RAW"))
            .expect("MATCH RAW");
        assert!(optimized.is_ok() && raw.is_ok(), "{}", template.name);
        let count = optimized.field_u64("count").expect("count");
        assert_eq!(
            Some(count),
            raw.field_u64("count"),
            "{}: optimized vs RAW disagree",
            template.name
        );
        if template.impossible {
            assert_eq!(
                count, 0,
                "{}: impossible template has matches",
                template.name
            );
            assert_eq!(
                optimized.field("filter"),
                Some("REJECTED"),
                "{}: filter let an impossible template through",
                template.name
            );
        } else {
            assert_eq!(optimized.field("filter"), None, "{}", template.name);
        }
        counts.push(count);
    }
    handle.shutdown();
    counts
}

fn optimized_config() -> ServeConfig {
    ServeConfig {
        pool_workers: CLIENTS,
        ..ServeConfig::default()
    }
}

fn unoptimized_config() -> ServeConfig {
    ServeConfig {
        pool_workers: CLIENTS,
        admission_filter: false,
        single_flight: false,
        batching: false,
        prune_redundant: false,
        ..ServeConfig::default()
    }
}

/// Runs the sweep and writes `bench_results/multiquery.json`.
pub fn run(scale: Scale) {
    let (n, m) = match scale {
        Scale::Quick => (2_000u32, 10_000usize),
        Scale::Full => (8_000u32, 40_000usize),
    };
    let reps = match scale {
        Scale::Quick => 3,
        Scale::Full => 5,
    };
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    println!(
        "Multi-query throughput: {total_requests} MATCHes, {CLIENTS} closed-loop clients, \
         data graph n={n} m={m}, best of {reps} reps per config\n"
    );

    let graph = data_graph(n, m, 0x5eed);
    let templates = templates(&graph, scale);

    // Stage the graph and every template on disk for the LOAD/MATCH verbs.
    let dir = std::env::temp_dir().join(format!("ceci-multiquery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let write = |name: &str, g: &Graph| -> String {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create graph file");
        io::write_labeled(g, &mut f).expect("write graph file");
        path.display().to_string()
    };
    let graph_path = write("data.graph", &graph);
    let query_paths: Vec<String> = templates
        .iter()
        .enumerate()
        .map(|(i, t)| write(&format!("q{i}.graph"), &t.pattern))
        .collect();

    // Differential pass first: optimized vs RAW, filter verdicts, zero
    // counts on impossible templates.
    let expected_counts = raw_differential(&graph_path, &query_paths, &templates);

    // Interleaved reps, best-of per config.
    let mut best_off: Option<RunOutcome> = None;
    let mut best_on: Option<RunOutcome> = None;
    for _ in 0..reps {
        let off = run_workload(unoptimized_config(), &graph_path, &query_paths);
        let on = run_workload(optimized_config(), &graph_path, &query_paths);
        assert_eq!(
            off.counts, expected_counts,
            "unoptimized server diverges from the differential pass"
        );
        assert_eq!(
            on.counts, expected_counts,
            "optimized server diverges from the differential pass"
        );
        let keep_min = |slot: &mut Option<RunOutcome>, candidate: RunOutcome| {
            if slot
                .as_ref()
                .map_or(true, |b| candidate.elapsed < b.elapsed)
            {
                *slot = Some(candidate);
            }
        };
        keep_min(&mut best_off, off);
        keep_min(&mut best_on, on);
    }
    let off = best_off.expect("at least one rep");
    let on = best_on.expect("at least one rep");

    let mut t = Table::new(vec!["template", "vertices", "edges", "count", "class"]);
    let mut template_rows = Vec::new();
    for (template, &count) in templates.iter().zip(&expected_counts) {
        let class = if template.impossible {
            "impossible"
        } else {
            "satisfiable"
        };
        t.row(vec![
            template.name.clone(),
            template.pattern.num_vertices().to_string(),
            template.pattern.num_edges().to_string(),
            count.to_string(),
            class.to_string(),
        ]);
        template_rows.push(
            JsonValue::object()
                .field("name", template.name.as_str())
                .field("vertices", template.pattern.num_vertices() as u64)
                .field("edges", template.pattern.num_edges() as u64)
                .field("count", count)
                .field("impossible", template.impossible),
        );
    }
    t.print();

    let qps = |o: &RunOutcome| total_requests as f64 / o.elapsed.as_secs_f64().max(1e-12);
    let speedup = qps(&on) / qps(&off).max(1e-12);
    println!("\nClosed-loop workload, best rep per config:\n");
    let mut t = Table::new(vec![
        "config", "elapsed", "qps", "builds", "rejects", "sf waits", "frontier",
    ]);
    let config_row = |name: &str, o: &RunOutcome| {
        vec![
            name.to_string(),
            format!("{:.2} ms", o.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", qps(o)),
            o.snap.builds.to_string(),
            o.snap.filter_rejected.to_string(),
            o.snap.singleflight_waits.to_string(),
            format!("{}+{}", o.snap.frontier_builds, o.snap.frontier_hits),
        ]
    };
    t.row(config_row("unoptimized", &off));
    t.row(config_row("optimized", &on));
    t.print();
    println!(
        "\nthroughput ratio optimized/unoptimized: {speedup:.2}x (target {TARGET_SPEEDUP}x), \
         counts bit-identical across all {} templates",
        templates.len()
    );
    if speedup < TARGET_SPEEDUP {
        println!("warning: ratio below target on this host/run");
    }

    let snap_json = |o: &RunOutcome| {
        JsonValue::object()
            .field("elapsed_ns", o.elapsed.as_nanos() as u64)
            .field("throughput_qps", qps(o))
            .field("builds", o.snap.builds)
            .field("cache_hits", o.snap.cache_hits)
            .field("cache_misses", o.snap.cache_misses)
            .field("filter_rejected", o.snap.filter_rejected)
            .field("singleflight_waits", o.snap.singleflight_waits)
            .field("batch_frontier_builds", o.snap.frontier_builds)
            .field("batch_frontier_hits", o.snap.frontier_hits)
    };
    let json = JsonValue::object()
        .field(
            "workload",
            JsonValue::object()
                .field("clients", CLIENTS as u64)
                .field("requests", total_requests)
                .field("data_vertices", graph.num_vertices() as u64)
                .field("data_edges", graph.num_edges() as u64)
                .field("reps", reps as u64)
                .field("templates", JsonValue::Array(template_rows)),
        )
        .field("unoptimized", snap_json(&off))
        .field("optimized", snap_json(&on))
        .field("speedup", speedup)
        .field("target_speedup", TARGET_SPEEDUP)
        .field("counts_bit_identical", true)
        .to_pretty();

    let out_dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    } else {
        let path = out_dir.join("multiquery.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impossible_templates_have_zero_embeddings() {
        let graph = data_graph(300, 900, 0x5eed);
        for t in templates(&graph, Scale::Quick) {
            if !t.impossible {
                continue;
            }
            let query = ceci_query::QueryGraph::from_graph(&t.pattern).unwrap();
            let plan = ceci_query::QueryPlan::new(query, &graph);
            let ceci = ceci_core::Ceci::build(&graph, &plan);
            assert_eq!(
                ceci_core::count_embeddings(&graph, &plan, &ceci),
                0,
                "{}",
                t.name
            );
        }
    }
}
