//! Figure 6 — the query graphs QG1–QG5 (all vertices share label 0).

use ceci_query::PaperQuery;

use crate::table::Table;

/// Prints the query catalog.
pub fn run() {
    println!("Figure 6: query graphs (reconstructed; all nodes share label 0)\n");
    let mut t = Table::new(vec!["Query", "Shape", "|Vq|", "|Eq|", "Edges"]);
    for q in PaperQuery::ALL {
        let shape = match q {
            PaperQuery::Qg1 => "triangle",
            PaperQuery::Qg2 => "square (4-cycle)",
            PaperQuery::Qg3 => "chordal square (diamond)",
            PaperQuery::Qg4 => "4-clique",
            PaperQuery::Qg5 => "house",
        };
        let built = q.build();
        let edges: Vec<String> = built
            .edges()
            .iter()
            .map(|(a, b)| format!("({a},{b})"))
            .collect();
        t.row(vec![
            q.name().to_string(),
            shape.to_string(),
            built.num_vertices().to_string(),
            built.num_edges().to_string(),
            edges.join(" "),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints() {
        super::run();
    }
}
