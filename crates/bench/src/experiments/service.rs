//! `repro service` — connection-scaling sweep for the event-driven server
//! core (PR 10).
//!
//! Drives the same closed-loop `MATCH` workload at a roughly constant
//! offered rate while the *connection count* scales from a handful to
//! thousands: each client loop sleeps `think_ms = clients × 1000 /
//! TARGET_RPS` between requests (Little's law), so adding connections adds
//! mostly-idle sockets, not load. That is exactly the regime the epoll
//! readiness loop exists for — a thread-per-connection server burns a stack
//! and a scheduler slot per idle socket; the event loop pays one `HashMap`
//! entry.
//!
//! The sweep **asserts** zero dropped responses (no `ERR`, no transport
//! errors, no `BUSY`) at every point and that embedding counts stay
//! bit-identical to a direct enumeration, then reports per-point p50/p99
//! latency and the p99 inflation of the largest point over the smallest
//! (target: ≤ [`TARGET_P99_RATIO`]×; a miss warns rather than fails — tail
//! ratios on a loaded host are not deterministic, response integrity is).
//! Writes `bench_results/service.json` with a `connections` axis.

use std::sync::Arc;

use ceci_core::{count_embeddings, Ceci};
use ceci_graph::extract::extract_query;
use ceci_graph::generators::{erdos_renyi, inject_random_labels};
use ceci_graph::io;
use ceci_query::{QueryGraph, QueryPlan};
use ceci_service::{run_load, start_with_state, Client, LoadConfig, ServeConfig, ServerState};

use crate::json::JsonValue;
use crate::table::Table;
use crate::Scale;

/// Offered load held constant across the connection axis.
const TARGET_RPS: u64 = 500;

/// p99 inflation budget for the largest point vs the smallest.
const TARGET_P99_RATIO: f64 = 2.0;

struct Point {
    connections: usize,
    requests_per_client: usize,
    think_ms: u64,
    ok: u64,
    wall_ms: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Runs the connection-scaling sweep and writes `bench_results/service.json`.
pub fn run(scale: Scale) {
    let (graph_n, axis, requests): (usize, &[usize], usize) = match scale {
        Scale::Quick => (1000, &[8, 512, 2048], 3),
        Scale::Full => (2000, &[8, 512, 2048, 4096], 5),
    };

    // Deterministic workload: a labeled ER graph and a query carved out of
    // it (at least one embedding guaranteed), served from the index cache
    // after the first request.
    let graph = inject_random_labels(&erdos_renyi(graph_n, graph_n * 4, 0xCEC1), 4, 0xCEC1);
    let extracted =
        extract_query(&graph, 4, 7, 50).expect("extractable query on the synthetic graph");
    let expected = {
        let query = QueryGraph::from_graph(&extracted.pattern).expect("valid query");
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        count_embeddings(&graph, &plan, &ceci)
    };
    let dir = std::env::temp_dir().join(format!("ceci-bench-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let query_path = dir.join("query.graph");
    {
        let mut f = std::fs::File::create(&query_path).expect("query file");
        io::write_labeled(&extracted.pattern, &mut f).expect("serialize query");
    }

    println!(
        "connection-scaling sweep: {} vertices, {} edges, query size 4, \
         offered ~{TARGET_RPS} req/s at every point",
        graph.num_vertices(),
        graph.num_edges()
    );

    let max_conns = axis.iter().copied().max().unwrap_or(2048);
    let mut points: Vec<Point> = Vec::new();
    for &connections in axis {
        // Fresh server per point so per-point metrics are isolated. The
        // event loop (the default) serves every point.
        let state = Arc::new(ServerState::new(ServeConfig {
            pool_workers: 4,
            queue_cap: 256,
            max_conns: max_conns + 64,
            ..ServeConfig::default()
        }));
        state.registry.insert("bench", graph.clone());
        let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");

        // Warm the index cache so every measured request is the steady
        // state (cache-hit enumeration), not a one-off build.
        let mut ctl = Client::connect(handle.addr()).expect("control connection");
        let warm = ctl
            .request(&format!("MATCH bench {}", query_path.display()))
            .expect("warmup MATCH");
        assert!(warm.is_ok(), "warmup failed: {}", warm.terminal);
        assert_eq!(
            warm.field_u64("count"),
            Some(expected),
            "server count diverged from direct enumeration"
        );

        let think_ms = connections as u64 * 1000 / TARGET_RPS;
        let report = run_load(
            handle.addr(),
            &LoadConfig {
                clients: connections,
                requests_per_client: requests,
                request: format!("MATCH bench {}", query_path.display()),
                think_ms,
                ..LoadConfig::default()
            },
        );

        // Response integrity is asserted, not reported: every request at
        // every connection count gets exactly one OK answer.
        let total = (connections * requests) as u64;
        assert_eq!(
            report.ok, total,
            "dropped responses at {connections}: {report:?}"
        );
        assert_eq!(report.err, 0, "{connections} connections: {report:?}");
        assert_eq!(report.io_errors, 0, "{connections} connections: {report:?}");
        assert_eq!(report.busy, 0, "{connections} connections: {report:?}");

        points.push(Point {
            connections,
            requests_per_client: requests,
            think_ms,
            ok: report.ok,
            wall_ms: report.wall.as_millis() as u64,
            throughput_rps: report.throughput_rps(),
            p50_us: report.latency.quantile_us(0.50),
            p99_us: report.latency.quantile_us(0.99),
        });
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();

    let mut table = Table::new(vec![
        "connections",
        "think_ms",
        "ok",
        "wall_ms",
        "rps",
        "p50_us",
        "p99_us",
    ]);
    for p in &points {
        table.row(vec![
            p.connections.to_string(),
            p.think_ms.to_string(),
            p.ok.to_string(),
            p.wall_ms.to_string(),
            format!("{:.1}", p.throughput_rps),
            p.p50_us.to_string(),
            p.p99_us.to_string(),
        ]);
    }
    table.print();

    let base = points.first().expect("at least one point");
    let peak = points.last().expect("at least one point");
    let p99_ratio = peak.p99_us as f64 / base.p99_us.max(1) as f64;
    println!(
        "\np99 inflation {} -> {} connections: {:.2}x (target <= {TARGET_P99_RATIO}x)",
        base.connections, peak.connections, p99_ratio
    );
    if p99_ratio > TARGET_P99_RATIO {
        println!(
            "WARNING: p99 ratio {p99_ratio:.2}x exceeds the {TARGET_P99_RATIO}x target \
             (tail latency is host-dependent; zero-drop integrity was asserted)"
        );
    }

    let point_rows: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            JsonValue::object()
                .field("connections", p.connections as u64)
                .field("requests_per_client", p.requests_per_client as u64)
                .field("think_ms", p.think_ms)
                .field("ok", p.ok)
                .field("err", 0u64)
                .field("io_errors", 0u64)
                .field("busy", 0u64)
                .field("wall_ms", p.wall_ms)
                .field("throughput_rps", p.throughput_rps)
                .field("latency_p50_us", p.p50_us)
                .field("latency_p99_us", p.p99_us)
        })
        .collect();
    let json = JsonValue::object()
        .field("benchmark", "service_connection_scaling")
        .field("event_loop", true)
        .field("target_offered_rps", TARGET_RPS)
        .field("graph_n", graph.num_vertices() as u64)
        .field("query_size", 4u64)
        .field("expected_count", expected)
        .field("connections", JsonValue::Array(point_rows))
        .field("p99_ratio_peak_vs_base", p99_ratio)
        .field("target_p99_ratio", TARGET_P99_RATIO)
        .field("p99_within_target", p99_ratio <= TARGET_P99_RATIO)
        .field("zero_dropped_responses", true)
        .to_pretty();

    let out_dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    } else {
        let path = out_dir.join("service.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}
