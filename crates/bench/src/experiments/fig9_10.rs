//! Figures 9 & 10 — larger labeled queries, first 1,024 embeddings.
//!
//! Query graphs of size 3–50 are DFS-extracted from the data graph (§6.2),
//! so each has at least one embedding. Figure 9 compares CECI with the
//! CFLMatch-style engine on RD and HU; Figure 10 compares with the
//! TurboIso-style engine on HU. All engines single-threaded, first 1,024
//! embeddings, averaging over several queries per size.

use std::time::Duration;

use ceci_baselines::{
    enumerate_boosted_with, enumerate_cfl, enumerate_turboiso, BoostOptions, CflOptions,
    TurboOptions, VertexEquivalence,
};
use ceci_graph::{extract_query, Graph};
use ceci_query::{QueryGraph, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::harness::{geometric_mean, persist_records, run_ceci, RunRecord};
use crate::table::{fmt_duration, fmt_speedup, Table};

/// First-k limit used by the paper.
pub const LIMIT: u64 = 1024;

/// Query sizes swept (the paper sweeps 3–50 in steps).
pub const SIZES: [usize; 6] = [4, 8, 12, 16, 24, 32];

/// Queries per size (the paper runs 100; scaled down for quick runs).
fn queries_per_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    }
}

fn extract_queries(graph: &Graph, size: usize, count: usize) -> Vec<QueryGraph> {
    let mut out = Vec::new();
    let mut seed = size as u64 * 1000;
    while out.len() < count && seed < size as u64 * 1000 + 10_000 {
        if let Some(q) = extract_query(graph, size, seed, 5) {
            if let Ok(qg) = QueryGraph::from_graph(&q.pattern) {
                out.push(qg);
            }
        }
        seed += 1;
    }
    out
}

/// Runs Figure 9: CECI vs CFL-lite on RD and HU.
pub fn run_fig9(scale: Scale) {
    println!(
        "Figure 9: first {LIMIT} embeddings of labeled queries (size sweep) — CECI vs \
         CFLMatch-lite, single-threaded, scale {scale:?}\n"
    );
    let mut records = Vec::new();
    for d in [Dataset::Rd, Dataset::Hu] {
        let graph = d.build(scale);
        let mut t = Table::new(vec![
            "query size",
            "queries",
            "CECI avg",
            "CFL-lite avg",
            "speedup",
        ]);
        let mut speedups = Vec::new();
        for size in SIZES {
            let queries = extract_queries(&graph, size, queries_per_size(scale));
            if queries.is_empty() {
                continue;
            }
            let mut ceci_total = Duration::ZERO;
            let mut cfl_total = Duration::ZERO;
            for q in &queries {
                let (ct, cc, _) = run_ceci(&graph, q.clone(), 1, Some(LIMIT));
                ceci_total += ct;
                records.push(RunRecord::new(
                    "ceci",
                    d.abbrev(),
                    &format!("q{size}"),
                    1,
                    ct,
                    &cc,
                ));
                let (res, ft) = crate::harness::time(|| {
                    let plan = QueryPlan::new(q.clone(), &graph);
                    enumerate_cfl(
                        &graph,
                        &plan,
                        &CflOptions {
                            limit: Some(LIMIT),
                            collect: false,
                        },
                    )
                });
                cfl_total += ft;
                records.push(RunRecord::new(
                    "cfl-lite",
                    d.abbrev(),
                    &format!("q{size}"),
                    1,
                    ft,
                    &res.counters,
                ));
            }
            let n = queries.len() as u32;
            let (ceci_avg, cfl_avg) = (ceci_total / n, cfl_total / n);
            let s = cfl_avg.as_secs_f64() / ceci_avg.as_secs_f64();
            speedups.push(s);
            t.row(vec![
                size.to_string(),
                queries.len().to_string(),
                fmt_duration(ceci_avg),
                fmt_duration(cfl_avg),
                fmt_speedup(s),
            ]);
        }
        println!("{} ({}):", d.name(), d.abbrev());
        t.print();
        println!(
            "geomean speedup on {}: {}\n",
            d.abbrev(),
            fmt_speedup(geometric_mean(&speedups))
        );
    }
    println!("(paper: CECI beats CFLMatch by 3.5x on RD and 1.9x on HU on average)");
    persist_records("fig9", &records);
}

/// Runs Figure 10: CECI vs TurboIso-lite on HU.
pub fn run_fig10(scale: Scale) {
    println!(
        "Figure 10: first {LIMIT} embeddings of labeled queries on HU — CECI vs \
         TurboIso-lite vs Boosted-TurboIso-lite, single-threaded, scale {scale:?}\n"
    );
    let graph = Dataset::Hu.build(scale);
    // BoostIso adapts the data graph offline; compute the twin classes once
    // per dataset and report the one-time cost separately.
    let (eq, eq_time) = crate::harness::time(|| VertexEquivalence::compute(&graph));
    println!(
        "(one-time BoostIso graph adaptation: {} — {} nontrivial twin classes covering {} vertices)\n",
        crate::table::fmt_duration(eq_time),
        eq.num_nontrivial_classes(),
        eq.compressed_vertices()
    );
    let mut records = Vec::new();
    let mut t = Table::new(vec![
        "query size",
        "queries",
        "CECI avg",
        "TurboIso avg",
        "Boosted avg",
        "vs Turbo",
        "vs Boosted",
    ]);
    let mut speedups = Vec::new();
    let mut boosted_speedups = Vec::new();
    for size in SIZES {
        let queries = extract_queries(&graph, size, queries_per_size(scale));
        if queries.is_empty() {
            continue;
        }
        let mut ceci_total = Duration::ZERO;
        let mut turbo_total = Duration::ZERO;
        let mut boost_total = Duration::ZERO;
        for q in &queries {
            let (ct, cc, _) = run_ceci(&graph, q.clone(), 1, Some(LIMIT));
            ceci_total += ct;
            records.push(RunRecord::new(
                "ceci",
                "HU",
                &format!("q{size}"),
                1,
                ct,
                &cc,
            ));
            let (res, tt) = crate::harness::time(|| {
                let plan = QueryPlan::new(q.clone(), &graph);
                enumerate_turboiso(
                    &graph,
                    &plan,
                    &TurboOptions {
                        limit: Some(LIMIT),
                        collect: false,
                    },
                )
            });
            turbo_total += tt;
            records.push(RunRecord::new(
                "turboiso-lite",
                "HU",
                &format!("q{size}"),
                1,
                tt,
                &res.counters,
            ));
            let (bres, bt) = crate::harness::time(|| {
                let plan = QueryPlan::new(q.clone(), &graph);
                enumerate_boosted_with(
                    &graph,
                    &plan,
                    &eq,
                    &BoostOptions {
                        limit: Some(LIMIT),
                        collect: false,
                    },
                )
            });
            boost_total += bt;
            records.push(RunRecord::new(
                "boosted-turboiso-lite",
                "HU",
                &format!("q{size}"),
                1,
                bt,
                &bres.counters,
            ));
        }
        let n = queries.len() as u32;
        let (ceci_avg, turbo_avg, boost_avg) = (ceci_total / n, turbo_total / n, boost_total / n);
        let s = turbo_avg.as_secs_f64() / ceci_avg.as_secs_f64();
        let sb = boost_avg.as_secs_f64() / ceci_avg.as_secs_f64();
        speedups.push(s);
        boosted_speedups.push(sb);
        t.row(vec![
            size.to_string(),
            queries.len().to_string(),
            fmt_duration(ceci_avg),
            fmt_duration(turbo_avg),
            fmt_duration(boost_avg),
            fmt_speedup(s),
            fmt_speedup(sb),
        ]);
    }
    t.print();
    println!(
        "geomean speedup: {} over TurboIso-lite, {} over Boosted-TurboIso-lite \
         (paper: 2.71x over TurboIso, 2.52x over Boosted-TurboIso; note the dense-random \
         HU stand-in has little twin structure for BoostIso to exploit, unlike the real \
         Human PPI graph)",
        fmt_speedup(geometric_mean(&speedups)),
        fmt_speedup(geometric_mean(&boosted_speedups))
    );
    persist_records("fig10", &records);
    twin_rich_supplement(scale);
}

/// Supplemental series: on a twin-rich graph (the pendant-heavy WT stand-in)
/// with low-degree query nodes, BoostIso's compression pays off — the
/// regime the BoostIso paper targets.
fn twin_rich_supplement(scale: Scale) {
    const SUP_LIMIT: u64 = 100_000;
    println!(
        "\nFigure 10 supplement: twin-rich graph (WT stand-in), first {SUP_LIMIT} \
         embeddings — TurboIso-lite vs Boosted-TurboIso-lite\n"
    );
    let graph = Dataset::Wt.build(scale);
    let (eq, eq_time) = crate::harness::time(|| VertexEquivalence::compute(&graph));
    println!(
        "(adaptation: {} — {} twin classes covering {} vertices)\n",
        crate::table::fmt_duration(eq_time),
        eq.num_nontrivial_classes(),
        eq.compressed_vertices()
    );
    let mut t = Table::new(vec![
        "query",
        "embeddings",
        "TurboIso",
        "Boosted",
        "compressed embeddings",
        "Boosted speedup",
    ]);
    for (name, query) in [
        ("star3", ceci_query::catalog::star(3)),
        ("path4", ceci_query::catalog::path(4)),
    ] {
        let plan = QueryPlan::new(query, &graph);
        let (tres, tt) = crate::harness::time(|| {
            enumerate_turboiso(
                &graph,
                &plan,
                &TurboOptions {
                    limit: Some(SUP_LIMIT),
                    collect: false,
                },
            )
        });
        let (bres, bt) = crate::harness::time(|| {
            enumerate_boosted_with(
                &graph,
                &plan,
                &eq,
                &BoostOptions {
                    limit: Some(SUP_LIMIT),
                    collect: false,
                },
            )
        });
        assert_eq!(tres.total_embeddings, bres.total_embeddings, "{name}");
        t.row(vec![
            name.to_string(),
            tres.total_embeddings.to_string(),
            fmt_duration(tt),
            fmt_duration(bt),
            bres.compressed_embeddings.to_string(),
            fmt_speedup(tt.as_secs_f64() / bt.as_secs_f64()),
        ]);
    }
    t.print();
}
