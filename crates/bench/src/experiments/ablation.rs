//! Ablations backing two in-text claims:
//!
//! * §2.2 — edge-ranked / path-ranked matching orders give up to 34.5%
//!   speedup over naive BFS order, more on larger queries.
//! * §4.1 — intersection-based enumeration improves runtime by 13–170% over
//!   edge verification, more with more non-tree edges.

use std::time::{Duration, Instant};

use ceci_core::{enumerate_sequential, BuildOptions, Ceci, CountSink, EnumOptions, VerifyMode};
use ceci_graph::extract_query;
use ceci_query::{OrderStrategy, PaperQuery, PlanOptions, QueryGraph, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::harness::geometric_mean;
use crate::table::{fmt_duration, fmt_speedup, Table};

/// Runs the matching-order ablation (§2.2) on extracted labeled queries.
pub fn run_order(scale: Scale) {
    println!(
        "Ablation (§2.2): matching order — BFS vs edge-ranked vs path-ranked \
         (labeled queries on RD stand-in, all embeddings), scale {scale:?}\n"
    );
    let graph = Dataset::Rd.build(scale);
    let mut t = Table::new(vec![
        "query size",
        "BFS",
        "EdgeRank",
        "PathRank",
        "best gain",
    ]);
    let mut gains = Vec::new();
    for size in [6usize, 10, 16, 24] {
        let mut times = [Duration::ZERO; 3];
        let mut queries = 0;
        for seed in 0..4u64 {
            let Some(extracted) = extract_query(&graph, size, seed * 31 + size as u64, 10) else {
                continue;
            };
            let Ok(q) = QueryGraph::from_graph(&extracted.pattern) else {
                continue;
            };
            queries += 1;
            for (i, order) in [
                OrderStrategy::Bfs,
                OrderStrategy::EdgeRank,
                OrderStrategy::PathRank,
            ]
            .into_iter()
            .enumerate()
            {
                let start = Instant::now();
                let plan = QueryPlan::with_options(
                    q.clone(),
                    &graph,
                    &PlanOptions {
                        order,
                        ..Default::default()
                    },
                );
                let ceci = Ceci::build(&graph, &plan);
                let mut sink = CountSink::unbounded();
                enumerate_sequential(&graph, &plan, &ceci, EnumOptions::default(), &mut sink);
                times[i] += start.elapsed();
            }
        }
        if queries == 0 {
            continue;
        }
        let bfs = times[0].as_secs_f64();
        let best = times[1].min(times[2]).as_secs_f64();
        let gain = (bfs / best - 1.0) * 100.0;
        gains.push(bfs / best);
        t.row(vec![
            size.to_string(),
            fmt_duration(times[0] / queries),
            fmt_duration(times[1] / queries),
            fmt_duration(times[2] / queries),
            format!("{gain:.1}%"),
        ]);
    }
    t.print();
    println!("\n(paper: ranked orders give up to 34.5% over naive BFS, growing with query size)");
}

/// Runs the intersection-vs-edge-verification ablation (§4.1) on QG1–QG5.
pub fn run_intersection(scale: Scale) {
    println!(
        "Ablation (§4.1): intersection vs edge verification during enumeration \
         (same full CECI index, single thread), scale {scale:?}\n"
    );
    let mut improvements = Vec::new();
    for d in [Dataset::Wt, Dataset::Lj] {
        let graph = d.build(scale);
        let mut t = Table::new(vec![
            "Query",
            "NTEs",
            "intersection",
            "edge verify",
            "improvement",
        ]);
        for q in PaperQuery::ALL {
            let plan = QueryPlan::new(q.build(), &graph);
            let ntes = plan
                .query()
                .vertices()
                .map(|u| plan.backward_nte(u).len())
                .sum::<usize>();
            let ceci = Ceci::build_with(&graph, &plan, BuildOptions::default());
            let timing = |verify: VerifyMode| {
                let start = Instant::now();
                let mut sink = CountSink::unbounded();
                let counters = enumerate_sequential(
                    &graph,
                    &plan,
                    &ceci,
                    EnumOptions {
                        verify,
                        ..Default::default()
                    },
                    &mut sink,
                );
                (start.elapsed(), counters.embeddings)
            };
            let (ti, ni) = timing(VerifyMode::Intersection);
            let (tv, nv) = timing(VerifyMode::EdgeVerification);
            assert_eq!(ni, nv, "{} on {}", q.name(), d.abbrev());
            let improvement = (tv.as_secs_f64() / ti.as_secs_f64() - 1.0) * 100.0;
            improvements.push(tv.as_secs_f64() / ti.as_secs_f64());
            t.row(vec![
                q.name().to_string(),
                ntes.to_string(),
                fmt_duration(ti),
                fmt_duration(tv),
                format!("{improvement:.0}%"),
            ]);
        }
        println!("{}:", d.abbrev());
        t.print();
        println!();
    }
    println!(
        "geomean ratio: {} (paper: 13-170% improvement, larger for more NTEs)",
        fmt_speedup(geometric_mean(&improvements))
    );
}
