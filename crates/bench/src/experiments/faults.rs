//! Fault-injection sweep: exactly-once recovery under crashes, stragglers,
//! and steal-message loss.
//!
//! The distributed simulator replays a seeded [`FaultPlan`] against the
//! fault-free baseline and checks the headline robustness claim on every
//! scenario: **the committed embedding count is bit-identical to the
//! fault-free run** — crashes trigger pivot re-scatter under bumped
//! ownership epochs, stragglers trigger speculative re-execution, and the
//! first-commit-wins result board deduplicates everything else.
//!
//! What varies is *cost*, not *answers*: the table reports lost and
//! re-executed clusters, board-rejected (deduplicated) commits, lost steal
//! messages, and the makespan inflation each fault schedule causes.
//! Results land in `bench_results/faults.json`.

use std::time::Duration;

use ceci_distributed::{
    run_distributed, run_distributed_with_faults, workload_estimate, ClusterConfig,
    DistributedResult, FaultPlan, StorageMode,
};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::json::JsonValue;
use crate::table::Table;

/// One named fault schedule, built from the run's measured virtual extent.
struct Scenario {
    name: &'static str,
    plan: Option<FaultPlan>,
}

/// Mean per-machine virtual extent of the whole run under `plan`'s
/// exchange rate: Σ workload estimates × unit cost / machines. Crash
/// points are placed at fractions of this, so "crash at 25%" means the
/// same thing on every dataset and scale.
fn mean_virtual_extent(
    graph: &ceci_graph::Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    unit_cost: Duration,
) -> Duration {
    let total: f64 = plan
        .initial_candidates(plan.root())
        .iter()
        .map(|&v| workload_estimate(graph, v, config))
        .sum();
    let nanos = total * unit_cost.as_nanos() as f64 / config.machines.max(1) as f64;
    Duration::from_nanos(nanos.max(1.0) as u64)
}

fn scenarios(extent: Duration, unit_cost: Duration) -> Vec<Scenario> {
    let at = |f: f64| Duration::from_nanos((extent.as_nanos() as f64 * f) as u64);
    vec![
        Scenario {
            name: "fault-free",
            plan: None,
        },
        Scenario {
            name: "crash m1 @25%",
            plan: Some(
                FaultPlan::new(11)
                    .with_unit_cost(unit_cost)
                    .crash(1, at(0.25)),
            ),
        },
        Scenario {
            name: "crash m1 @50%",
            plan: Some(
                FaultPlan::new(12)
                    .with_unit_cost(unit_cost)
                    .crash(1, at(0.50)),
            ),
        },
        Scenario {
            name: "crash m1+m2",
            plan: Some(
                FaultPlan::new(13)
                    .with_unit_cost(unit_cost)
                    .crash(1, at(0.25))
                    .crash(2, at(0.60)),
            ),
        },
        Scenario {
            name: "straggler x4",
            plan: Some(
                FaultPlan::new(14)
                    .with_unit_cost(unit_cost)
                    .straggler(0, 4.0),
            ),
        },
        Scenario {
            name: "straggler x16",
            plan: Some(
                FaultPlan::new(15)
                    .with_unit_cost(unit_cost)
                    .straggler(0, 16.0),
            ),
        },
        Scenario {
            name: "steal loss 20%",
            plan: Some(
                FaultPlan::new(16)
                    .with_unit_cost(unit_cost)
                    .with_steal_loss(0.2),
            ),
        },
        Scenario {
            name: "kitchen sink",
            plan: Some(
                FaultPlan::new(17)
                    .with_unit_cost(unit_cost)
                    .crash(1, at(0.30))
                    .straggler(0, 8.0)
                    .with_steal_loss(0.2),
            ),
        },
    ]
}

fn run_one(
    graph: &ceci_graph::Graph,
    plan: &QueryPlan,
    config: &ClusterConfig,
    fault: Option<&FaultPlan>,
) -> DistributedResult {
    match fault {
        None => run_distributed(graph, plan, config),
        Some(f) => run_distributed_with_faults(graph, plan, config, Some(f)),
    }
}

/// Runs the sweep and writes `bench_results/faults.json`.
pub fn run(scale: Scale) {
    println!(
        "Fault injection: exactly-once recovery under crashes, stragglers, and steal \
         loss, scale {scale:?}\n"
    );
    let machines = 4;
    let unit_cost = Duration::from_micros(1);
    let mut rows = Vec::new();
    let mut scenarios_checked = 0u64;

    for d in [Dataset::Wt, Dataset::Lj] {
        let graph = d.build(scale);
        for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
            let plan = QueryPlan::new(q.build(), &graph);
            for storage in [StorageMode::Replicated, StorageMode::Shared] {
                let config = ClusterConfig {
                    machines,
                    storage,
                    jaccard_colocation: false,
                    ..Default::default()
                };
                let extent = mean_virtual_extent(&graph, &plan, &config, unit_cost);
                let baseline = run_one(&graph, &plan, &config, None);

                let mut t = Table::new(vec![
                    "scenario",
                    "embeddings",
                    "crashed",
                    "lost",
                    "re-exec",
                    "dedup",
                    "steals lost",
                    "inflation",
                ]);
                for s in scenarios(extent, unit_cost) {
                    let result = run_one(&graph, &plan, &config, s.plan.as_ref());
                    assert_eq!(
                        result.total_embeddings,
                        baseline.total_embeddings,
                        "{} / {} / {storage:?} / {}: fault run diverged from baseline",
                        d.abbrev(),
                        q.name(),
                        s.name
                    );
                    // Replay determinism: the same seeded plan must
                    // reproduce the same *answer*. (The recovery ledger —
                    // which clusters happened to be in flight when the
                    // virtual crash point was crossed — legitimately varies
                    // with thread scheduling; the exactly-once board is
                    // what keeps the count invariant regardless.)
                    if let Some(f) = &s.plan {
                        let replay = run_one(&graph, &plan, &config, Some(f));
                        assert_eq!(
                            replay.total_embeddings, result.total_embeddings,
                            "replay diverged"
                        );
                        assert_eq!(
                            replay.recovery.crashed_machines, result.recovery.crashed_machines,
                            "replay crash schedule diverged"
                        );
                    }
                    scenarios_checked += 1;
                    let r = &result.recovery;
                    let inflation = result.makespan_inflation();
                    t.row(vec![
                        s.name.to_string(),
                        result.total_embeddings.to_string(),
                        r.crashed_machines.to_string(),
                        r.lost_clusters.to_string(),
                        r.reexecuted_clusters.to_string(),
                        r.commits_rejected.to_string(),
                        r.steals_lost.to_string(),
                        format!("{inflation:.2}x"),
                    ]);
                    rows.push(
                        JsonValue::object()
                            .field("dataset", d.abbrev())
                            .field("query", q.name())
                            .field("storage", format!("{storage:?}").as_str())
                            .field("scenario", s.name)
                            .field("machines", machines as u64)
                            .field("embeddings", result.total_embeddings)
                            .field("matches_baseline", true)
                            .field("crashed_machines", r.crashed_machines as u64)
                            .field("lost_clusters", r.lost_clusters as u64)
                            .field("reexecuted_clusters", r.reexecuted_clusters as u64)
                            .field("commits_rejected", r.commits_rejected as u64)
                            .field("steals_lost", r.steals_lost as u64)
                            .field(
                                "recovery_comm_virtual_ms",
                                r.recovery_comm_virtual.as_secs_f64() * 1e3,
                            )
                            .field(
                                "straggle_virtual_ms",
                                r.straggle_virtual.as_secs_f64() * 1e3,
                            )
                            .field("makespan_ms", result.makespan.as_secs_f64() * 1e3)
                            .field("makespan_inflation", inflation),
                    );
                }
                println!("{} / {} / {storage:?}:", d.abbrev(), q.name());
                t.print();
                println!();
            }
        }
    }

    println!(
        "(all {scenarios_checked} fault scenarios committed counts bit-identical to their \
         fault-free baselines, and every seeded replay reproduced the same count — \
         failures change the cost columns, never the answer)"
    );

    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let json = JsonValue::object()
        .field("machines", machines as u64)
        .field("scenarios_checked", scenarios_checked)
        .field("all_counts_match_baseline", true)
        .field("runs", JsonValue::Array(rows))
        .to_pretty();
    let path = dir.join("faults.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
