//! Kernel ablation (§4.1 microscope): size-ratio sweep over the intersection
//! kernel suite plus an end-to-end enumeration comparison.
//!
//! The sweep intersects a fixed-size small list against haystacks 1×…1024×
//! larger and reports, per kernel, the exact comparison count and wall time;
//! the end-to-end section re-runs the QG1–QG5 enumeration with each kernel
//! pinned through [`EnumOptions`]. Everything is dumped to
//! `bench_results/kernels.json` so regressions are diffable.

use std::time::{Duration, Instant};

use ceci_core::intersect::{intersect_with, Kernel};
use ceci_core::{enumerate_sequential, Ceci, CountSink, EnumOptions};
use ceci_graph::VertexId;
use ceci_query::{PaperQuery, QueryPlan};

use crate::json::JsonValue;
use crate::table::Table;
use crate::{Dataset, Scale};

/// Haystack-to-needle size ratios of the sweep (1:1 … 1:1024).
const RATIOS: [usize; 6] = [1, 4, 16, 64, 256, 1024];
/// Needle size — comfortably above the SIMD block so every kernel exercises
/// its steady-state loop.
const SMALL_LEN: usize = 512;

/// Deterministic pseudo-random stream (splitmix64) — keeps the sweep
/// reproducible without pulling an RNG dependency into the bench crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sorted, deduplicated list of `len` ids drawn from `0..universe`.
fn random_sorted(len: usize, universe: u32, seed: u64) -> Vec<VertexId> {
    let mut state = seed;
    let mut out: Vec<VertexId> = (0..len * 2)
        .map(|_| VertexId((splitmix64(&mut state) % universe as u64) as u32))
        .collect();
    out.sort_unstable();
    out.dedup();
    out.truncate(len);
    out
}

fn time_kernel(
    kernel: Kernel,
    a: &[VertexId],
    b: &[VertexId],
    reps: u32,
) -> (Duration, u64, usize) {
    let mut out = Vec::new();
    let mut ops = 0u64;
    // Warm-up + correctness probe.
    intersect_with(kernel, a, b, &mut out, &mut ops);
    let hits = out.len();
    ops = 0;
    let start = Instant::now();
    for _ in 0..reps {
        intersect_with(kernel, a, b, &mut out, &mut ops);
        std::hint::black_box(out.len());
    }
    (start.elapsed() / reps, ops / reps as u64, hits)
}

/// Runs the full experiment (sweep + end-to-end) for every kernel.
pub fn run(scale: Scale) {
    run_with(scale, None);
}

/// [`run`] restricted to one kernel when `only` is set (the `--kernel` repro
/// flag); the scalar merge reference always runs so speedups stay defined.
pub fn run_with(scale: Scale, only: Option<Kernel>) {
    let kernels: Vec<Kernel> = Kernel::CONCRETE
        .into_iter()
        .chain([Kernel::Adaptive])
        .filter(|&k| only.is_none() || k == Kernel::Merge || Some(k) == only)
        .collect();
    let mut records: Vec<JsonValue> = Vec::new();

    // ------------------------------------------------------------------
    // Part 1: size-ratio sweep.
    // ------------------------------------------------------------------
    println!("Intersection kernel sweep — |small| = {SMALL_LEN}, ratios 1:1 … 1:1024\n");
    let mut t = Table::new(vec![
        "ratio".to_string(),
        "kernel".to_string(),
        "ops".to_string(),
        "time".to_string(),
        "vs merge".to_string(),
    ]);
    let reps = match scale {
        Scale::Quick => 200,
        Scale::Full => 2_000,
    };
    for ratio in RATIOS {
        let universe = (SMALL_LEN * ratio * 4) as u32;
        let small = random_sorted(SMALL_LEN, universe, 0xcec1 ^ ratio as u64);
        let large = random_sorted(SMALL_LEN * ratio, universe, 0x5eed ^ ratio as u64);
        let (merge_time, _, expected_hits) = time_kernel(Kernel::Merge, &small, &large, reps);
        for &kernel in &kernels {
            let (time, ops, hits) = time_kernel(kernel, &small, &large, reps);
            assert_eq!(
                hits,
                expected_hits,
                "{} diverges at 1:{ratio}",
                kernel.name()
            );
            let speedup = merge_time.as_secs_f64() / time.as_secs_f64().max(1e-12);
            t.row(vec![
                format!("1:{ratio}"),
                kernel.name().to_string(),
                ops.to_string(),
                format!("{:.2} µs", time.as_secs_f64() * 1e6),
                format!("{speedup:.2}×"),
            ]);
            records.push(
                JsonValue::object()
                    .field("section", "sweep")
                    .field("ratio", ratio)
                    .field("kernel", kernel.name())
                    .field("ops", ops)
                    .field("nanos", time.as_nanos() as u64)
                    .field("hits", hits as u64)
                    .field("speedup_vs_merge", speedup),
            );
        }
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    // Part 2: end-to-end enumeration with each kernel pinned.
    // ------------------------------------------------------------------
    println!("\nEnd-to-end enumeration (WT stand-in, sequential, kernel pinned)\n");
    let graph = Dataset::Wt.build(scale);
    let mut t = Table::new(vec![
        "query".to_string(),
        "kernel".to_string(),
        "embeddings".to_string(),
        "intersect ops".to_string(),
        "time".to_string(),
        "vs merge".to_string(),
    ]);
    for query in [
        PaperQuery::Qg1,
        PaperQuery::Qg2,
        PaperQuery::Qg3,
        PaperQuery::Qg4,
        PaperQuery::Qg5,
    ] {
        let plan = QueryPlan::new(query.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let run_kernel = |kernel: Kernel| {
            let mut sink = CountSink::unbounded();
            let start = Instant::now();
            let counters = enumerate_sequential(
                &graph,
                &plan,
                &ceci,
                EnumOptions {
                    kernel,
                    ..Default::default()
                },
                &mut sink,
            );
            (start.elapsed(), counters)
        };
        let (merge_time, merge_counters) = run_kernel(Kernel::Merge);
        for &kernel in &kernels {
            let (time, counters) = run_kernel(kernel);
            assert_eq!(
                counters.embeddings,
                merge_counters.embeddings,
                "{} changes the result on {}",
                kernel.name(),
                query.name()
            );
            let speedup = merge_time.as_secs_f64() / time.as_secs_f64().max(1e-12);
            t.row(vec![
                query.name().to_string(),
                kernel.name().to_string(),
                counters.embeddings.to_string(),
                counters.intersection_ops.to_string(),
                format!("{:.2} ms", time.as_secs_f64() * 1e3),
                format!("{speedup:.2}×"),
            ]);
            records.push(
                JsonValue::object()
                    .field("section", "end_to_end")
                    .field("query", query.name())
                    .field("kernel", kernel.name())
                    .field("embeddings", counters.embeddings)
                    .field("intersection_ops", counters.intersection_ops)
                    .field("nanos", time.as_nanos() as u64)
                    .field("speedup_vs_merge", speedup),
            );
        }
    }
    println!("{}", t.render());

    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("kernels.json");
    if let Err(e) = std::fs::write(&path, JsonValue::Array(records).to_pretty()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("\nrecords written to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sorted_is_sorted_and_unique() {
        let v = random_sorted(100, 1_000, 42);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v, random_sorted(100, 1_000, 42), "must be deterministic");
    }

    #[test]
    fn time_kernel_agrees_across_kernels() {
        let a = random_sorted(64, 400, 1);
        let b = random_sorted(512, 400, 2);
        let (_, _, expected) = time_kernel(Kernel::Merge, &a, &b, 2);
        for k in Kernel::CONCRETE {
            let (_, _, hits) = time_kernel(k, &a, &b, 2);
            assert_eq!(hits, expected, "{}", k.name());
        }
    }
}
