//! Table 2 — CECI size for query/data combinations, vs the theoretical
//! bound `|E_q| × |E_g| × 8` bytes, with the % saved by filtering and
//! refinement.

use ceci_core::Ceci;
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::table::Table;

/// The Table 2 dataset columns.
const COLUMNS: [Dataset; 6] = [
    Dataset::Fs,
    Dataset::Lj,
    Dataset::Ok,
    Dataset::Wt,
    Dataset::Yh,
    Dataset::Yt,
];

/// Prints the CECI-size table.
pub fn run(scale: Scale) {
    println!(
        "Table 2: CECI size per query/data pair — actual (theoretical) [% saved], scale {scale:?}\n"
    );
    let graphs: Vec<_> = COLUMNS.iter().map(|d| (d, d.build(scale))).collect();
    let mut header = vec!["Query".to_string()];
    header.extend(COLUMNS.iter().map(|d| d.abbrev().to_string()));
    let mut t = Table::new(header);
    for q in PaperQuery::ALL {
        let mut row = vec![q.name().to_string()];
        for (_, graph) in &graphs {
            let plan = QueryPlan::new(q.build(), graph);
            let ceci = Ceci::build(graph, &plan);
            let stats = ceci.stats();
            let actual_kb = stats.size_bytes as f64 / 1024.0;
            let theory_kb = stats.theoretical_bytes as f64 / 1024.0;
            row.push(format!(
                "{:.0}K ({:.0}K) [{:.0}%]",
                actual_kb,
                theory_kb,
                stats.percent_saved()
            ));
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nPaper shape: filtering + reverse-BFS refinement cut CECI to roughly half of the \
         theoretical |Eq|x|Eg| bound (31-88% saved)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_below_theoretical_on_small_sample() {
        let graph = Dataset::Wt.build(Scale::Quick);
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let s = ceci.stats();
        let actual_entry_bytes =
            (s.te_entries_after_refine + s.nte_entries_after_refine) as u64 * 8;
        assert!(actual_entry_bytes < s.theoretical_bytes);
        assert!(s.percent_saved() > 0.0);
    }
}
