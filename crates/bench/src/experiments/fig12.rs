//! Figure 12 — effect of β on per-worker finish times (QG3 on the FS
//! stand-in): smaller β trims the tail skew at the cost of more
//! decomposition work.

use ceci_core::{enumerate_parallel, Ceci, ParallelOptions, Strategy, VerifyMode};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::experiments::default_workers;
use crate::table::{fmt_duration, Table};

/// β values swept (the paper's Figure 12 uses 1, 0.2, 0.1).
pub const BETAS: [f64; 3] = [1.0, 0.2, 0.1];

/// Runs Figure 12.
pub fn run(scale: Scale) {
    let workers = default_workers();
    println!(
        "Figure 12: per-worker busy time under different beta (QG3 on FS stand-in, \
         {workers} workers), scale {scale:?}\n"
    );
    let graph = Dataset::Fs.build(scale);
    let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    let mut t = Table::new(vec![
        "beta",
        "units",
        "decompose",
        "min worker",
        "max worker",
        "skew (max/min)",
        "wall",
    ]);
    for beta in BETAS {
        let result = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers,
                strategy: Strategy::FineDynamic { beta },
                verify: VerifyMode::Intersection,
                kernel: Default::default(),
                limit: None,
                collect: false,
                build_threads: 1,
                profile: false,
                prune_redundant: false,
            },
        );
        let min = result.worker_busy.iter().min().copied().unwrap_or_default();
        let max = result.worker_busy.iter().max().copied().unwrap_or_default();
        let skew = if min.as_secs_f64() > 0.0 {
            max.as_secs_f64() / min.as_secs_f64()
        } else {
            f64::INFINITY
        };
        t.row(vec![
            format!("{beta}"),
            result.num_units.to_string(),
            fmt_duration(result.distribute_time),
            fmt_duration(min),
            fmt_duration(max),
            format!("{skew:.2}"),
            fmt_duration(result.enumerate_time),
        ]);
    }
    t.print();
    println!(
        "\n(paper shape: smaller beta -> more units, higher one-time decomposition cost, \
         flatter per-worker profile at the tail)"
    );
}
