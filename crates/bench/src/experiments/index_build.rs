//! CECI construction scaling sweep (§6.4 companion).
//!
//! The paper's Figure 10 discussion notes that on large data graphs index
//! construction is a large — often dominant — share of end-to-end time.
//! This experiment measures the parallel BFS-filter fan-out directly: a
//! fixed query set (DFS-extracted labeled queries, plus the QG catalog's
//! structure) is built against a labeled power-law (Kronecker) stand-in at
//! 1..N build threads, and each build reports the filter/refine/merge
//! breakdown, the modeled build time (serial span + busiest worker's CPU
//! time — meaningful on hosts with fewer cores than workers, like the
//! enumeration scalability figures), and arena vs. total index bytes.
//!
//! Determinism is asserted on every run: each multi-thread build must
//! produce the same candidate-edge counts, pivots, cardinality total, and
//! exact index bytes as the 1-thread build. Results land in
//! `bench_results/index_build.json`.

use std::time::Duration;

use ceci_core::{BuildOptions, BuildStats, Ceci};
use ceci_graph::generators::{inject_random_labels, kronecker_default};
use ceci_graph::{extract_query, Graph};
use ceci_query::{QueryGraph, QueryPlan};

use crate::json::JsonValue;
use crate::table::{fmt_duration, fmt_speedup, Table};
use crate::Scale;

/// Thread counts swept.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Builds the labeled power-law stand-in: a Kronecker (R-MAT) core with a
/// small uniform label alphabet, so per-node candidate frontiers stay large
/// and the filter fan-out has real work per frontier vertex.
fn powerlaw_labeled(scale: Scale) -> Graph {
    let (kron_scale, edge_factor) = match scale {
        Scale::Quick => (13, 8),
        Scale::Full => (14, 8),
    };
    let seed = 0xCEC1_1DE8;
    let core = kronecker_default(kron_scale, edge_factor, seed);
    inject_random_labels(&core, 4, seed + 1)
}

/// Fixed query set: DFS-extracted labeled queries (guaranteed non-empty
/// candidate structure) at a few sizes.
fn query_set(graph: &Graph, scale: Scale) -> Vec<(String, QueryGraph)> {
    let per_size = match scale {
        Scale::Quick => 2,
        Scale::Full => 4,
    };
    let mut out = Vec::new();
    for size in [6usize, 10, 14] {
        let mut found = 0;
        let mut seed = size as u64 * 7_001;
        while found < per_size && seed < size as u64 * 7_001 + 10_000 {
            if let Some(q) = extract_query(graph, size, seed, 5) {
                if let Ok(qg) = QueryGraph::from_graph(&q.pattern) {
                    out.push((format!("q{size}_{found}"), qg));
                    found += 1;
                }
            }
            seed += 1;
        }
    }
    out
}

struct BuildSample {
    threads: usize,
    modeled: Duration,
    stats: BuildStats,
}

/// A digest of the frozen index used for the determinism cross-check.
#[derive(Debug, PartialEq, Eq)]
struct IndexDigest {
    te_entries: usize,
    nte_entries: usize,
    pivots: usize,
    size_bytes: usize,
    arena_bytes: usize,
    total_cardinality: u64,
}

fn digest(ceci: &Ceci) -> IndexDigest {
    IndexDigest {
        te_entries: ceci.stats().te_entries_after_refine,
        nte_entries: ceci.stats().nte_entries_after_refine,
        pivots: ceci.pivots().len(),
        size_bytes: ceci.size_bytes(),
        arena_bytes: ceci.arena_bytes(),
        total_cardinality: ceci.total_cardinality(),
    }
}

/// Runs the sweep and writes `bench_results/index_build.json`.
pub fn run(scale: Scale) {
    run_with(scale, None)
}

/// [`run`] with an optional `--build-threads` pin: when set, the sweep is
/// `{1, n}` (1 stays so the speedup column is still meaningful).
pub fn run_with(scale: Scale, build_threads: Option<usize>) {
    let sweep: Vec<usize> = match build_threads {
        Some(n) if n > 1 => vec![1, n],
        Some(_) => vec![1],
        None => THREADS.to_vec(),
    };
    println!(
        "Index construction scaling: parallel BFS filter, labeled power-law stand-in, \
         scale {scale:?}, threads {sweep:?}\n"
    );
    let graph = powerlaw_labeled(scale);
    println!(
        "graph: {} vertices, {} edges, {} labels\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );
    let queries = query_set(&graph, scale);

    let mut rows = Vec::new();
    let mut per_query_speedup4 = Vec::new();
    for (name, query) in &queries {
        let plan = QueryPlan::new(query.clone(), &graph);
        let mut samples: Vec<BuildSample> = Vec::new();
        let mut reference: Option<IndexDigest> = None;
        for &threads in sweep.iter() {
            // Best-of-3 to tame timer noise on small hosts.
            let mut best: Option<(Duration, BuildStats, IndexDigest)> = None;
            for _ in 0..3 {
                let ceci = Ceci::build_with(
                    &graph,
                    &plan,
                    BuildOptions {
                        threads,
                        ..Default::default()
                    },
                );
                let stats = *ceci.stats();
                let modeled = stats.modeled_build_time();
                let d = digest(&ceci);
                if best.as_ref().map(|(m, _, _)| modeled < *m).unwrap_or(true) {
                    best = Some((modeled, stats, d));
                }
            }
            let (modeled, stats, d) = best.expect("at least one build");
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    r, &d,
                    "{name}: {threads}-thread build diverges from 1-thread build"
                ),
            }
            samples.push(BuildSample {
                threads,
                modeled,
                stats,
            });
        }

        let base = samples[0].modeled;
        let mut t = Table::new(vec![
            "threads", "modeled", "filter", "refine", "merge", "busy max", "speedup",
        ]);
        for s in &samples {
            let speedup = base.as_secs_f64() / s.modeled.as_secs_f64().max(1e-9);
            if s.threads == 4 {
                per_query_speedup4.push(speedup);
            }
            t.row(vec![
                format!("{}", s.threads),
                fmt_duration(s.modeled),
                fmt_duration(s.stats.filter_time),
                fmt_duration(s.stats.refine_time),
                fmt_duration(s.stats.merge_time),
                fmt_duration(s.stats.filter_busy_max),
                fmt_speedup(speedup),
            ]);
            rows.push(
                JsonValue::object()
                    .field("query", name.as_str())
                    .field("threads", s.threads)
                    .field("modeled_build_ms", s.modeled.as_secs_f64() * 1e3)
                    .field("filter_ms", s.stats.filter_time.as_secs_f64() * 1e3)
                    .field("refine_ms", s.stats.refine_time.as_secs_f64() * 1e3)
                    .field("merge_ms", s.stats.merge_time.as_secs_f64() * 1e3)
                    .field(
                        "fanout_wall_ms",
                        s.stats.filter_fanout_wall.as_secs_f64() * 1e3,
                    )
                    .field(
                        "filter_busy_max_ms",
                        s.stats.filter_busy_max.as_secs_f64() * 1e3,
                    )
                    .field(
                        "filter_busy_total_ms",
                        s.stats.filter_busy_total.as_secs_f64() * 1e3,
                    )
                    .field("speedup_vs_1t", speedup)
                    .field("index_bytes", s.stats.size_bytes as u64)
                    .field("arena_bytes", s.stats.arena_bytes as u64)
                    .field("te_entries", s.stats.te_entries_after_refine as u64)
                    .field("nte_entries", s.stats.nte_entries_after_refine as u64),
            );
        }
        println!("{name} (query {} vertices):", query.num_vertices());
        t.print();
        println!();
    }

    let geo4 = crate::harness::geometric_mean(&per_query_speedup4);
    println!(
        "geometric-mean modeled speedup at 4 threads vs 1: {}",
        fmt_speedup(geo4)
    );

    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let json = JsonValue::object()
        .field("graph_vertices", graph.num_vertices() as u64)
        .field("graph_edges", graph.num_edges() as u64)
        .field("geomean_speedup_4t", geo4)
        .field("builds", JsonValue::Array(rows))
        .to_pretty();
    let path = dir.join("index_build.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
