//! `repro trace` — end-to-end trace capture plus the tracing-overhead gate.
//!
//! Captures one full pipeline run (CECI build → parallel enumeration →
//! 4-machine distributed simulation) into a [`ceci_trace::Tracer`], then
//! writes two artifacts under `bench_results/`:
//!
//! * `trace.json` — machine-readable summary: span inventory per category,
//!   the per-depth enumeration profile, and the measured tracing overhead.
//! * `trace_chrome.json` — Chrome `trace_event` JSON, loadable directly in
//!   `about:tracing` or Perfetto's legacy importer.
//!
//! It then runs the overhead gate: the QG1–QG5 end-to-end enumeration from
//! the kernels sweep, profile off vs. profile on, interleaved min-of-reps.
//! The run **asserts** that profiling costs `< 3%` (plus a small absolute
//! epsilon so sub-millisecond quick-scale runs are not decided by scheduler
//! noise) and that every counter is bit-identical with tracing on and off.

use std::time::{Duration, Instant};

use ceci_core::{enumerate_parallel_cancellable, record_build_spans, Ceci, ParallelOptions};
use ceci_distributed::{run_distributed_traced, ClusterConfig, StorageMode};
use ceci_query::{PaperQuery, QueryPlan};
use ceci_trace::{SpanRecord, Tracer};

use crate::experiments::default_workers;
use crate::json::JsonValue;
use crate::table::Table;
use crate::{Dataset, Scale};

/// Maximum tolerated relative tracing overhead on the end-to-end sweep.
const MAX_OVERHEAD_PCT: f64 = 3.0;
/// Absolute epsilon added to the overhead budget: quick-scale enumerations
/// finish in well under a millisecond per query, where one scheduler
/// preemption alone exceeds 3% — the epsilon keeps the gate meaningful on
/// long runs without making short runs flaky.
const OVERHEAD_EPSILON: Duration = Duration::from_micros(500);

/// Record the merged per-depth profile as `enumerate.depth{d}` child spans
/// tiling an `enumerate` root span of duration `enum_ns` ending at `end_ns`.
/// Each depth's share of the root is its share of the sampled time.
fn record_depth_spans(
    tracer: &Tracer,
    profile: &ceci_trace::DepthProfile,
    end_ns: u64,
    enum_ns: u64,
    args: Vec<(&'static str, u64)>,
) -> u64 {
    let start_ns = end_ns.saturating_sub(enum_ns.max(1));
    let root = tracer.span(
        "enumerate",
        "enumerate",
        0,
        0,
        start_ns,
        enum_ns.max(1),
        args,
    );
    let sampled_total = profile.total_time_ns().max(1);
    let mut cursor = start_ns;
    for (d, s) in profile.depths().iter().enumerate() {
        let dur = (enum_ns as u128 * s.time_ns as u128 / sampled_total as u128) as u64;
        tracer.record(SpanRecord {
            id: tracer.next_span_id(),
            parent: root,
            name: "enumerate.depth",
            index: Some(d as u32),
            cat: "enumerate",
            ts_ns: cursor,
            dur_ns: dur.max(1),
            tid: 0,
            args: vec![
                ("calls", s.calls),
                ("candidates", s.candidates),
                ("intersections", s.intersections),
                ("emitted", s.emitted),
                ("backtracks", s.backtracks),
                ("samples", s.samples),
            ],
        });
        cursor += dur;
    }
    root
}

/// Runs the capture + overhead gate and writes `bench_results/trace.json`
/// and `bench_results/trace_chrome.json`.
pub fn run(scale: Scale) {
    let workers = default_workers();
    println!("Trace capture: build -> enumerate ({workers} workers) -> distributed (4 machines)\n");

    // ------------------------------------------------------------------
    // Part 1: capture one full pipeline run.
    // ------------------------------------------------------------------
    let tracer = Tracer::new();
    let graph = Dataset::Wt.build(scale);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);

    let ceci = Ceci::build(&graph, &plan);
    record_build_spans(&tracer, 0, 0, ceci.stats());

    let t0 = Instant::now();
    let result = enumerate_parallel_cancellable(
        &graph,
        &plan,
        &ceci,
        &ParallelOptions {
            workers,
            profile: true,
            ..Default::default()
        },
        None,
    );
    let enum_wall = t0.elapsed();
    let profile = result
        .profile
        .as_ref()
        .expect("profile requested but missing");
    assert_eq!(
        profile.total_intersections(),
        result.counters.intersection_ops,
        "per-depth intersections must sum to the exact global counter"
    );
    record_depth_spans(
        &tracer,
        profile,
        tracer.now_ns(),
        enum_wall.as_nanos() as u64,
        vec![
            ("workers", workers as u64),
            ("embeddings", result.total_embeddings),
        ],
    );

    let config = ClusterConfig {
        machines: 4,
        storage: StorageMode::Replicated,
        ..Default::default()
    };
    let dist = run_distributed_traced(&graph, &plan, &config, None, Some(&tracer));
    assert_eq!(
        dist.total_embeddings, result.total_embeddings,
        "distributed run must agree with the single-machine run"
    );

    let spans = tracer.snapshot();
    let mut cats: Vec<(&str, u64, u64)> = Vec::new();
    for s in &spans {
        match cats.iter_mut().find(|(c, _, _)| *c == s.cat) {
            Some((_, n, ns)) => {
                *n += 1;
                *ns += s.dur_ns;
            }
            None => cats.push((s.cat, 1, s.dur_ns)),
        }
    }
    let mut t = Table::new(vec!["category", "spans", "span time"]);
    for (c, n, ns) in &cats {
        t.row(vec![
            c.to_string(),
            n.to_string(),
            format!("{:.2} ms", *ns as f64 / 1e6),
        ]);
    }
    t.print();

    println!("\nPer-depth enumeration profile (QG1 on WT, {workers} workers):\n");
    let mut t = Table::new(vec![
        "depth", "calls", "cand", "isect", "emit", "back", "time",
    ]);
    let mut depth_rows: Vec<JsonValue> = Vec::new();
    for (d, s) in profile.depths().iter().enumerate() {
        t.row(vec![
            d.to_string(),
            s.calls.to_string(),
            s.candidates.to_string(),
            s.intersections.to_string(),
            s.emitted.to_string(),
            s.backtracks.to_string(),
            format!("{:.2} ms", s.time_ns as f64 / 1e6),
        ]);
        depth_rows.push(
            JsonValue::object()
                .field("depth", d as u64)
                .field("calls", s.calls)
                .field("candidates", s.candidates)
                .field("intersections", s.intersections)
                .field("emitted", s.emitted)
                .field("backtracks", s.backtracks)
                .field("time_ns", s.time_ns)
                .field("samples", s.samples),
        );
    }
    t.print();

    // ------------------------------------------------------------------
    // Part 2: overhead gate — QG1-QG5 end-to-end, profile off vs. on.
    // ------------------------------------------------------------------
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Full => 9,
    };
    println!("\nTracing overhead gate — QG1-QG5 end-to-end, min of {reps} interleaved reps\n");
    let mut t = Table::new(vec!["query", "plain", "profiled", "overhead"]);
    let mut plain_total = Duration::ZERO;
    let mut profiled_total = Duration::ZERO;
    let mut overhead_rows: Vec<JsonValue> = Vec::new();
    for query in [
        PaperQuery::Qg1,
        PaperQuery::Qg2,
        PaperQuery::Qg3,
        PaperQuery::Qg4,
        PaperQuery::Qg5,
    ] {
        let plan = QueryPlan::new(query.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let run_once = |profile: bool| {
            let start = Instant::now();
            let r = enumerate_parallel_cancellable(
                &graph,
                &plan,
                &ceci,
                &ParallelOptions {
                    workers: 1,
                    profile,
                    ..Default::default()
                },
                None,
            );
            (start.elapsed(), r)
        };
        let mut plain_min = Duration::MAX;
        let mut profiled_min = Duration::MAX;
        for _ in 0..reps {
            let (tp, rp) = run_once(false);
            let (tt, rt) = run_once(true);
            // Differential invariant: tracing must never change the answer
            // or any exact counter.
            assert_eq!(rp.total_embeddings, rt.total_embeddings, "{}", query.name());
            assert_eq!(rp.counters, rt.counters, "{}", query.name());
            plain_min = plain_min.min(tp);
            profiled_min = profiled_min.min(tt);
        }
        plain_total += plain_min;
        profiled_total += profiled_min;
        let pct = (profiled_min.as_secs_f64() / plain_min.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        t.row(vec![
            query.name().to_string(),
            format!("{:.2} ms", plain_min.as_secs_f64() * 1e3),
            format!("{:.2} ms", profiled_min.as_secs_f64() * 1e3),
            format!("{pct:+.2}%"),
        ]);
        overhead_rows.push(
            JsonValue::object()
                .field("query", query.name())
                .field("plain_nanos", plain_min.as_nanos() as u64)
                .field("profiled_nanos", profiled_min.as_nanos() as u64)
                .field("overhead_pct", pct),
        );
    }
    t.print();
    let overhead_pct =
        (profiled_total.as_secs_f64() / plain_total.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    let budget = plain_total.mul_f64(1.0 + MAX_OVERHEAD_PCT / 100.0) + OVERHEAD_EPSILON;
    println!(
        "\ntotal: plain {:.2} ms, profiled {:.2} ms -> overhead {overhead_pct:+.2}% \
         (budget {MAX_OVERHEAD_PCT}% + {} µs)",
        plain_total.as_secs_f64() * 1e3,
        profiled_total.as_secs_f64() * 1e3,
        OVERHEAD_EPSILON.as_micros(),
    );
    assert!(
        profiled_total <= budget,
        "tracing overhead gate failed: profiled {profiled_total:?} > budget {budget:?} \
         (plain {plain_total:?})"
    );
    println!("overhead gate passed (profiled <= plain x1.03 + epsilon)");

    // ------------------------------------------------------------------
    // Artifacts.
    // ------------------------------------------------------------------
    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let chrome_path = dir.join("trace_chrome.json");
    match ceci_trace::chrome::write_file(&spans, &chrome_path) {
        Ok(()) => println!("\nwrote {} ({} events)", chrome_path.display(), spans.len()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", chrome_path.display()),
    }

    let json = JsonValue::object()
        .field("dataset", "WT")
        .field("query", "QG1")
        .field("workers", workers as u64)
        .field("embeddings", result.total_embeddings)
        .field("span_count", spans.len() as u64)
        .field("dropped_spans", tracer.dropped())
        .field(
            "categories",
            JsonValue::Array(
                cats.iter()
                    .map(|(c, n, ns)| {
                        JsonValue::object()
                            .field("category", *c)
                            .field("spans", *n)
                            .field("span_time_ns", *ns)
                    })
                    .collect(),
            ),
        )
        .field("depth_profile", JsonValue::Array(depth_rows))
        .field("overhead_pct", overhead_pct)
        .field("overhead_budget_pct", MAX_OVERHEAD_PCT)
        .field("overhead_gate_passed", true)
        .field("per_query_overhead", JsonValue::Array(overhead_rows))
        .to_pretty();
    let path = dir.join("trace.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_spans_tile_the_root() {
        let tracer = Tracer::new();
        let mut p = ceci_trace::DepthProfile::with_stride(3, 0);
        for d in 0..3 {
            for _ in 0..(d + 1) * 4 {
                p.on_call(d);
            }
        }
        let root = record_depth_spans(&tracer, &p, 1_000_000, 900_000, vec![("workers", 1)]);
        let spans = tracer.snapshot();
        let children: Vec<_> = spans.iter().filter(|s| s.parent == root).collect();
        assert_eq!(children.len(), 3);
        let root_span = spans.iter().find(|s| s.id == root).unwrap();
        for c in &children {
            assert!(c.ts_ns >= root_span.ts_ns);
            assert!(c.ts_ns + c.dur_ns <= root_span.ts_ns + root_span.dur_ns + 3);
            assert_eq!(c.name, "enumerate.depth");
            assert!(c.index.is_some());
        }
    }
}
