//! `repro stream` — incremental CECI maintenance vs from-scratch rebuild on
//! an SMFresh-style temporal batch sweep (PR 7).
//!
//! The workload replays a synthetic wiki-talk-shaped temporal stream against
//! a labeled base graph: the stream is written as a SNAP `src dst ts` file,
//! read back through the temporal loader, grouped into ~10k-edge mutation
//! batches by timestamp, and applied through the service registry's delta
//! overlay (with one mid-sweep CSR compaction). At every batch boundary,
//! for each registered query template, the sweep times
//!
//! * **maintain** — the continuous-query path: `StreamIndex::patch` over the
//!   batch's dirty endpoints plus `batch_delta` (new/retired matches), which
//!   carries the embedding total forward incrementally;
//! * **repair** — the cache-repair path: the same patch plus
//!   `StreamIndex::materialize` into a frozen, refined `Ceci`;
//! * **rebuild** — the from-scratch reference: fresh `QueryPlan` +
//!   `Ceci::build` + full `count_embeddings` on the post-batch snapshot.
//!
//! Counts are **asserted** bit-identical three ways at every boundary —
//! delta-maintained total ≡ rebuilt count ≡ count over the materialized
//! index — and `bench_results/stream.json` records per-batch wall times plus
//! the amortized speedups (target: maintenance ≥ 3× faster than rebuild,
//! excluding the initial build). A shortfall prints a warning rather than
//! failing the run (wall-clock ratios are host-dependent); count identity is
//! always asserted.

use std::time::Duration;

use ceci_core::{batch_delta, count_embeddings, Ceci};
use ceci_graph::extract::extract_query;
use ceci_graph::io::{batch_by_timestamp, load_temporal};
use ceci_graph::{lid, vid, Graph, LabelSet, VertexId};
use ceci_query::{QueryGraph, QueryPlan};
use ceci_service::GraphRegistry;
use ceci_stream::{RepairStats, StreamIndex};

use crate::harness::time;
use crate::json::JsonValue;
use crate::table::Table;
use crate::Scale;

/// Amortized rebuild/maintain wall-time ratio the incremental path is
/// expected to clear at 10k-edge batches.
const TARGET_SPEEDUP: f64 = 3.0;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic labeled base graph: `n` vertices labeled uniformly from
/// {0,1,2}, `m` distinct random edges.
fn base_graph(n: u32, m: usize, seed: u64) -> (Graph, Vec<(VertexId, VertexId)>) {
    let mut s = seed | 1;
    let labels: Vec<LabelSet> = (0..n)
        .map(|_| LabelSet::single(lid((xorshift(&mut s) % 3) as u32)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let a = (xorshift(&mut s) % n as u64) as u32;
        let b = (xorshift(&mut s) % n as u64) as u32;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push((vid(key.0), vid(key.1)));
        }
    }
    (Graph::new(labels, &edges, false), edges)
}

/// Writes the add-stream as a SNAP temporal file (`src dst ts`, ts = batch
/// index) and reads it back through the loader — the batches the sweep
/// applies are exactly what `load_temporal` + `batch_by_timestamp` recover.
fn stage_stream(
    dir: &std::path::Path,
    n: u32,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<(VertexId, VertexId)>> {
    let mut s = seed | 1;
    let path = dir.join("stream.temporal");
    let mut text = String::from("# synthetic wiki-talk-style temporal stream\n");
    for ts in 0..batches {
        let mut written = 0usize;
        while written < batch_size {
            let a = (xorshift(&mut s) % n as u64) as u32;
            let b = (xorshift(&mut s) % n as u64) as u32;
            if a == b {
                continue;
            }
            text.push_str(&format!("{a} {b} {ts}\n"));
            written += 1;
        }
    }
    std::fs::write(&path, text).expect("write temporal stream");
    let edges = load_temporal(&path).expect("load temporal stream");
    let grouped = batch_by_timestamp(&edges, batch_size);
    assert_eq!(grouped.len(), batches, "one batch per timestamp");
    grouped
        .iter()
        .map(|batch| batch.iter().map(|e| (e.src, e.dst)).collect())
        .collect()
}

/// Per-query live state carried across batches.
struct LiveQuery {
    name: String,
    pattern: Graph,
    /// Plan built once at registration; `patch`/`batch_delta` consult only
    /// its graph-independent parts, so it stays valid across mutations.
    plan: QueryPlan,
    stream: StreamIndex,
    /// Delta-maintained embedding total.
    total: u64,
}

#[derive(Default)]
struct BatchRow {
    added: usize,
    deleted: usize,
    compacted: bool,
    stats: RepairStats,
    patch: Duration,
    delta: Duration,
    materialize: Duration,
    rebuild_index: Duration,
    rebuild_count: Duration,
    counts: Vec<u64>,
}

impl BatchRow {
    fn maintain(&self) -> Duration {
        self.patch + self.delta
    }
    fn repair(&self) -> Duration {
        self.patch + self.materialize
    }
    fn rebuild(&self) -> Duration {
        self.rebuild_index + self.rebuild_count
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Runs the sweep and writes `bench_results/stream.json`.
pub fn run(scale: Scale) {
    let (n, m, batches, batch_size, dels_per_batch) = match scale {
        Scale::Quick => (600_000u32, 1_200_000usize, 3usize, 10_000usize, 500usize),
        Scale::Full => (900_000u32, 1_800_000usize, 5usize, 10_000usize, 1_000usize),
    };
    let sizes: &[(usize, u64)] = match scale {
        Scale::Quick => &[(3, 7), (4, 11)],
        Scale::Full => &[(4, 7), (4, 19), (5, 23)],
    };
    println!(
        "Streaming maintenance: base n={n} m={m}, {batches} batches of {batch_size} adds + \
         {dels_per_batch} deletes, {} query templates\n",
        sizes.len()
    );

    let dir = std::env::temp_dir().join(format!("ceci-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let (graph, base_edges) = base_graph(n, m, 0x5eed);
    let add_batches = stage_stream(&dir, n, batches, batch_size, 0xfeed);
    // Deletions: distinct base edges, never re-deleted, drawn round-robin.
    let del_batches: Vec<Vec<(VertexId, VertexId)>> = (0..batches)
        .map(|b| base_edges[b * dels_per_batch..(b + 1) * dels_per_batch].to_vec())
        .collect();

    // Register the query templates against the base snapshot (the untimed
    // initial build the amortized gate excludes).
    let mut queries: Vec<LiveQuery> = sizes
        .iter()
        .map(|&(size, seed)| {
            let pattern = extract_query(&graph, size, seed, 50)
                .expect("extractable query template")
                .pattern;
            let query = QueryGraph::from_graph(&pattern).expect("valid query");
            let registry = QueryPlan::new(query, &graph);
            let stream = StreamIndex::build(&graph, &registry);
            let ceci = stream.materialize(&graph, &registry);
            let total = count_embeddings(&graph, &registry, &ceci);
            LiveQuery {
                name: format!("q_s{size}_r{seed}"),
                pattern,
                plan: registry,
                stream,
                total,
            }
        })
        .collect();

    // Apply the stream through the registry's delta overlay, compacting the
    // CSR once mid-sweep so both regimes (overlay reads / post-compaction
    // reads) appear in the timings.
    let registry = GraphRegistry::new();
    let (entry, _) = registry.insert("g", graph);
    let compact_threshold = (batches / 2).max(1) * (batch_size + dels_per_batch) + 1;

    let mut rows: Vec<BatchRow> = Vec::new();
    for b in 0..batches {
        let outcome = entry
            .apply_batch(&add_batches[b], &del_batches[b], compact_threshold, 64)
            .expect("in-range mutation batch");
        let mut row = BatchRow {
            added: outcome.added.len(),
            deleted: outcome.deleted.len(),
            compacted: outcome.compacted,
            ..BatchRow::default()
        };
        for q in queries.iter_mut() {
            // Continuous-query maintenance: patch the live tables, carry the
            // total forward by the batch delta.
            let (stats, patch_t) = time(|| {
                q.stream
                    .patch(&outcome.new_graph, &q.plan, &outcome.endpoints)
            });
            let (delta, delta_t) = time(|| {
                batch_delta(
                    &outcome.old_graph,
                    &outcome.new_graph,
                    &q.plan,
                    &outcome.added,
                    &outcome.deleted,
                )
            });
            q.total = delta.apply_to(q.total);
            // Cache-repair path: freeze the patched tables into a Ceci.
            let (ceci_repaired, mat_t) = time(|| q.stream.materialize(&outcome.new_graph, &q.plan));
            // From-scratch reference on the same snapshot (fresh plan: the
            // initial candidate sets are graph-dependent).
            let ((rebuilt_plan, rebuilt_ceci), rebuild_index_t) = time(|| {
                let query = QueryGraph::from_graph(&q.pattern).expect("valid query");
                let plan = QueryPlan::new(query, &outcome.new_graph);
                let ceci = Ceci::build(&outcome.new_graph, &plan);
                (plan, ceci)
            });
            let (rebuilt_count, rebuild_count_t) =
                time(|| count_embeddings(&outcome.new_graph, &rebuilt_plan, &rebuilt_ceci));
            // The differential gate: all three agree, bit-identical.
            assert_eq!(
                q.total, rebuilt_count,
                "{} batch {b}: delta-maintained total diverges from rebuild",
                q.name
            );
            let repaired_count = count_embeddings(&outcome.new_graph, &q.plan, &ceci_repaired);
            assert_eq!(
                repaired_count, rebuilt_count,
                "{} batch {b}: repaired index diverges from rebuild",
                q.name
            );
            row.stats.absorb(&stats);
            row.patch += patch_t;
            row.delta += delta_t;
            row.materialize += mat_t;
            row.rebuild_index += rebuild_index_t;
            row.rebuild_count += rebuild_count_t;
            row.counts.push(rebuilt_count);
        }
        rows.push(row);
    }

    let mut t = Table::new(vec![
        "batch", "adds", "dels", "dirty", "maintain", "repair", "rebuild", "ratio",
    ]);
    for (b, row) in rows.iter().enumerate() {
        t.row(vec![
            format!("{b}{}", if row.compacted { "*" } else { "" }),
            row.added.to_string(),
            row.deleted.to_string(),
            row.stats.dirty_vertices.to_string(),
            format!("{:.0} us", us(row.maintain())),
            format!("{:.0} us", us(row.repair())),
            format!("{:.0} us", us(row.rebuild())),
            format!("{:.1}x", us(row.rebuild()) / us(row.maintain()).max(1e-9)),
        ]);
    }
    t.print();
    println!("(* = batch triggered CSR compaction)");

    let sum = |f: fn(&BatchRow) -> Duration| -> Duration { rows.iter().map(f).sum() };
    let total_maintain = sum(BatchRow::maintain);
    let total_repair = sum(BatchRow::repair);
    let total_rebuild = sum(BatchRow::rebuild);
    let maintain_speedup = us(total_rebuild) / us(total_maintain).max(1e-9);
    let repair_speedup = us(sum(|r| r.rebuild_index)) / us(total_repair).max(1e-9);
    println!(
        "\namortized over {batches} batches: maintenance {maintain_speedup:.2}x faster than \
         rebuild (target {TARGET_SPEEDUP}x), cache repair {repair_speedup:.2}x faster than \
         index rebuild; counts bit-identical at every boundary"
    );
    if maintain_speedup < TARGET_SPEEDUP {
        println!("warning: maintenance speedup below target on this host/run");
    }

    let batch_rows: Vec<JsonValue> = rows
        .iter()
        .enumerate()
        .map(|(b, row)| {
            JsonValue::object()
                .field("batch", b as u64)
                .field("added", row.added)
                .field("deleted", row.deleted)
                .field("compacted", row.compacted)
                .field("dirty_vertices", row.stats.dirty_vertices)
                .field("keys_recomputed", row.stats.keys_recomputed)
                .field("keys_added", row.stats.keys_added)
                .field("keys_removed", row.stats.keys_removed)
                .field("patch_us", us(row.patch))
                .field("delta_us", us(row.delta))
                .field("materialize_us", us(row.materialize))
                .field("maintain_us", us(row.maintain()))
                .field("repair_us", us(row.repair()))
                .field("rebuild_index_us", us(row.rebuild_index))
                .field("rebuild_count_us", us(row.rebuild_count))
                .field("rebuild_us", us(row.rebuild()))
                .field(
                    "counts",
                    JsonValue::Array(row.counts.iter().map(|&c| c.into()).collect()),
                )
        })
        .collect();
    let query_rows: Vec<JsonValue> = queries
        .iter()
        .map(|q| {
            JsonValue::object()
                .field("name", q.name.as_str())
                .field("vertices", q.pattern.num_vertices())
                .field("edges", q.pattern.num_edges())
                .field("final_total", q.total)
        })
        .collect();
    let json = JsonValue::object()
        .field(
            "workload",
            JsonValue::object()
                .field("base_vertices", n as u64)
                .field("base_edges", m)
                .field("batches", batches)
                .field("batch_size", batch_size)
                .field("deletes_per_batch", dels_per_batch)
                .field("compact_threshold", compact_threshold)
                .field("queries", JsonValue::Array(query_rows)),
        )
        .field("batches", JsonValue::Array(batch_rows))
        .field("total_maintain_us", us(total_maintain))
        .field("total_repair_us", us(total_repair))
        .field("total_rebuild_us", us(total_rebuild))
        .field("maintain_speedup", maintain_speedup)
        .field("repair_speedup", repair_speedup)
        .field("target_speedup", TARGET_SPEEDUP)
        .field("counts_bit_identical", true)
        .to_pretty();

    let out_dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    } else {
        let path = out_dir.join("stream.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    // Silence the unused-field lint path: the entry keeps the final snapshot.
    let _ = entry.pending();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_staging_round_trips_through_the_temporal_loader() {
        let dir = std::env::temp_dir().join(format!("ceci-stream-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let batches = stage_stream(&dir, 100, 3, 50, 0xfeed);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 50));
        std::fs::remove_dir_all(&dir).ok();
    }
}
