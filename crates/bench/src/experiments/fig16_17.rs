//! Figures 16 & 17 — distributed scalability (simulated cluster): speedup
//! of the modeled makespan with 1–16 machines (4 threads each), for the
//! replicated in-memory graph (Fig 16) and the shared lustre-like store
//! (Fig 17).

use ceci_distributed::{run_distributed, ClusterConfig, StorageMode};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::table::{fmt_duration, fmt_speedup, Table};

const MACHINE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs Figure 16 (replicated).
pub fn run_fig16(scale: Scale) {
    run_distributed_scaling("Figure 16", StorageMode::Replicated, scale);
}

/// Runs Figure 17 (shared storage).
pub fn run_fig17(scale: Scale) {
    run_distributed_scaling("Figure 17", StorageMode::Shared, scale);
}

fn run_distributed_scaling(title: &str, storage: StorageMode, scale: Scale) {
    println!(
        "{title}: modeled-makespan speedup with increasing machines (4 threads each, \
         {storage:?} storage), scale {scale:?}\n"
    );
    for d in [Dataset::Fs, Dataset::Ok] {
        let graph = d.build(scale);
        for q in [PaperQuery::Qg1, PaperQuery::Qg4] {
            let plan = QueryPlan::new(q.build(), &graph);
            let mut t = Table::new(vec![
                "machines",
                "makespan (modeled)",
                "speedup",
                "embeddings",
                "stolen clusters",
            ]);
            let mut base = None;
            for &machines in &MACHINE_COUNTS {
                let cfg = ClusterConfig {
                    machines,
                    threads_per_machine: 4,
                    storage,
                    ..Default::default()
                };
                let result = run_distributed(&graph, &plan, &cfg);
                let b = *base.get_or_insert(result.makespan);
                let stolen: usize = result.reports.iter().map(|r| r.stolen_clusters).sum();
                t.row(vec![
                    machines.to_string(),
                    fmt_duration(result.makespan),
                    fmt_speedup(b.as_secs_f64() / result.makespan.as_secs_f64()),
                    result.total_embeddings.to_string(),
                    stolen.to_string(),
                ]);
            }
            println!("{} / {}:", d.abbrev(), q.name());
            t.print();
            println!();
        }
    }
    match storage {
        StorageMode::Replicated => println!(
            "(paper: up to 13.7x / 14.9x at 16 machines on FS; smaller graphs flatten early \
             for lack of workload)"
        ),
        StorageMode::Shared => println!(
            "(paper: up to 12.6x / 13.6x at 16 machines — slightly below the replicated mode \
             because CECI construction pays shared-storage IO)"
        ),
    }
}
