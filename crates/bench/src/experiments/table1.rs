//! Table 1 — dataset inventory: the paper's sizes next to our stand-ins.

use crate::datasets::{Dataset, Scale};
use crate::table::Table;

/// Prints the dataset table.
pub fn run(scale: Scale) {
    println!("Table 1: graph datasets (paper original vs synthetic stand-in, scale {scale:?})\n");
    let mut t = Table::new(vec![
        "Dataset",
        "Abbr.",
        "paper |V|",
        "paper |E|",
        "Directed",
        "stand-in |V|",
        "stand-in |E|",
        "stand-in max deg",
        "labels",
    ]);
    for d in Dataset::ALL {
        let (pv, pe) = d.paper_size();
        let s = d.stats(scale);
        t.row(vec![
            d.name().to_string(),
            d.abbrev().to_string(),
            format!("{pv}M"),
            format!("{pe}M"),
            if d.directed() { "Y" } else { "N" }.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_degree.to_string(),
            s.num_labels.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nStand-ins: Kronecker/R-MAT (Graph500 parameters) for power-law graphs, \
         Erdős–Rényi + 100 random labels for RD, dense multi-label for HU."
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_quickly() {
        // Smoke: building all quick stand-ins and printing must not panic.
        super::run(crate::datasets::Scale::Quick);
    }
}
