//! Figure 20 — breakdown of CECI construction into IO / communication /
//! compute on the shared (lustre-like) store, as machines scale.

use ceci_distributed::{run_distributed, ClusterConfig, StorageMode};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::table::{fmt_duration, Table};

/// Runs Figure 20 on the FS stand-in.
pub fn run(scale: Scale) {
    println!(
        "Figure 20: CECI construction breakdown (IO / comm / compute) on shared storage, \
         FS stand-in, scale {scale:?}\n"
    );
    let graph = Dataset::Fs.build(scale);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let mut t = Table::new(vec!["machines", "IO", "comm", "compute", "IO share"]);
    for machines in [2usize, 4, 8, 16] {
        let cfg = ClusterConfig {
            machines,
            threads_per_machine: 4,
            storage: StorageMode::Shared,
            ..Default::default()
        };
        let result = run_distributed(&graph, &plan, &cfg);
        let (io, comm, compute) = result.build_breakdown();
        let total = (io + comm + compute).as_secs_f64();
        t.row(vec![
            machines.to_string(),
            fmt_duration(io),
            fmt_duration(comm),
            fmt_duration(compute),
            format!("{:.0}%", 100.0 * io.as_secs_f64() / total.max(1e-12)),
        ]);
    }
    t.print();
    println!(
        "\n(paper shape: on networked storage the construction cost is dominated by \
         on-demand loads of graph partitions — IO-heavy, growing with machine count)"
    );
}
