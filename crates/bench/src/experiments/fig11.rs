//! Figure 11 — workload balancing: CGD and FGD speedup over static (ST)
//! distribution on QG1, QG3, QG5 (β = 0.2, as in §6.3).

use ceci_core::Strategy;
use ceci_query::PaperQuery;

use crate::datasets::{Dataset, Scale};
use crate::experiments::default_workers;
use crate::harness::{geometric_mean, persist_records, run_ceci_with, RunRecord};
use crate::table::{fmt_duration, fmt_speedup, Table};

/// Datasets used for the balance sweep (skewed stand-ins).
const DATASETS: [Dataset; 4] = [Dataset::Wt, Dataset::Lj, Dataset::Ok, Dataset::Fs];

/// Runs Figure 11.
pub fn run(scale: Scale) {
    let workers = default_workers();
    println!(
        "Figure 11: CGD / FGD speedup over ST ({workers} workers, beta = 0.2), scale {scale:?}\n"
    );
    let mut records = Vec::new();
    let mut cgd_speedups = Vec::new();
    let mut fgd_speedups = Vec::new();
    for q in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
        let mut t = Table::new(vec![
            "Dataset",
            "ST",
            "CGD",
            "FGD",
            "CGD speedup",
            "FGD speedup",
        ]);
        for d in DATASETS {
            let graph = d.build(scale);
            let (st_t, st_c, st_n) =
                run_ceci_with(&graph, q.build(), workers, None, Strategy::Static);
            let (cgd_t, cgd_c, cgd_n) =
                run_ceci_with(&graph, q.build(), workers, None, Strategy::CoarseDynamic);
            let (fgd_t, fgd_c, fgd_n) = run_ceci_with(
                &graph,
                q.build(),
                workers,
                None,
                Strategy::FineDynamic { beta: 0.2 },
            );
            assert_eq!(st_n, cgd_n);
            assert_eq!(st_n, fgd_n);
            let sc = st_t.as_secs_f64() / cgd_t.as_secs_f64();
            let sf = st_t.as_secs_f64() / fgd_t.as_secs_f64();
            cgd_speedups.push(sc);
            fgd_speedups.push(sf);
            t.row(vec![
                d.abbrev().to_string(),
                fmt_duration(st_t),
                fmt_duration(cgd_t),
                fmt_duration(fgd_t),
                fmt_speedup(sc),
                fmt_speedup(sf),
            ]);
            records.push(RunRecord::new(
                "ceci-st",
                d.abbrev(),
                q.name(),
                workers,
                st_t,
                &st_c,
            ));
            records.push(RunRecord::new(
                "ceci-cgd",
                d.abbrev(),
                q.name(),
                workers,
                cgd_t,
                &cgd_c,
            ));
            records.push(RunRecord::new(
                "ceci-fgd",
                d.abbrev(),
                q.name(),
                workers,
                fgd_t,
                &fgd_c,
            ));
        }
        println!("{}:", q.name());
        t.print();
        println!();
    }
    println!(
        "geomean: CGD {} and FGD {} over ST (paper: CGD 10.7x over ST, FGD 16.8x over CGD \
         on their heavily skewed full-size graphs; on laptop stand-ins expect the same \
         ordering with smaller constants)",
        fmt_speedup(geometric_mean(&cgd_speedups)),
        fmt_speedup(geometric_mean(&fgd_speedups))
    );
    persist_records("fig11", &records);
}
