//! Figures 13 & 14 — thread scalability on FS and OK: CECI vs PsgL-lite,
//! speedup relative to each engine's own single-thread run.

use ceci_query::PaperQuery;

use crate::datasets::{Dataset, Scale};
use crate::experiments::{default_workers, run_psgl};
use crate::harness::{persist_records, run_ceci, RunRecord};
use crate::table::{fmt_duration, fmt_speedup, Table};

fn thread_counts() -> Vec<usize> {
    // Makespans are modeled from per-thread CPU clocks, so sweeping past the
    // physical core count is meaningful (threads timeshare; their CPU shares
    // don't). Cap at 2x the default worker ceiling.
    let max = (2 * default_workers()).max(16);
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= max)
        .collect()
}

/// Runs Figure 13 (QG1).
pub fn run_fig13(scale: Scale) {
    run_scaling("Figure 13", "fig13", PaperQuery::Qg1, scale);
}

/// Runs Figure 14 (QG4).
pub fn run_fig14(scale: Scale) {
    run_scaling("Figure 14", "fig14", PaperQuery::Qg4, scale);
}

fn run_scaling(title: &str, persist_name: &str, q: PaperQuery, scale: Scale) {
    println!(
        "{title}: modeled speedup vs own 1-thread baseline while scaling threads ({}), \
         makespans modeled from per-worker thread-CPU time, scale {scale:?}\n",
        q.name()
    );
    let mut records = Vec::new();
    for d in [Dataset::Fs, Dataset::Ok] {
        let graph = d.build(scale);
        let mut t = Table::new(vec![
            "threads",
            "CECI time",
            "CECI speedup",
            "PsgL time",
            "PsgL speedup",
        ]);
        let mut ceci_base = None;
        let mut psgl_base = None;
        for threads in thread_counts() {
            let (ct, cc, _) = run_ceci(&graph, q.build(), threads, None);
            let (pt, pc, _) = run_psgl(&graph, q.build(), threads);
            let cb = *ceci_base.get_or_insert(ct);
            let pb = *psgl_base.get_or_insert(pt);
            t.row(vec![
                threads.to_string(),
                fmt_duration(ct),
                fmt_speedup(cb.as_secs_f64() / ct.as_secs_f64()),
                fmt_duration(pt),
                fmt_speedup(pb.as_secs_f64() / pt.as_secs_f64()),
            ]);
            records.push(RunRecord::new(
                "ceci",
                d.abbrev(),
                q.name(),
                threads,
                ct,
                &cc,
            ));
            records.push(RunRecord::new(
                "psgl-lite",
                d.abbrev(),
                q.name(),
                threads,
                pt,
                &pc,
            ));
        }
        println!("{}:", d.abbrev());
        t.print();
        println!();
    }
    println!(
        "(paper shape: CECI near-linear to ~16 workers then flattens for lack of workload; \
         PsgL scales worse due to exhaustive work distribution)"
    );
    persist_records(persist_name, &records);
}
