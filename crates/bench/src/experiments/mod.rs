//! One module per paper table/figure; each exposes `run(...)` printing the
//! same rows/series the paper reports (plus a JSON record dump under
//! `bench_results/`).

pub mod ablation;
pub mod adaptive;
pub mod faults;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig15;
pub mod fig16_17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig7_8;
pub mod fig9_10;
pub mod index_build;
pub mod kernels;
pub mod multiquery;
pub mod physical;
pub mod queries;
pub mod service;
pub mod shard;
pub mod stream;
pub mod table1;
pub mod table2;
pub mod trace;

use std::time::Duration;

use ceci_baselines::{enumerate_dualsim, enumerate_psgl, DualSimOptions, PsglOptions};
use ceci_core::Counters;
use ceci_graph::Graph;
use ceci_query::{QueryGraph, QueryPlan};

/// Default worker count for parallel experiments: the host's cores, but at
/// least 4 and at most 16. Workers above the physical core count still
/// produce meaningful results because all makespans are modeled from
/// per-worker thread-CPU time (see `ceci_core::metrics::thread_cpu_time`).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16)
}

/// Timed PsgL-lite run (plan + enumeration). Returns the modeled makespan
/// (Σ per-level max-chunk CPU time) so thread sweeps are meaningful on
/// hosts with fewer cores than workers.
pub fn run_psgl(graph: &Graph, query: QueryGraph, workers: usize) -> (Duration, Counters, u64) {
    let (result, plan_time) = crate::harness::time(|| QueryPlan::new(query, graph));
    let plan = result;
    let psgl = enumerate_psgl(
        graph,
        &plan,
        &PsglOptions {
            workers,
            ..Default::default()
        },
    );
    (
        plan_time + psgl.modeled_time,
        psgl.counters,
        psgl.total_embeddings,
    )
}

/// Timed DualSim-lite run; returns the *modeled* time (CPU + paged IO).
pub fn run_dualsim(graph: &Graph, query: QueryGraph) -> (Duration, Counters, u64) {
    let plan = QueryPlan::new(query, graph);
    let result = enumerate_dualsim(graph, &plan, &DualSimOptions::default());
    (
        result.modeled_time,
        result.counters,
        result.total_embeddings,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_workers_positive() {
        assert!(super::default_workers() >= 1);
    }
}
