//! `repro adaptive` — cost-model-driven adaptive execution sweep.
//!
//! Three query classes on a label-skewed workload — Erdős–Rényi structure
//! (bounded embedding counts) with a 55/25/15/5 label split, so
//! candidate-set sizes differ by orders of magnitude between pattern
//! vertices and the matching order genuinely matters (with uniform labels
//! every order costs about the same and a portfolio planner can only lose
//! its scoring overhead):
//!
//! * **easy** — small patterns any matching order finishes instantly,
//! * **hard** — mid-size patterns where matching order dominates runtime,
//! * **hopeless** — large patterns whose predicted exact runs blow any
//!   interactive deadline; the admission path must degrade to an estimator
//!   answer (APPROX / INFEASIBLE) instead of occupying a worker.
//!
//! Two phases:
//!
//! 1. **Plan quality** — for every query, three executions timed end to
//!    end (plan + index build + sequential enumeration): the **adaptive**
//!    portfolio winner (portfolio-scoring overhead *included* in its
//!    time), **fixed naive-BFS** order, and the adversarial
//!    **worst-scoring** order among the ranked strategies. Counts are
//!    asserted bit-identical across all three; the estimator's q-error
//!    against the exact count is recorded, and each hopeless query is
//!    pushed through [`admit`] with a 1 ms deadline to show the
//!    degradation verdict.
//! 2. **Served deadline workload** — the same queries with a per-request
//!    `DEADLINE`, replayed against two real in-process servers: the
//!    default adaptive [`ServeConfig`] and the same server with
//!    `adaptive: false` (the pre-adaptive engine: fixed BFS plans and
//!    cooperative deadline cancellation). The headline speedup is the
//!    workload wall-time ratio, with per-query answer quality (exact /
//!    APPROX q-error / truncated partial count) reported beside it —
//!    degradation buys its speed with a quantified accuracy cost.
//!
//! Results land in `bench_results/adaptive.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ceci_core::{
    admit, count_embeddings, estimate_cost, plan_with_options, AdaptiveOptions, Admission, Ceci,
    CostEstimate, EstimateOptions, DEFAULT_NS_PER_UNIT,
};
use ceci_graph::generators::erdos_renyi;
use ceci_graph::{extract_query, io, Graph, GraphBuilder, LabelId};
use ceci_query::{OrderStrategy, PlanOptions, QueryGraph, QueryPlan};
use ceci_service::{start_with_state, Client, ServeConfig, ServerState};

use crate::datasets::Scale;
use crate::harness::geometric_mean;
use crate::json::JsonValue;
use crate::table::{fmt_duration, fmt_speedup, Table};

/// Headline target: served deadline-workload wall-time ratio — the fixed
/// pre-adaptive server over the adaptive server on the same MATCH+DEADLINE
/// stream. Recorded in the artifact; a shortfall prints a warning rather
/// than failing the run (wall-clock ratios are host-dependent), while
/// count identity is always asserted.
const TARGET_SPEEDUP: f64 = 1.3;

/// Requests per query template in the served phase (the second rep hits a
/// warm cache and, on the adaptive server, a stored plan choice).
const SERVED_REPS: usize = 2;

struct ClassSpec {
    name: &'static str,
    sizes: &'static [usize],
}

const CLASSES: [ClassSpec; 3] = [
    ClassSpec {
        name: "easy",
        sizes: &[3, 4],
    },
    ClassSpec {
        name: "hard",
        sizes: &[5, 6],
    },
    ClassSpec {
        name: "hopeless",
        sizes: &[7, 8],
    },
];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The data graph: Erdős–Rényi (average degree 10) relabeled with a skewed
/// 55/25/15/5 four-label alphabet. Deterministic per scale.
fn data_graph(scale: Scale) -> Graph {
    let n: usize = match scale {
        Scale::Quick => 1_600,
        Scale::Full => 5_000,
    };
    let base = erdos_renyi(n, 5 * n, 0xADA9);
    let mut b = GraphBuilder::new();
    for v in base.vertices() {
        let r = splitmix64(v.0 as u64 ^ 0xADA9) % 100;
        let label = if r < 55 {
            0
        } else if r < 80 {
            1
        } else if r < 95 {
            2
        } else {
            3
        };
        b.add_vertex(LabelId(label));
    }
    for v in base.vertices() {
        for &nb in base.neighbors(v) {
            if v < nb {
                b.add_edge(v, nb);
            }
        }
    }
    b.build()
}

struct Record {
    class: &'static str,
    size: usize,
    seed: u64,
    count: u64,
    qerr: f64,
    replanned: bool,
    t_adaptive: Duration,
    t_bfs: Duration,
    t_worst: Duration,
    score_time: Duration,
    estimate_time: Duration,
    verdict_1ms: Option<&'static str>,
}

fn timed_exact(graph: &Graph, plan: &QueryPlan, build: impl FnOnce() -> Ceci) -> (Duration, u64) {
    let start = Instant::now();
    let ceci = build();
    let count = count_embeddings(graph, plan, &ceci);
    (start.elapsed(), count)
}

/// Scores the same strategy × root portfolio the adaptive planner searches
/// and returns the plan the cost model likes *least* — the adversarial
/// baseline a naive planner could plausibly pick.
fn worst_order(query: &QueryGraph, graph: &Graph) -> PlanOptions {
    let mut worst: Option<(PlanOptions, f64)> = None;
    for order in [
        OrderStrategy::Bfs,
        OrderStrategy::EdgeRank,
        OrderStrategy::PathRank,
    ] {
        for root in query.vertices() {
            let options = PlanOptions {
                order,
                root_override: Some(root),
                ..Default::default()
            };
            let plan = QueryPlan::with_options(query.clone(), graph, &options);
            let ceci = Ceci::build(graph, &plan);
            let cost = estimate_cost(
                graph,
                &plan,
                &ceci,
                &EstimateOptions {
                    walks: 64,
                    seed: 0xBAD,
                },
            );
            let score = cost.work();
            if worst.as_ref().map_or(true, |(_, w)| score > *w) {
                worst = Some((options, score));
            }
        }
    }
    worst.expect("query has at least one vertex").0
}

fn verdict_name(cost: &CostEstimate) -> &'static str {
    match admit(cost, Duration::from_millis(1), DEFAULT_NS_PER_UNIT, 1) {
        Admission::Exact => "EXACT",
        Admission::Approx => "APPROX",
        Admission::Infeasible => "INFEASIBLE",
    }
}

/// One answer from the served deadline workload (last rep per template).
struct ServedAnswer {
    /// `exact`, `approx` (estimator answer), `partial` (deadline hit
    /// mid-enumeration, truncated count), or `infeasible` (refused).
    mode: &'static str,
    count: u64,
    latency: Duration,
}

struct ServedOutcome {
    elapsed: Duration,
    answers: Vec<ServedAnswer>,
    approx_answers: u64,
    infeasible: u64,
}

/// Both served configs pin one pool worker and one enumeration thread so
/// the comparison isolates execution *policy* (degrade vs run out the
/// clock), not scheduling noise on a shared host.
fn served_config(adaptive: bool) -> ServeConfig {
    ServeConfig {
        adaptive,
        pool_workers: 1,
        max_match_workers: 1,
        ..ServeConfig::default()
    }
}

/// Replays the query list `SERVED_REPS` times as `MATCH ... DEADLINE` on a
/// fresh server. The index cache is warmed with `LIMIT 1` probes first (on
/// both servers alike), so the timed loop compares execution policy on a
/// warm cache rather than build cost.
fn run_served(
    adaptive: bool,
    graph_path: &str,
    query_paths: &[String],
    deadline_ms: u64,
) -> ServedOutcome {
    let state = Arc::new(ServerState::new(served_config(adaptive)));
    let handle = start_with_state(Arc::clone(&state)).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let resp = client
        .request(&format!("LOAD g {graph_path}"))
        .expect("LOAD");
    assert!(resp.is_ok(), "LOAD failed: {}", resp.terminal);
    for path in query_paths {
        let warm = client
            .request(&format!("MATCH g {path} LIMIT 1"))
            .expect("warm-up MATCH");
        assert!(warm.is_ok(), "warm-up failed: {}", warm.terminal);
    }

    let mut answers: Vec<Option<ServedAnswer>> = query_paths.iter().map(|_| None).collect();
    let (mut approx_answers, mut infeasible) = (0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..SERVED_REPS {
        for (i, path) in query_paths.iter().enumerate() {
            let t_req = Instant::now();
            let resp = client
                .request(&format!("MATCH g {path} DEADLINE {deadline_ms}"))
                .expect("MATCH with deadline");
            let latency = t_req.elapsed();
            let answer = if !resp.is_ok() {
                assert!(
                    resp.terminal.starts_with("ERR E_INFEASIBLE"),
                    "unexpected error: {}",
                    resp.terminal
                );
                infeasible += 1;
                ServedAnswer {
                    mode: "infeasible",
                    count: 0,
                    latency,
                }
            } else {
                let count = resp.field_u64("count").expect("count field");
                let mode = if resp.field("mode") == Some("APPROX") {
                    approx_answers += 1;
                    "approx"
                } else if resp.field("status") == Some("DEADLINE_EXCEEDED") {
                    "partial"
                } else {
                    "exact"
                };
                ServedAnswer {
                    mode,
                    count,
                    latency,
                }
            };
            answers[i] = Some(answer);
        }
    }
    let elapsed = t0.elapsed();
    handle.shutdown();
    ServedOutcome {
        elapsed,
        answers: answers
            .into_iter()
            .map(|a| a.expect("every template answered"))
            .collect(),
        approx_answers,
        infeasible,
    }
}

/// Answer-quality factor against the exact count: 1.0 is perfect, higher is
/// worse, symmetric for over- and under-estimates (q-error). Refused
/// queries (`infeasible`) carry no answer and are skipped by the caller.
fn answer_qerr(answered: u64, exact: u64) -> f64 {
    let a = (answered as f64).max(1.0);
    let e = (exact as f64).max(1.0);
    (a / e).max(e / a)
}

/// Runs the sweep and writes `bench_results/adaptive.json`.
pub fn run(scale: Scale) {
    let seeds: u64 = match scale {
        Scale::Quick => 3,
        Scale::Full => 5,
    };
    let graph = data_graph(scale);
    println!(
        "Adaptive execution: portfolio planner vs fixed BFS vs worst-scoring \
         order (extracted queries on ER n={} m={}, skewed 4-label alphabet, exact counts \
         asserted bit-identical), scale {scale:?}\n",
        graph.num_vertices(),
        graph.num_edges(),
    );

    let mut records: Vec<Record> = Vec::new();
    let mut patterns: Vec<Graph> = Vec::new();
    for class in &CLASSES {
        for &size in class.sizes {
            for seed in 0..seeds {
                let Some(extracted) = extract_query(&graph, size, seed * 31 + size as u64, 10)
                else {
                    continue;
                };
                let Ok(query) = QueryGraph::from_graph(&extracted.pattern) else {
                    continue;
                };

                // Adaptive: the portfolio scoring pays its own way — the
                // clock starts before plan_with_options.
                let start = Instant::now();
                let (plan, choice) = plan_with_options(
                    query.clone(),
                    &graph,
                    &PlanOptions {
                        order: OrderStrategy::Adaptive,
                        ..Default::default()
                    },
                    &AdaptiveOptions::default(),
                );
                let ceci = Ceci::build(&graph, &plan);
                let count = count_embeddings(&graph, &plan, &ceci);
                let t_adaptive = start.elapsed();
                let choice = choice.expect("Adaptive order always yields a choice");

                // The estimator the APPROX path would answer from, timed to
                // show degradation latency vs the exact runs.
                let est_start = Instant::now();
                let est = estimate_cost(&graph, &plan, &ceci, &EstimateOptions::default());
                let estimate_time = est_start.elapsed();

                // Fixed BFS baseline (the pre-adaptive default plan).
                let plan_bfs = QueryPlan::new(query.clone(), &graph);
                let (t_bfs, n_bfs) =
                    timed_exact(&graph, &plan_bfs, || Ceci::build(&graph, &plan_bfs));

                // Adversarial baseline: the portfolio plan the cost model
                // scores worst (selection not charged to its time).
                let worst = worst_order(&query, &graph);
                let plan_worst = QueryPlan::with_options(query.clone(), &graph, &worst);
                let (t_worst, n_worst) =
                    timed_exact(&graph, &plan_worst, || Ceci::build(&graph, &plan_worst));

                assert_eq!(
                    count, n_bfs,
                    "adaptive vs BFS count, size {size} seed {seed}"
                );
                assert_eq!(
                    count, n_worst,
                    "adaptive vs worst count, size {size} seed {seed}"
                );

                let a = (count as f64).max(1.0);
                let e = est.estimate.mean.max(1.0);
                records.push(Record {
                    class: class.name,
                    size,
                    seed,
                    count,
                    qerr: (e / a).max(a / e),
                    replanned: choice.replanned,
                    t_adaptive,
                    t_bfs,
                    t_worst,
                    score_time: choice.score_time,
                    estimate_time,
                    verdict_1ms: (class.name == "hopeless").then(|| verdict_name(&choice.cost)),
                });
                patterns.push(extracted.pattern);
            }
        }
    }

    let mut t = Table::new(vec![
        "class", "size", "seed", "count", "adaptive", "BFS", "worst", "vs BFS", "vs worst",
        "q-error", "replan",
    ]);
    for r in &records {
        t.row(vec![
            r.class.to_string(),
            r.size.to_string(),
            r.seed.to_string(),
            r.count.to_string(),
            fmt_duration(r.t_adaptive),
            fmt_duration(r.t_bfs),
            fmt_duration(r.t_worst),
            fmt_speedup(r.t_bfs.as_secs_f64() / r.t_adaptive.as_secs_f64().max(1e-12)),
            fmt_speedup(r.t_worst.as_secs_f64() / r.t_adaptive.as_secs_f64().max(1e-12)),
            format!("{:.2}", r.qerr),
            if r.replanned { "yes" } else { "no" }.to_string(),
        ]);
    }
    t.print();

    let ratios = |pred: &dyn Fn(&Record) -> bool, base: &dyn Fn(&Record) -> Duration| -> Vec<f64> {
        records
            .iter()
            .filter(|r| pred(r))
            .map(|r| base(r).as_secs_f64() / r.t_adaptive.as_secs_f64().max(1e-12))
            .collect()
    };
    let order_matters = |r: &Record| r.class != "easy";
    let vs_bfs_hard = geometric_mean(&ratios(&order_matters, &|r| r.t_bfs));
    let vs_bfs_all = geometric_mean(&ratios(&|_| true, &|r| r.t_bfs));
    let vs_worst_all = geometric_mean(&ratios(&|_| true, &|r| r.t_worst));
    // Plan quality alone: the same ratios with the portfolio-scoring time
    // subtracted from the adaptive clock, isolating the chosen plan's
    // execution from the cost of choosing it.
    let plan_only: Vec<f64> = records
        .iter()
        .map(|r| {
            let exec = r.t_adaptive.saturating_sub(r.score_time);
            r.t_bfs.as_secs_f64() / exec.as_secs_f64().max(1e-12)
        })
        .collect();
    let vs_bfs_plan_only = geometric_mean(&plan_only);
    let qerrs: Vec<f64> = records.iter().map(|r| r.qerr).collect();
    let qerr_geo = geometric_mean(&qerrs);

    println!(
        "\ngeomean speedup vs fixed BFS: {} on hard+hopeless, {} over all classes \
         ({} with portfolio-scoring overhead excluded — plan quality is at parity \
         with CECI's near-oracle default and the win comes from degradation below)",
        fmt_speedup(vs_bfs_hard),
        fmt_speedup(vs_bfs_all),
        fmt_speedup(vs_bfs_plan_only),
    );
    println!(
        "geomean speedup vs worst-scoring portfolio plan: {} — the spread the \
         planner navigates",
        fmt_speedup(vs_worst_all)
    );
    println!("estimator q-error geomean: {qerr_geo:.2}");

    let hopeless: Vec<&Record> = records.iter().filter(|r| r.verdict_1ms.is_some()).collect();
    if !hopeless.is_empty() {
        println!("\nDeadline admission at 1 ms (hopeless class):\n");
        let mut t = Table::new(vec![
            "size",
            "seed",
            "verdict",
            "estimator answer",
            "exact run",
        ]);
        for r in &hopeless {
            t.row(vec![
                r.size.to_string(),
                r.seed.to_string(),
                r.verdict_1ms.unwrap_or("-").to_string(),
                fmt_duration(r.estimate_time),
                fmt_duration(r.t_adaptive),
            ]);
        }
        t.print();
        let degraded = hopeless
            .iter()
            .filter(|r| r.verdict_1ms != Some("EXACT"))
            .count();
        println!(
            "\n{degraded}/{} hopeless queries degrade instead of occupying a worker",
            hopeless.len()
        );
    }

    // ---- Phase 2: served deadline workload ------------------------------
    let deadline_ms: u64 = match scale {
        Scale::Quick => 25,
        Scale::Full => 100,
    };
    println!(
        "\nServed deadline workload: {} templates x {SERVED_REPS} reps of \
         `MATCH ... DEADLINE {deadline_ms}`, adaptive server vs the same \
         server with --no-adaptive (fixed BFS plans, cooperative deadline \
         cancellation), warm index cache:\n",
        records.len()
    );
    let dir = std::env::temp_dir().join(format!("ceci-adaptive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let write = |name: &str, g: &Graph| -> String {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create graph file");
        io::write_labeled(g, &mut f).expect("write graph file");
        path.display().to_string()
    };
    let graph_path = write("data.graph", &graph);
    let query_paths: Vec<String> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| write(&format!("q{i}.graph"), p))
        .collect();

    let fixed = run_served(false, &graph_path, &query_paths, deadline_ms);
    let served = run_served(true, &graph_path, &query_paths, deadline_ms);

    let mut t = Table::new(vec![
        "class", "size", "seed", "exact", "adaptive", "count", "latency", "fixed", "count",
        "latency",
    ]);
    let (mut qerr_adaptive, mut qerr_fixed) = (Vec::new(), Vec::new());
    for ((r, a), f) in records.iter().zip(&served.answers).zip(&fixed.answers) {
        // Exact answers are perfect by definition; degraded answers pay a
        // measured accuracy cost. Refusals carry no answer to score.
        if a.mode != "infeasible" {
            qerr_adaptive.push(answer_qerr(a.count, r.count));
        }
        if f.mode != "infeasible" {
            qerr_fixed.push(answer_qerr(f.count, r.count));
        }
        t.row(vec![
            r.class.to_string(),
            r.size.to_string(),
            r.seed.to_string(),
            r.count.to_string(),
            a.mode.to_string(),
            a.count.to_string(),
            fmt_duration(a.latency),
            f.mode.to_string(),
            f.count.to_string(),
            fmt_duration(f.latency),
        ]);
    }
    t.print();

    let served_speedup = fixed.elapsed.as_secs_f64() / served.elapsed.as_secs_f64().max(1e-12);
    let qerr_served_adaptive = geometric_mean(&qerr_adaptive);
    let qerr_served_fixed = geometric_mean(&qerr_fixed);
    println!(
        "\nworkload wall time: adaptive {} vs fixed {} — speedup {} \
         (target {TARGET_SPEEDUP}x)",
        fmt_duration(served.elapsed),
        fmt_duration(fixed.elapsed),
        fmt_speedup(served_speedup),
    );
    println!(
        "answer quality (geomean q-error, 1.0 = exact): adaptive {:.2} \
         ({} APPROX, {} refused) vs fixed {:.2} (truncated partial counts)",
        qerr_served_adaptive, served.approx_answers, served.infeasible, qerr_served_fixed,
    );
    if served_speedup < TARGET_SPEEDUP {
        println!("warning: served-workload speedup below target on this host/run");
    }

    let rows: Vec<JsonValue> = records
        .iter()
        .map(|r| {
            let mut v = JsonValue::object()
                .field("class", r.class)
                .field("size", r.size as u64)
                .field("seed", r.seed)
                .field("count", r.count)
                .field("qerr", r.qerr)
                .field("replanned", r.replanned)
                .field("adaptive_ns", r.t_adaptive.as_nanos() as u64)
                .field("bfs_ns", r.t_bfs.as_nanos() as u64)
                .field("worst_ns", r.t_worst.as_nanos() as u64)
                .field("score_ns", r.score_time.as_nanos() as u64)
                .field("estimate_ns", r.estimate_time.as_nanos() as u64)
                .field(
                    "speedup_vs_bfs",
                    r.t_bfs.as_secs_f64() / r.t_adaptive.as_secs_f64().max(1e-12),
                )
                .field(
                    "speedup_vs_worst",
                    r.t_worst.as_secs_f64() / r.t_adaptive.as_secs_f64().max(1e-12),
                );
            if let Some(verdict) = r.verdict_1ms {
                v = v.field("verdict_1ms", verdict);
            }
            v
        })
        .collect();
    let served_rows: Vec<JsonValue> = records
        .iter()
        .zip(&served.answers)
        .zip(&fixed.answers)
        .map(|((r, a), f)| {
            JsonValue::object()
                .field("class", r.class)
                .field("size", r.size as u64)
                .field("seed", r.seed)
                .field("exact_count", r.count)
                .field("adaptive_mode", a.mode)
                .field("adaptive_count", a.count)
                .field("adaptive_latency_ns", a.latency.as_nanos() as u64)
                .field("fixed_mode", f.mode)
                .field("fixed_count", f.count)
                .field("fixed_latency_ns", f.latency.as_nanos() as u64)
        })
        .collect();
    let served_json = JsonValue::object()
        .field("deadline_ms", deadline_ms)
        .field("reps", SERVED_REPS as u64)
        .field("adaptive_elapsed_ns", served.elapsed.as_nanos() as u64)
        .field("fixed_elapsed_ns", fixed.elapsed.as_nanos() as u64)
        .field("speedup", served_speedup)
        .field("adaptive_qerr_geomean", qerr_served_adaptive)
        .field("fixed_qerr_geomean", qerr_served_fixed)
        .field("approx_answers", served.approx_answers)
        .field("infeasible_rejects", served.infeasible)
        .field("answers", JsonValue::Array(served_rows));
    let json = JsonValue::object()
        .field("data_vertices", graph.num_vertices() as u64)
        .field("data_edges", graph.num_edges() as u64)
        .field("queries", rows.len() as u64)
        .field("records", JsonValue::Array(rows))
        .field("speedup_vs_bfs_hard", vs_bfs_hard)
        .field("speedup_vs_bfs_all", vs_bfs_all)
        .field("speedup_vs_bfs_plan_only", vs_bfs_plan_only)
        .field("speedup_vs_worst_all", vs_worst_all)
        .field("qerr_geomean", qerr_geo)
        .field("served", served_json)
        .field("target_speedup", TARGET_SPEEDUP)
        .field("counts_bit_identical", true)
        .to_pretty();

    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    } else {
        let path = dir.join("adaptive.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_order_returns_a_portfolio_plan() {
        let graph = data_graph(Scale::Quick);
        let extracted = extract_query(&graph, 6, 5, 10).expect("extractable");
        let query = QueryGraph::from_graph(&extracted.pattern).expect("valid query");
        let w = worst_order(&query, &graph);
        assert!(matches!(
            w.order,
            OrderStrategy::Bfs | OrderStrategy::EdgeRank | OrderStrategy::PathRank
        ));
        let root = w.root_override.expect("adversarial plan pins a root");
        assert!(query.vertices().any(|v| v == root));
    }
}
