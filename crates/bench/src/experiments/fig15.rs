//! Figure 15 — CPU usage over the program lifetime: low during serialized
//! load/preprocess/filter phases, near-100% during enumeration (which
//! dominates the runtime).

use ceci_core::{
    enumerate_parallel, Ceci, ParallelOptions, Phase, PhaseTimeline, Strategy, VerifyMode,
};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::experiments::default_workers;
use crate::table::{fmt_duration, Table};

/// Runs Figure 15 on the OK stand-in (the paper uses Orkut, 32 threads).
pub fn run(scale: Scale) {
    let workers = default_workers();
    println!(
        "Figure 15: phase-tagged utilization on OK stand-in ({workers} workers), scale {scale:?}\n"
    );
    let mut t = Table::new(vec![
        "Query",
        "phase",
        "wall",
        "% of total",
        "active workers",
        "utilization",
    ]);
    for q in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
        let mut timeline = PhaseTimeline::new();
        let graph = timeline.record(Phase::Load, 1, || Dataset::Ok.build(scale));
        let plan = timeline.record(Phase::Preprocess, 1, || QueryPlan::new(q.build(), &graph));
        let ceci = timeline.record(Phase::Filter, 1, || Ceci::build(&graph, &plan));
        timeline.record(Phase::Enumerate, workers, || {
            enumerate_parallel(
                &graph,
                &plan,
                &ceci,
                &ParallelOptions {
                    workers,
                    strategy: Strategy::FineDynamic { beta: 0.2 },
                    verify: VerifyMode::Intersection,
                    kernel: Default::default(),
                    limit: None,
                    collect: false,
                    build_threads: 1,
                    profile: false,
                    prune_redundant: false,
                },
            )
        });
        let total = timeline.total().as_secs_f64();
        for span in timeline.spans() {
            t.row(vec![
                q.name().to_string(),
                span.phase.name().to_string(),
                fmt_duration(span.duration),
                format!("{:.1}%", 100.0 * span.duration.as_secs_f64() / total),
                span.active_workers.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * span.active_workers.min(workers) as f64 / workers as f64
                ),
            ]);
        }
        t.row(vec![
            q.name().to_string(),
            "MEAN".to_string(),
            fmt_duration(timeline.total()),
            "100%".to_string(),
            String::new(),
            format!("{:.0}%", 100.0 * timeline.mean_utilization(workers)),
        ]);
    }
    t.print();
    println!(
        "\n(paper shape: enumeration takes >95% of runtime at ~100% per-core utilization; \
         serialized load/CECI phases keep early utilization low)"
    );
}
