//! Figure 18 — reduction in recursive calls: CECI vs PsgL-lite for
//! QG1–QG5. Recursive calls approximate the explored search space (§6.6);
//! the paper reports up to 44% reduction, growing with query complexity.

use ceci_query::PaperQuery;

use crate::datasets::{Dataset, Scale};
use crate::experiments::run_psgl;
use crate::harness::run_ceci;
use crate::table::{fmt_count, Table};

/// Runs Figure 18 on a few stand-ins.
pub fn run(scale: Scale) {
    println!(
        "Figure 18: %% reduction of recursive calls by CECI over PsgL-lite, scale {scale:?}\n"
    );
    for d in [Dataset::Wg, Dataset::Wt, Dataset::Lj] {
        let graph = d.build(scale);
        let mut t = Table::new(vec![
            "Query",
            "CECI recursive calls",
            "PsgL recursive calls",
            "reduction",
        ]);
        for q in PaperQuery::ALL {
            let (_, cc, cn) = run_ceci(&graph, q.build(), 1, None);
            let (_, pc, pn) = run_psgl(&graph, q.build(), 1);
            assert_eq!(cn, pn, "{} on {}", q.name(), d.abbrev());
            let reduction = if pc.recursive_calls > 0 {
                100.0 * (1.0 - cc.recursive_calls as f64 / pc.recursive_calls as f64)
            } else {
                0.0
            };
            t.row(vec![
                q.name().to_string(),
                fmt_count(cc.recursive_calls),
                fmt_count(pc.recursive_calls),
                format!("{reduction:.1}%"),
            ]);
        }
        println!("{}:", d.abbrev());
        t.print();
        println!();
    }
    println!(
        "(paper shape: up to 44% fewer recursive calls, with the benefit growing as the \
         query gains non-tree edges)"
    );
}
