//! Figures 7 & 8 — CECI vs DualSim-lite vs PsgL-lite, all embeddings.
//!
//! Figure 7 runs QG1 and QG4 across the eight unlabeled datasets; Figure 8
//! runs QG2, QG3, QG5 on WG, WT, LJ (the paper omits the rest because PsgL
//! cannot finish them — our stand-ins are small enough that everything
//! completes, but the ordering/shape comparison is what matters).

use ceci_query::PaperQuery;

use crate::datasets::{Dataset, Scale};
use crate::experiments::{default_workers, run_dualsim, run_psgl};
use crate::harness::{geometric_mean, persist_records, run_ceci, RunRecord};
use crate::table::{fmt_count, fmt_duration, fmt_speedup, Table};

/// Runs Figure 7 (QG1, QG4 × eight datasets).
pub fn run_fig7(scale: Scale) {
    run_comparison(
        "Figure 7",
        "fig7",
        &[PaperQuery::Qg1, PaperQuery::Qg4],
        &Dataset::UNLABELED,
        scale,
    );
}

/// Runs Figure 8 (QG2, QG3, QG5 × WG, WT, LJ).
pub fn run_fig8(scale: Scale) {
    run_comparison(
        "Figure 8",
        "fig8",
        &[PaperQuery::Qg2, PaperQuery::Qg3, PaperQuery::Qg5],
        &[Dataset::Wg, Dataset::Wt, Dataset::Lj],
        scale,
    );
}

fn run_comparison(
    title: &str,
    persist_name: &str,
    queries: &[PaperQuery],
    datasets: &[Dataset],
    scale: Scale,
) {
    let workers = default_workers();
    println!(
        "{title}: listing ALL embeddings — CECI ({workers} workers) vs DualSim-lite vs \
         PsgL-lite ({workers} workers), scale {scale:?}\n"
    );
    let mut records = Vec::new();
    let mut speedup_dual = Vec::new();
    let mut speedup_psgl = Vec::new();
    for &q in queries {
        let mut t = Table::new(vec![
            "Dataset",
            "embeddings",
            "CECI",
            "DualSim-lite",
            "PsgL-lite",
            "vs DualSim",
            "vs PsgL",
        ]);
        for &d in datasets {
            let graph = d.build(scale);
            let (ceci_t, ceci_c, ceci_n) = run_ceci(&graph, q.build(), workers, None);
            let (dual_t, dual_c, dual_n) = run_dualsim(&graph, q.build());
            let (psgl_t, psgl_c, psgl_n) = run_psgl(&graph, q.build(), workers);
            assert_eq!(
                ceci_n,
                dual_n,
                "{title} {} {}: count mismatch",
                q.name(),
                d.abbrev()
            );
            assert_eq!(
                ceci_n,
                psgl_n,
                "{title} {} {}: count mismatch",
                q.name(),
                d.abbrev()
            );
            let sd = dual_t.as_secs_f64() / ceci_t.as_secs_f64();
            let sp = psgl_t.as_secs_f64() / ceci_t.as_secs_f64();
            speedup_dual.push(sd);
            speedup_psgl.push(sp);
            t.row(vec![
                d.abbrev().to_string(),
                fmt_count(ceci_n),
                fmt_duration(ceci_t),
                fmt_duration(dual_t),
                fmt_duration(psgl_t),
                fmt_speedup(sd),
                fmt_speedup(sp),
            ]);
            records.push(RunRecord::new(
                "ceci",
                d.abbrev(),
                q.name(),
                workers,
                ceci_t,
                &ceci_c,
            ));
            records.push(RunRecord::new(
                "dualsim-lite",
                d.abbrev(),
                q.name(),
                1,
                dual_t,
                &dual_c,
            ));
            records.push(RunRecord::new(
                "psgl-lite",
                d.abbrev(),
                q.name(),
                workers,
                psgl_t,
                &psgl_c,
            ));
        }
        println!("{}:", q.name());
        t.print();
        println!();
    }
    println!(
        "geomean speedup: {} over DualSim-lite, {} over PsgL-lite",
        fmt_speedup(geometric_mean(&speedup_dual)),
        fmt_speedup(geometric_mean(&speedup_psgl))
    );
    println!(
        "(paper, Figs 7+8: CECI beats DualSim by 1.7-19.8x and PsgL by 4.1-86.7x on average \
         per query; expect the same ordering, not the same constants)"
    );
    persist_records(persist_name, &records);
}
