//! Figure 19 — breakdown of CECI's speedup over the bare-graph baseline
//! into its techniques, by toggling them cumulatively:
//!
//! 1. `bare`        — backtracking on the raw graph (the baseline),
//! 2. `+index`      — CECI TE tables, no refinement, edge verification,
//! 3. `+refine`     — plus reverse-BFS refinement,
//! 4. `+intersect`  — plus NTE tables and intersection (full CECI).
//!
//! All runs include index construction time, as the paper does.

use std::time::{Duration, Instant};

use ceci_baselines::{enumerate_bare, BareOptions};
use ceci_core::{enumerate_parallel, BuildOptions, Ceci, ParallelOptions, Strategy, VerifyMode};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::experiments::default_workers;
use crate::table::{fmt_duration, fmt_speedup, Table};

fn timed_ceci_variant(
    graph: &ceci_graph::Graph,
    q: PaperQuery,
    workers: usize,
    build: BuildOptions,
    verify: VerifyMode,
) -> (Duration, u64) {
    let start = Instant::now();
    let plan = QueryPlan::new(q.build(), graph);
    let ceci = Ceci::build_with(graph, &plan, build);
    let result = enumerate_parallel(
        graph,
        &plan,
        &ceci,
        &ParallelOptions {
            workers,
            strategy: Strategy::CoarseDynamic, // same distribution for all variants
            verify,
            kernel: Default::default(),
            limit: None,
            collect: false,
            build_threads: 1,
            profile: false,
            prune_redundant: false,
        },
    );
    (start.elapsed(), result.total_embeddings)
}

/// Runs Figure 19.
pub fn run(scale: Scale) {
    let workers = default_workers();
    println!(
        "Figure 19: speedup over the bare-graph baseline, technique by technique \
         ({workers} workers, CGD for all variants), scale {scale:?}\n"
    );
    for d in [Dataset::Wt, Dataset::Lj] {
        let graph = d.build(scale);
        let mut t = Table::new(vec![
            "Query",
            "bare",
            "+index",
            "+refine",
            "+intersect",
            "speedup(final)",
        ]);
        for q in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
            let (bare, bn) = {
                let start = Instant::now();
                let plan = QueryPlan::new(q.build(), &graph);
                let r = enumerate_bare(
                    &graph,
                    &plan,
                    &BareOptions {
                        workers,
                        ..Default::default()
                    },
                );
                (start.elapsed(), r.total_embeddings)
            };
            let (idx, idx_n) = timed_ceci_variant(
                &graph,
                q,
                workers,
                BuildOptions {
                    build_nte: false,
                    refine: false,
                    ..BuildOptions::default()
                },
                VerifyMode::EdgeVerification,
            );
            let (refine, refine_n) = timed_ceci_variant(
                &graph,
                q,
                workers,
                BuildOptions {
                    build_nte: false,
                    refine: true,
                    ..BuildOptions::default()
                },
                VerifyMode::EdgeVerification,
            );
            let (full, full_n) = timed_ceci_variant(
                &graph,
                q,
                workers,
                BuildOptions {
                    build_nte: true,
                    refine: true,
                    ..BuildOptions::default()
                },
                VerifyMode::Intersection,
            );
            assert_eq!(bn, idx_n);
            assert_eq!(bn, refine_n);
            assert_eq!(bn, full_n);
            t.row(vec![
                q.name().to_string(),
                fmt_duration(bare),
                fmt_duration(idx),
                fmt_duration(refine),
                fmt_duration(full),
                fmt_speedup(bare.as_secs_f64() / full.as_secs_f64()),
            ]);
        }
        println!("{}:", d.abbrev());
        t.print();
        println!();
    }
    println!(
        "(paper: CECI including construction overhead is up to two orders of magnitude \
         faster than bare-graph listing; construction takes <5% of total runtime)"
    );
}
