//! §8 future work — physical decomposition: each machine holds only the
//! radius-`depth(T_q)` fragment around its pivots instead of the whole
//! graph. The headline is the per-machine memory share as machines scale.

use ceci_distributed::{run_physical, ClusterConfig};
use ceci_query::{PaperQuery, QueryPlan};

use crate::datasets::{Dataset, Scale};
use crate::table::{fmt_duration, Table};

/// Runs the physical-decomposition experiment.
pub fn run(scale: Scale) {
    println!(
        "Future work (§8): physical decomposition — per-machine graph fragments instead \
         of a replicated graph, scale {scale:?}\n"
    );
    for d in [Dataset::Wt, Dataset::Lj] {
        let graph = d.build(scale);
        for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
            let plan = QueryPlan::new(q.build(), &graph);
            let mut t = Table::new(vec![
                "machines",
                "embeddings",
                "max fragment edges",
                "max edge share",
                "mean edge share",
                "extract (max)",
                "match (max)",
            ]);
            for machines in [1usize, 2, 4, 8, 16] {
                let cfg = ClusterConfig {
                    machines,
                    jaccard_colocation: false,
                    ..Default::default()
                };
                let result = run_physical(&graph, &plan, &cfg);
                let max_edges = result
                    .reports
                    .iter()
                    .map(|r| r.fragment_edges)
                    .max()
                    .unwrap_or(0);
                let mean_frac = result.reports.iter().map(|r| r.edge_fraction).sum::<f64>()
                    / result.reports.len().max(1) as f64;
                let extract = result
                    .reports
                    .iter()
                    .map(|r| r.extract_time)
                    .max()
                    .unwrap_or_default();
                let match_t = result
                    .reports
                    .iter()
                    .map(|r| r.match_time)
                    .max()
                    .unwrap_or_default();
                t.row(vec![
                    machines.to_string(),
                    result.total_embeddings.to_string(),
                    max_edges.to_string(),
                    format!("{:.0}%", 100.0 * result.max_edge_fraction),
                    format!("{:.0}%", 100.0 * mean_frac),
                    fmt_duration(extract),
                    fmt_duration(match_t),
                ]);
            }
            println!("{} / {}:", d.abbrev(), q.name());
            t.print();
            println!();
        }
    }
    println!(
        "(embedding counts stay exact while the mean per-machine share of the graph \
         shrinks with machine count — the property that would let the logical \
         decomposition scale to trillion-edge graphs; hub fragments bound the max share \
         in power-law graphs)"
    );
}
