//! Multi-process sharded serving sweep: real `ceci-shard` processes under
//! process-level faults.
//!
//! The cross-process port of the fault-injection sweep: a coordinator
//! scatters each query's pivots over a fleet of real shard processes on
//! loopback and the sweep replays fault scenarios — SIGKILL mid-query,
//! a stalling straggler, kill + restart on the same port — against the
//! fault-free fleet. Every scenario **asserts the committed total is
//! bit-identical to a single-process run**; what varies is the recovery
//! cost (re-scatters, stale-rejected commits, reconnects, local fallbacks)
//! and the makespan inflation. Results land in `bench_results/shard.json`.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ceci_core::{count_embeddings, Ceci};
use ceci_query::{PaperQuery, QueryPlan};
use ceci_service::{scatter_match, Client, CoordConfig, RetryPolicy, ScatterReport, ShardSet};

use crate::datasets::{Dataset, Scale};
use crate::json::JsonValue;
use crate::table::Table;

/// Locates the release `ceci-shard` binary next to this executable,
/// building it on demand the first time.
fn shard_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("bench executable path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("ceci-shard");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut cmd = Command::new(cargo);
        cmd.args(["build", "-p", "ceci-service", "--bin", "ceci-shard"]);
        if dir.ends_with("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("run cargo build for ceci-shard");
        assert!(status.success(), "building ceci-shard failed");
    }
    assert!(bin.exists(), "ceci-shard binary not found at {bin:?}");
    bin
}

/// One spawned shard process; SIGKILLed on drop.
struct ShardProc {
    child: Child,
    addr: String,
}

impl ShardProc {
    fn spawn(graph_path: &Path, addr: &str) -> ShardProc {
        let mut child = Command::new(shard_bin())
            .arg("--graph")
            .arg(graph_path)
            .args([
                "--labeled",
                "--addr",
                addr,
                "--chaos",
                "--io-timeout-ms",
                "0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ceci-shard");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("shard exited before listening")
                .expect("read shard stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_string();
            }
        };
        ShardProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn chaos(&self, command: &str) {
        let resp = Client::connect(self.addr.as_str())
            .expect("connect for chaos arm")
            .request(command)
            .expect("chaos request");
        assert!(resp.is_ok(), "chaos arm failed: {}", resp.terminal);
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn coord_config() -> CoordConfig {
    CoordConfig {
        io_timeout: Duration::from_millis(2_000),
        connect_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 0xCEC1,
        },
        attempt_budget: 2,
        rejoin_interval: Duration::from_millis(100),
        hard_wall: Duration::from_secs(120),
    }
}

enum Fault {
    None,
    /// SIGKILL shard 0 this long after the scatter starts.
    Kill(Duration),
    /// Arm `CHAOS STALL <ms>` on shard 0 before the scatter.
    Stall(u64),
    /// SIGKILL shard 0 after the first delay, restart it on the same port
    /// after the second.
    KillRestart(Duration, Duration),
}

struct Scenario {
    name: &'static str,
    fault: Fault,
}

/// Runs one scattered query over a fresh fleet under `fault`.
fn run_one(
    graph: &ceci_graph::Graph,
    plan: &QueryPlan,
    graph_path: &Path,
    query_path: &Path,
    machines: usize,
    fault: &Fault,
) -> ScatterReport {
    let mut fleet: Vec<ShardProc> = (0..machines)
        .map(|_| ShardProc::spawn(graph_path, "127.0.0.1:0"))
        .collect();
    if let Fault::Stall(ms) = fault {
        fleet[0].chaos(&format!("CHAOS STALL {ms}"));
    }
    let set = ShardSet::new(
        &fleet
            .iter()
            .map(|p| p.addr.clone())
            .collect::<Vec<String>>(),
    );
    let config = coord_config();
    let qpath = query_path.to_str().expect("utf-8 query path");
    std::thread::scope(|scope| {
        let t = scope.spawn(|| scatter_match(graph, plan, qpath, "bench", &set, &config));
        match fault {
            Fault::Kill(after) => {
                std::thread::sleep(*after);
                fleet[0].kill();
            }
            Fault::KillRestart(kill_after, restart_after) => {
                let port_addr = fleet[0].addr.clone();
                std::thread::sleep(*kill_after);
                fleet[0].kill();
                std::thread::sleep(*restart_after);
                fleet[0] = ShardProc::spawn(graph_path, &port_addr);
            }
            Fault::None | Fault::Stall(_) => {}
        }
        t.join().expect("scatter thread")
    })
}

/// Runs the sweep and writes `bench_results/shard.json`.
pub fn run(scale: Scale) {
    println!(
        "Multi-process sharded serving: SIGKILL / stall / restart recovery over real \
         shard processes, scale {scale:?}\n"
    );
    let queries: &[PaperQuery] = match scale {
        Scale::Quick => &[PaperQuery::Qg1],
        Scale::Full => &[PaperQuery::Qg1, PaperQuery::Qg3],
    };
    let dataset = Dataset::Wt;
    let graph = dataset.build(scale);

    let dir = std::env::temp_dir().join(format!("ceci-bench-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let graph_path = dir.join("g.graph");
    let mut f = std::fs::File::create(&graph_path).expect("create graph file");
    ceci_graph::io::write_labeled(&graph, &mut f).expect("write graph file");

    let mut rows = Vec::new();
    let mut scenarios_checked = 0u64;

    for &q in queries {
        let qg = q.build();
        let query_path = dir.join(format!("{}.graph", q.name()));
        let mut f = std::fs::File::create(&query_path).expect("create query file");
        ceci_graph::io::write_labeled(qg.as_graph(), &mut f).expect("write query file");
        let plan = QueryPlan::new(qg, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let oracle = count_embeddings(&graph, &plan, &ceci);

        for machines in [2usize, 4] {
            // The fault-free run is both a scenario and the timing
            // baseline: fault points are placed at fractions of its wall so
            // "kill at 25%" means the same thing at every scale.
            let baseline = run_one(
                &graph,
                &plan,
                &graph_path,
                &query_path,
                machines,
                &Fault::None,
            );
            assert_eq!(
                baseline.total,
                oracle,
                "{} x{machines}: fault-free scatter diverged from single-process",
                q.name()
            );
            let at = |f: f64| {
                Duration::from_nanos((baseline.wall.as_nanos() as f64 * f).max(1.0) as u64)
            };
            let scenarios = [
                Scenario {
                    name: "fault-free",
                    fault: Fault::None,
                },
                Scenario {
                    name: "SIGKILL s0 @25%",
                    fault: Fault::Kill(at(0.25)),
                },
                Scenario {
                    name: "stall s0 20ms",
                    fault: Fault::Stall(20),
                },
                Scenario {
                    name: "kill+restart s0",
                    fault: Fault::KillRestart(at(0.25), at(0.25)),
                },
            ];

            let mut t = Table::new(vec![
                "scenario",
                "embeddings",
                "shard commits",
                "local",
                "rescatters",
                "stale",
                "reconnects",
                "wall ms",
                "inflation",
            ]);
            for s in &scenarios {
                let report = match s.fault {
                    // Reuse the already-measured baseline run.
                    Fault::None => copy_report(&baseline),
                    _ => run_one(&graph, &plan, &graph_path, &query_path, machines, &s.fault),
                };
                assert_eq!(
                    report.total,
                    oracle,
                    "{} x{machines} {}: counts must survive process faults",
                    q.name(),
                    s.name
                );
                scenarios_checked += 1;
                let inflation = report.wall.as_secs_f64() / baseline.wall.as_secs_f64().max(1e-9);
                t.row(vec![
                    s.name.to_string(),
                    report.total.to_string(),
                    report.shard_commits.to_string(),
                    report.local_fallback.to_string(),
                    report.rescatters.to_string(),
                    report.stale_rejected.to_string(),
                    report.reconnects.to_string(),
                    format!("{:.1}", report.wall.as_secs_f64() * 1e3),
                    format!("{inflation:.2}x"),
                ]);
                rows.push(
                    JsonValue::object()
                        .field("dataset", dataset.abbrev())
                        .field("query", q.name())
                        .field("scenario", s.name)
                        .field("shards", machines as u64)
                        .field("embeddings", report.total)
                        .field("matches_single_process", true)
                        .field("shard_commits", report.shard_commits)
                        .field("local_fallback", report.local_fallback)
                        .field("rescatters", report.rescatters)
                        .field("stale_rejected", report.stale_rejected)
                        .field("reconnects", report.reconnects)
                        .field("wall_ms", report.wall.as_secs_f64() * 1e3)
                        .field("makespan_inflation", inflation),
                );
            }
            println!("{} / {} / {machines} shards:", dataset.abbrev(), q.name());
            t.print();
            println!();
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "(all {scenarios_checked} process-fault scenarios committed counts bit-identical \
         to the single-process oracle — SIGKILLs, stalls, and restarts change the cost \
         columns, never the answer)"
    );

    let out = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("warning: cannot create {}: {e}", out.display());
        return;
    }
    let json = JsonValue::object()
        .field("dataset", dataset.abbrev())
        .field("scenarios_checked", scenarios_checked)
        .field("all_counts_match_oracle", true)
        .field("runs", JsonValue::Array(rows))
        .to_pretty();
    let path = out.join("shard.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

/// Clones a report's fields (ScatterReport is not `Clone`; the baseline is
/// reused as the fault-free scenario rather than re-run).
fn copy_report(r: &ScatterReport) -> ScatterReport {
    ScatterReport {
        total: r.total,
        shard_commits: r.shard_commits,
        local_fallback: r.local_fallback,
        rescatters: r.rescatters,
        stale_rejected: r.stale_rejected,
        reconnects: r.reconnects,
        wall: r.wall,
    }
}
