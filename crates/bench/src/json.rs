//! Minimal JSON writer.
//!
//! The workspace's offline build cannot pull `serde`/`serde_json`, and the
//! bench harness only ever *writes* flat records, so this module provides
//! just that: a [`JsonValue`] tree with object/array builders and a
//! pretty-printer. Strings are escaped per RFC 8259; floats use shortest
//! round-trip formatting.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() requires a JSON object"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_in_order() {
        let v = JsonValue::object()
            .field("engine", "ceci")
            .field("workers", 4usize)
            .field("seconds", 0.25f64)
            .field("ok", true);
        assert_eq!(
            v.to_compact(),
            r#"{"engine":"ceci","workers":4,"seconds":0.25,"ok":true}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let v = JsonValue::Array(vec![JsonValue::object().field("a", 1u64)]);
        assert_eq!(v.to_pretty(), "[\n  {\n    \"a\": 1\n  }\n]");
    }

    #[test]
    fn escaping() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(JsonValue::from(3u64).to_compact(), "3");
        assert_eq!(JsonValue::from(3.5f64).to_compact(), "3.5");
        assert_eq!(JsonValue::Number(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::from(-2i64).to_compact(), "-2");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty(), "[]");
        assert_eq!(JsonValue::object().to_pretty(), "{}");
    }
}
