//! Plain-text table rendering for experiment output.

/// A simple aligned-column table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(widths.len()) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration in adaptive human units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0µs");
    }

    #[test]
    fn count_separators() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(fmt_speedup(2.5), "2.50x");
    }
}
