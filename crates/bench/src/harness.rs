//! Shared experiment harness: timing, run records, result persistence.

use std::time::{Duration, Instant};

use ceci_core::{enumerate_parallel, Ceci, Counters, ParallelOptions, Strategy, VerifyMode};
use ceci_graph::Graph;
use ceci_query::{PlanOptions, QueryGraph, QueryPlan};

use crate::json::JsonValue;

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Geometric mean of positive ratios (the paper reports average speedups).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// One engine execution record, serialized into `bench_results/`.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Engine name (`ceci`, `psgl-lite`, ...).
    pub engine: String,
    /// Dataset abbreviation.
    pub dataset: String,
    /// Query name (QG1..QG5 or `q<n>` for extracted queries).
    pub query: String,
    /// Worker threads used.
    pub workers: usize,
    /// Total runtime in seconds (build + enumerate where applicable).
    pub seconds: f64,
    /// Embeddings reported.
    pub embeddings: u64,
    /// Recursive calls into the matching routine.
    pub recursive_calls: u64,
    /// Intersection comparisons.
    pub intersection_ops: u64,
    /// Edge verifications.
    pub edge_verifications: u64,
}

impl RunRecord {
    /// Builds a record from counters.
    pub fn new(
        engine: &str,
        dataset: &str,
        query: &str,
        workers: usize,
        elapsed: Duration,
        counters: &Counters,
    ) -> Self {
        RunRecord {
            engine: engine.to_string(),
            dataset: dataset.to_string(),
            query: query.to_string(),
            workers,
            seconds: elapsed.as_secs_f64(),
            embeddings: counters.embeddings,
            recursive_calls: counters.recursive_calls,
            intersection_ops: counters.intersection_ops,
            edge_verifications: counters.edge_verifications,
        }
    }

    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("engine", self.engine.as_str())
            .field("dataset", self.dataset.as_str())
            .field("query", self.query.as_str())
            .field("workers", self.workers)
            .field("seconds", self.seconds)
            .field("embeddings", self.embeddings)
            .field("recursive_calls", self.recursive_calls)
            .field("intersection_ops", self.intersection_ops)
            .field("edge_verifications", self.edge_verifications)
    }
}

/// Writes records as JSON to `bench_results/<name>.json` (best effort;
/// failures are reported to stderr, not fatal).
pub fn persist_records(name: &str, records: &[RunRecord]) {
    let dir = std::path::Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let json = JsonValue::Array(records.iter().map(RunRecord::to_json).collect()).to_pretty();
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// A full CECI run: plan + build + parallel enumeration. Returns
/// `(elapsed_total, counters, embeddings)` — the paper's reported runtime
/// includes preprocessing and CECI creation (§6.1).
pub fn run_ceci(
    graph: &Graph,
    query: QueryGraph,
    workers: usize,
    limit: Option<u64>,
) -> (Duration, Counters, u64) {
    run_ceci_with(
        graph,
        query,
        workers,
        limit,
        Strategy::FineDynamic { beta: 0.2 },
    )
}

/// [`run_ceci`] with an explicit distribution strategy.
pub fn run_ceci_with(
    graph: &Graph,
    query: QueryGraph,
    workers: usize,
    limit: Option<u64>,
    strategy: Strategy,
) -> (Duration, Counters, u64) {
    let (result, setup) = run_ceci_detail(graph, query, workers, limit, strategy);
    // Modeled total: serial setup + decomposition + busiest worker's CPU
    // time (meaningful even when the host has fewer cores than workers).
    (
        setup + result.modeled_makespan(),
        result.counters,
        result.total_embeddings,
    )
}

/// Full-detail CECI run: returns the parallel result plus the serial setup
/// time (plan + index build). The *modeled* total runtime on a machine with
/// one core per worker is `setup + result.modeled_makespan()` — the figure
/// the scalability experiments report, since the experiment host may have
/// fewer cores than the paper's 28-core server.
pub fn run_ceci_detail(
    graph: &Graph,
    query: QueryGraph,
    workers: usize,
    limit: Option<u64>,
    strategy: Strategy,
) -> (ceci_core::ParallelResult, Duration) {
    run_ceci_opts(
        graph,
        query,
        &ParallelOptions {
            workers,
            strategy,
            verify: VerifyMode::Intersection,
            kernel: Default::default(),
            limit,
            collect: false,
            build_threads: 1,
            profile: false,
            prune_redundant: false,
        },
    )
}

/// Fully-parameterized CECI run: `opts.build_threads` is plumbed into the
/// index build ([`ceci_core::BuildOptions::threads`]) and the remaining
/// options drive enumeration.
pub fn run_ceci_opts(
    graph: &Graph,
    query: QueryGraph,
    opts: &ParallelOptions,
) -> (ceci_core::ParallelResult, Duration) {
    let start = Instant::now();
    let plan = QueryPlan::with_options(query, graph, &PlanOptions::default());
    let ceci = Ceci::build_with(
        graph,
        &plan,
        ceci_core::BuildOptions {
            threads: opts.build_threads,
            ..Default::default()
        },
    );
    let setup = start.elapsed();
    let result = enumerate_parallel(graph, &plan, &ceci, opts);
    (result, setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_query::PaperQuery;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn run_ceci_counts_triangles() {
        use ceci_graph::vid;
        let graph = Graph::unlabeled(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
            ],
        );
        let (elapsed, counters, total) = run_ceci(&graph, PaperQuery::Qg1.build(), 2, None);
        assert_eq!(total, 2);
        assert_eq!(counters.embeddings, 2);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn record_serializes() {
        let r = RunRecord::new(
            "ceci",
            "WT",
            "QG1",
            4,
            Duration::from_millis(12),
            &Counters::default(),
        );
        let json = r.to_json().to_compact();
        assert!(json.contains("\"engine\":\"ceci\""));
        assert!(json.contains("\"dataset\":\"WT\""));
    }
}
