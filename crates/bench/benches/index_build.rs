//! Criterion micro-bench: CECI construction (Algorithm 1 + Algorithm 2) on
//! stand-in datasets — the <5%-of-runtime cost the paper reports (§6.6).

use ceci_bench::{Dataset, Scale};
use ceci_core::{BuildOptions, Ceci};
use ceci_query::{PaperQuery, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for dataset in [Dataset::Wt, Dataset::Yt, Dataset::Rd] {
        let graph = dataset.build(Scale::Quick);
        for query in [PaperQuery::Qg1, PaperQuery::Qg4] {
            let plan = QueryPlan::new(query.build(), &graph);
            group.bench_with_input(
                BenchmarkId::new(dataset.abbrev(), query.name()),
                &plan,
                |b, plan| {
                    b.iter(|| std::hint::black_box(Ceci::build(&graph, plan)));
                },
            );
        }
    }
    group.finish();
}

fn bench_build_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_stages");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
    group.bench_function("filter_only", |b| {
        b.iter(|| {
            std::hint::black_box(Ceci::build_with(
                &graph,
                &plan,
                BuildOptions {
                    build_nte: true,
                    refine: false,
                    ..BuildOptions::default()
                },
            ))
        });
    });
    group.bench_function("filter_and_refine", |b| {
        b.iter(|| std::hint::black_box(Ceci::build(&graph, &plan)));
    });
    group.finish();
}

criterion_group!(benches, bench_index_build, bench_build_stages);
criterion_main!(benches);
