//! Criterion micro-bench: the candidate filters (LF/DF/NLCF) and the
//! per-query-vertex global candidate computation.

use ceci_bench::{Dataset, Scale};
use ceci_graph::Graph;
use ceci_query::candidates::{candidates_of, compute_candidates};
use ceci_query::{PaperQuery, QueryGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn labeled_graph() -> Graph {
    let mut g = Dataset::Rd.build(Scale::Quick);
    g.build_nlc_index();
    g
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidates");
    group.sample_size(20);
    let graph = labeled_graph();
    // A labeled 3-path query carved from the label alphabet.
    let query = QueryGraph::with_labels(
        &[ceci_graph::lid(1), ceci_graph::lid(2), ceci_graph::lid(3)],
        &[(0, 1), (1, 2)],
    )
    .unwrap();
    group.bench_function("compute_all", |b| {
        b.iter(|| std::hint::black_box(compute_candidates(&query, &graph)));
    });
    group.bench_function("single_vertex", |b| {
        b.iter(|| std::hint::black_box(candidates_of(&query, &graph, ceci_graph::vid(1))));
    });
    group.finish();
}

fn bench_nlc_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlc_index");
    group.sample_size(20);
    let without = Dataset::Rd.build(Scale::Quick);
    let with = labeled_graph();
    let query = PaperQuery::Qg1.build();
    for (name, graph) in [("scan", &without), ("indexed", &with)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), graph, |b, graph| {
            b.iter(|| std::hint::black_box(compute_candidates(&query, graph)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates, bench_nlc_index);
criterion_main!(benches);
