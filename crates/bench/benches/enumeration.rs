//! Criterion micro-bench: embedding enumeration over a prebuilt CECI —
//! sequential vs parallel strategies (ST/CGD/FGD).

use ceci_bench::{Dataset, Scale};
use ceci_core::{
    count_embeddings, enumerate_parallel, Ceci, ParallelOptions, Strategy, VerifyMode,
};
use ceci_query::{PaperQuery, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_sequential");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    for query in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
        let plan = QueryPlan::new(query.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        group.bench_with_input(
            BenchmarkId::from_parameter(query.name()),
            &ceci,
            |b, ceci| {
                b.iter(|| std::hint::black_box(count_embeddings(&graph, &plan, ceci)));
            },
        );
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_strategies");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    for (name, strategy) in [
        ("ST", Strategy::Static),
        ("CGD", Strategy::CoarseDynamic),
        ("FGD", Strategy::FineDynamic { beta: 0.2 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(enumerate_parallel(
                    &graph,
                    &plan,
                    &ceci,
                    &ParallelOptions {
                        workers,
                        strategy,
                        verify: VerifyMode::Intersection,
                        kernel: Default::default(),
                        limit: None,
                        collect: false,
                        build_threads: 1,
                        profile: false,
                        prune_redundant: false,
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_strategies);
criterion_main!(benches);
