//! Criterion micro-bench: the §4.1 claim in isolation — intersection-based
//! vs edge-verification enumeration over the same index, plus the raw
//! merge/gallop kernels.

use ceci_bench::{Dataset, Scale};
use ceci_core::intersect::intersect_into;
use ceci_core::{
    enumerate_sequential, Ceci, CountSink, EnumOptions, VerifyMode,
};
use ceci_graph::VertexId;
use ceci_query::{PaperQuery, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_verify_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_mode");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    for query in [PaperQuery::Qg3, PaperQuery::Qg4, PaperQuery::Qg5] {
        let plan = QueryPlan::new(query.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        for (name, verify) in [
            ("intersect", VerifyMode::Intersection),
            ("edge_verify", VerifyMode::EdgeVerification),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, query.name()),
                &ceci,
                |b, ceci| {
                    b.iter(|| {
                        let mut sink = CountSink::unbounded();
                        std::hint::black_box(enumerate_sequential(
                            &graph,
                            &plan,
                            ceci,
                            EnumOptions { verify },
                            &mut sink,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_kernels");
    let a: Vec<VertexId> = (0..10_000u32).map(|i| VertexId(i * 3)).collect();
    let b_list: Vec<VertexId> = (0..10_000u32).map(|i| VertexId(i * 5)).collect();
    let small: Vec<VertexId> = (0..100u32).map(|i| VertexId(i * 317)).collect();
    group.bench_function("merge_balanced", |bch| {
        let mut out = Vec::new();
        let mut ops = 0;
        bch.iter(|| {
            intersect_into(&a, &b_list, &mut out, &mut ops);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function("gallop_skewed", |bch| {
        let mut out = Vec::new();
        let mut ops = 0;
        bch.iter(|| {
            intersect_into(&small, &a, &mut out, &mut ops);
            std::hint::black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_verify_modes, bench_kernels);
criterion_main!(benches);
