//! Criterion micro-bench: the §4.1 claim in isolation — intersection-based
//! vs edge-verification enumeration over the same index, plus the raw
//! merge/gallop kernels.

use ceci_bench::{Dataset, Scale};
use ceci_core::intersect::{intersect_into, intersect_with, Kernel};
use ceci_core::{enumerate_sequential, Ceci, CountSink, EnumOptions, VerifyMode};
use ceci_graph::VertexId;
use ceci_query::{PaperQuery, QueryPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_verify_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_mode");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    for query in [PaperQuery::Qg3, PaperQuery::Qg4, PaperQuery::Qg5] {
        let plan = QueryPlan::new(query.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        for (name, verify) in [
            ("intersect", VerifyMode::Intersection),
            ("edge_verify", VerifyMode::EdgeVerification),
        ] {
            group.bench_with_input(BenchmarkId::new(name, query.name()), &ceci, |b, ceci| {
                b.iter(|| {
                    let mut sink = CountSink::unbounded();
                    std::hint::black_box(enumerate_sequential(
                        &graph,
                        &plan,
                        ceci,
                        EnumOptions {
                            verify,
                            ..Default::default()
                        },
                        &mut sink,
                    ))
                });
            });
        }
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_kernels");
    let a: Vec<VertexId> = (0..10_000u32).map(|i| VertexId(i * 3)).collect();
    let b_list: Vec<VertexId> = (0..10_000u32).map(|i| VertexId(i * 5)).collect();
    let small: Vec<VertexId> = (0..100u32).map(|i| VertexId(i * 317)).collect();
    group.bench_function("merge_balanced", |bch| {
        let mut out = Vec::new();
        let mut ops = 0;
        bch.iter(|| {
            intersect_into(&a, &b_list, &mut out, &mut ops);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function("gallop_skewed", |bch| {
        let mut out = Vec::new();
        let mut ops = 0;
        bch.iter(|| {
            intersect_into(&small, &a, &mut out, &mut ops);
            std::hint::black_box(out.len())
        });
    });
    group.finish();
}

/// Size-ratio sweep (1:1 … 1:1024) across the whole kernel suite — the
/// wall-time companion to `repro kernels`, which also records exact op
/// counts into `bench_results/kernels.json`.
fn bench_kernel_ratio_sweep(c: &mut Criterion) {
    const SMALL_LEN: u32 = 512;
    let small: Vec<VertexId> = (0..SMALL_LEN).map(|i| VertexId(i * 7)).collect();
    for ratio in [1u32, 4, 16, 64, 256, 1024] {
        let mut group = c.benchmark_group(format!("kernel_sweep_1_{ratio}"));
        let large: Vec<VertexId> = (0..SMALL_LEN * ratio).map(|i| VertexId(i * 3)).collect();
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            group.bench_function(kernel.name(), |bch| {
                let mut out = Vec::new();
                let mut ops = 0u64;
                bch.iter(|| {
                    intersect_with(kernel, &small, &large, &mut out, &mut ops);
                    std::hint::black_box(out.len())
                });
            });
        }
        group.finish();
    }
}

/// End-to-end enumeration with each kernel pinned through `EnumOptions`.
fn bench_kernel_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_kernel");
    group.sample_size(10);
    let graph = Dataset::Wt.build(Scale::Quick);
    let plan = QueryPlan::new(PaperQuery::Qg4.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut sink = CountSink::unbounded();
                std::hint::black_box(enumerate_sequential(
                    &graph,
                    &plan,
                    &ceci,
                    EnumOptions {
                        kernel,
                        ..Default::default()
                    },
                    &mut sink,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_verify_modes,
    bench_kernels,
    bench_kernel_ratio_sweep,
    bench_kernel_end_to_end
);
criterion_main!(benches);
