//! A blocking protocol client and a closed-loop load generator.
//!
//! The client frames responses by the protocol invariant: the *last* line
//! of every response starts with `OK`, `BUSY`, or `ERR`, so it reads lines
//! until one does. The load generator drives N connections in lock-step
//! closed loops (each issues its next request only after the previous
//! response lands) and aggregates latency/throughput — the `--bench-local`
//! baseline and the CI smoke load both run on it.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::metrics::LatencyHistogram;

/// One response: all payload lines plus the terminal line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Payload lines (`STAT ...`, `| ...`), possibly empty.
    pub payload: Vec<String>,
    /// The terminal line (starts with `OK`, `BUSY`, or `ERR`).
    pub terminal: String,
}

impl Response {
    /// `true` when the terminal line starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.terminal.starts_with("OK")
    }

    /// `true` for a `BUSY` rejection.
    pub fn is_busy(&self) -> bool {
        self.terminal.starts_with("BUSY")
    }

    /// Extracts `key=value` fields from the terminal line (the `OK MATCH`
    /// / `OK LOADED` convention).
    pub fn field(&self, key: &str) -> Option<&str> {
        self.terminal
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// [`Response::field`] parsed as `u64`.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

fn terminal_line(line: &str) -> bool {
    line.starts_with("OK") || line.starts_with("BUSY") || line.starts_with("ERR")
}

/// A blocking, single-connection protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running `ceci-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads the full (possibly multi-line)
    /// response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut payload = Vec::new();
        loop {
            let mut buf = String::new();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let line = buf.trim_end_matches(['\r', '\n']).to_string();
            if terminal_line(&line) {
                return Ok(Response {
                    payload,
                    terminal: line,
                });
            }
            payload.push(line);
        }
    }
}

/// Load-generator configuration: `clients` closed loops, each issuing
/// `requests_per_client` copies of `request`.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent connections.
    pub clients: usize,
    /// Requests per connection.
    pub requests_per_client: usize,
    /// The request line every client repeats.
    pub request: String,
}

/// Aggregated load-generator outcome.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Responses whose terminal line started with `OK`.
    pub ok: u64,
    /// `BUSY` rejections (admission control working, not an error).
    pub busy: u64,
    /// `ERR` responses.
    pub err: u64,
    /// Transport failures (connect/read/write).
    pub io_errors: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Per-request latency over successful responses.
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed requests (any response) per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let total = (self.ok + self.busy + self.err) as f64;
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            total / secs
        } else {
            0.0
        }
    }
}

#[derive(Default)]
struct Tallies {
    ok: std::sync::atomic::AtomicU64,
    busy: std::sync::atomic::AtomicU64,
    err: std::sync::atomic::AtomicU64,
    io_errors: std::sync::atomic::AtomicU64,
    latency: LatencyHistogram,
}

fn bump(c: &std::sync::atomic::AtomicU64, v: u64) {
    c.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
}

/// Runs the closed-loop workload against `addr` and aggregates the outcome.
pub fn run_load(addr: std::net::SocketAddr, config: &LoadConfig) -> LoadReport {
    let tallies = std::sync::Arc::new(Tallies::default());
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..config.clients {
        let tallies = std::sync::Arc::clone(&tallies);
        let line = config.request.clone();
        let n = config.requests_per_client;
        handles.push(std::thread::spawn(move || {
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(_) => {
                    bump(&tallies.io_errors, n as u64);
                    return;
                }
            };
            for _ in 0..n {
                let t = Instant::now();
                match client.request(&line) {
                    Ok(resp) if resp.is_ok() => {
                        tallies.latency.record(t.elapsed());
                        bump(&tallies.ok, 1);
                    }
                    Ok(resp) if resp.is_busy() => bump(&tallies.busy, 1),
                    Ok(_) => bump(&tallies.err, 1),
                    Err(_) => {
                        bump(&tallies.io_errors, 1);
                        return; // connection is unusable now
                    }
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = t0.elapsed();
    let tallies = std::sync::Arc::try_unwrap(tallies)
        .unwrap_or_else(|_| panic!("load threads joined; no clones remain"));
    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    LoadReport {
        ok: g(&tallies.ok),
        busy: g(&tallies.busy),
        err: g(&tallies.err),
        io_errors: g(&tallies.io_errors),
        wall,
        latency: tallies.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let r = Response {
            payload: vec![],
            terminal: "OK MATCH count=42 status=OK cache=HIT build_us=0".to_string(),
        };
        assert!(r.is_ok());
        assert!(!r.is_busy());
        assert_eq!(r.field("count"), Some("42"));
        assert_eq!(r.field_u64("count"), Some(42));
        assert_eq!(r.field("cache"), Some("HIT"));
        assert_eq!(r.field("missing"), None);
    }

    #[test]
    fn terminal_detection() {
        assert!(terminal_line("OK PONG"));
        assert!(terminal_line("BUSY"));
        assert!(terminal_line("ERR nope"));
        assert!(!terminal_line("STAT requests_total 3"));
        assert!(!terminal_line("| plan line"));
    }
}
