//! A blocking protocol client and a closed-loop load generator.
//!
//! The client frames responses by the protocol invariant: the *last* line
//! of every response starts with `OK`, `BUSY`, or `ERR`, so it reads lines
//! until one does. The load generator drives N connections in lock-step
//! closed loops (each issues its next request only after the previous
//! response lands) and aggregates latency/throughput — the `--bench-local`
//! baseline and the CI smoke load both run on it.
//!
//! ## Retries
//!
//! [`Client::request_with_retry`] retries `BUSY` rejections and transient
//! transport failures (connection reset / broken pipe / EOF mid-response,
//! which is what a worker crash or server restart looks like from outside)
//! with capped exponential backoff plus deterministic jitter. Jitter draws
//! come from a seeded SplitMix64 counter, never from wall-clock entropy, so
//! a retry schedule is reproducible in tests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::metrics::LatencyHistogram;

/// One response: all payload lines plus the terminal line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Payload lines (`STAT ...`, `| ...`), possibly empty.
    pub payload: Vec<String>,
    /// The terminal line (starts with `OK`, `BUSY`, or `ERR`).
    pub terminal: String,
}

impl Response {
    /// `true` when the terminal line starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.terminal.starts_with("OK")
    }

    /// `true` for a `BUSY` rejection.
    pub fn is_busy(&self) -> bool {
        self.terminal.starts_with("BUSY")
    }

    /// Extracts `key=value` fields from the terminal line (the `OK MATCH`
    /// / `OK LOADED` convention).
    pub fn field(&self, key: &str) -> Option<&str> {
        self.terminal
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// [`Response::field`] parsed as `u64`.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

fn terminal_line(line: &str) -> bool {
    line.starts_with("OK") || line.starts_with("BUSY") || line.starts_with("ERR")
}

/// Asynchronous server push (continuous-query deltas). Never terminal and
/// never part of a response payload; the client stashes these aside.
fn event_line(line: &str) -> bool {
    line.starts_with("EVENT ")
}

/// SplitMix64 — deterministic jitter source for retry backoff (mirrors the
/// fault layer's draw discipline: seeded counter, no wall-clock entropy).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Retry policy for [`Client::request_with_retry`]: capped exponential
/// backoff with deterministic jitter in `[0.5, 1.5)`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay × 2^n` (pre-jitter)...
    pub base_delay: Duration,
    /// ...capped at this much (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the jitter draws; same seed, same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0xCEC1,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let h = splitmix64(self.jitter_seed ^ splitmix64(attempt as u64));
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64; // [0.5, 1.5)
        exp.mul_f64(jitter)
    }
}

/// Is this transport error worth a reconnect-and-retry? Resets, broken
/// pipes, aborts, and mid-response EOF are what server-side worker crashes
/// and restarts look like from the client; read/write timeouts are what a
/// stalled peer looks like (`TimedOut` or `WouldBlock` depending on
/// platform); anything else (refused, bad address) is not transient.
fn transient_io_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Outcome of [`Client::request_with_retry`].
#[derive(Clone, Debug)]
pub struct RetryOutcome {
    /// The final response (not `BUSY` unless retries ran out).
    pub response: Response,
    /// Total attempts made (≥ 1).
    pub attempts: u32,
    /// Reconnections performed after transient transport errors.
    pub reconnects: u32,
}

/// A blocking, single-connection protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Resolved peer address, kept for reconnects.
    peer: SocketAddr,
    /// Read/write timeout applied to the socket; survives reconnects.
    io_timeout: Option<Duration>,
    /// `EVENT ...` pushes received so far and not yet taken. The server may
    /// interleave them between responses on a connection with `REGISTER`ed
    /// continuous queries; `request` stashes them here instead of treating
    /// them as payload.
    events: Vec<String>,
}

impl Client {
    /// Connects to a running `ceci-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with a bound on the TCP handshake itself — a down-but-
    /// routable peer fails in `timeout` instead of the OS connect default
    /// (minutes). The address must resolve; the first resolved address is
    /// dialed.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            peer,
            io_timeout: None,
            events: Vec::new(),
        })
    }

    /// Sets (or clears, with `None`) the socket read/write timeout. A peer
    /// that accepts but never answers — stalled worker, half-open socket —
    /// then surfaces as `TimedOut`/`WouldBlock` instead of hanging the
    /// caller forever. The setting survives [`Client::reconnect`].
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// `EVENT` lines received so far and not yet [taken](Client::take_events).
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Drains the stashed `EVENT` lines, oldest first.
    pub fn take_events(&mut self) -> Vec<String> {
        std::mem::take(&mut self.events)
    }

    /// Blocks until at least one `EVENT` line is available (serving a
    /// stashed one first) and returns the oldest. Use on a connection that
    /// issued `REGISTER` and is now waiting for mutation-driven deltas.
    pub fn wait_event(&mut self) -> std::io::Result<String> {
        loop {
            if !self.events.is_empty() {
                return Ok(self.events.remove(0));
            }
            let mut buf = String::new();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed while waiting for an event",
                ));
            }
            let line = buf.trim_end_matches(['\r', '\n']).to_string();
            if event_line(&line) {
                return Ok(line);
            }
            // A non-event line here is out-of-band for this client (no
            // request is in flight); drop it rather than corrupt state.
        }
    }

    /// Drops the current connection and dials the same peer again. Stashed
    /// events survive the reconnect; server-side continuous registrations
    /// bound to the old connection do not (their sink is gone).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let mut fresh = match self.io_timeout {
            Some(t) => Client::connect_with_timeout(self.peer, t)?,
            None => Client::connect(self.peer)?,
        };
        fresh.set_io_timeout(self.io_timeout)?;
        fresh.events = std::mem::take(&mut self.events);
        *self = fresh;
        Ok(())
    }

    /// [`Client::request`] with retry on `BUSY` and on transient transport
    /// errors (after reconnecting). Non-transient IO errors and `ERR`
    /// responses are returned immediately — `ERR` is a deterministic server
    /// answer, not a transient condition.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<RetryOutcome> {
        let mut attempts = 0u32;
        let mut reconnects = 0u32;
        loop {
            attempts += 1;
            let retry_no = attempts - 1; // 0-based index of the *next* retry
            match self.request(line) {
                Ok(resp) if resp.is_busy() && retry_no < policy.max_retries => {
                    std::thread::sleep(policy.backoff(retry_no));
                }
                Ok(response) => {
                    return Ok(RetryOutcome {
                        response,
                        attempts,
                        reconnects,
                    })
                }
                Err(e) if transient_io_error(&e) && retry_no < policy.max_retries => {
                    std::thread::sleep(policy.backoff(retry_no));
                    self.reconnect()?;
                    reconnects += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request line and reads the full (possibly multi-line)
    /// response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut payload = Vec::new();
        loop {
            let mut buf = String::new();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            let line = buf.trim_end_matches(['\r', '\n']).to_string();
            if event_line(&line) {
                self.events.push(line);
                continue;
            }
            if terminal_line(&line) {
                return Ok(Response {
                    payload,
                    terminal: line,
                });
            }
            payload.push(line);
        }
    }
}

/// Load-generator configuration: `clients` closed loops, each issuing
/// `requests_per_client` copies of `request`.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent connections.
    pub clients: usize,
    /// Requests per connection.
    pub requests_per_client: usize,
    /// The request line every client repeats.
    pub request: String,
    /// When set, each request retries `BUSY`/transient failures under this
    /// policy (`None` = one shot, the historical behavior).
    pub retry: Option<RetryPolicy>,
    /// Think time between requests, per client loop, in milliseconds. With
    /// thousands of mostly-idle connections this is what keeps the *offered*
    /// load constant while the connection count scales (Little's law:
    /// `offered_rps ≈ clients × 1000 / think_ms`). Client loop `i` also
    /// staggers its first request by `i × think_ms / clients` so ramp-up
    /// spreads over one think interval instead of thundering in together.
    pub think_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 100,
            request: "PING".to_string(),
            retry: None,
            think_ms: 0,
        }
    }
}

/// Aggregated load-generator outcome.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Responses whose terminal line started with `OK`.
    pub ok: u64,
    /// `BUSY` rejections (admission control working, not an error).
    pub busy: u64,
    /// `ERR` responses.
    pub err: u64,
    /// Transport failures (connect/read/write).
    pub io_errors: u64,
    /// Retry attempts beyond the first (0 without a retry policy).
    pub retries: u64,
    /// Reconnections performed by the retry path.
    pub reconnects: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Per-request latency over successful responses.
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed requests (any response) per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let total = (self.ok + self.busy + self.err) as f64;
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            total / secs
        } else {
            0.0
        }
    }
}

#[derive(Default)]
struct Tallies {
    ok: std::sync::atomic::AtomicU64,
    busy: std::sync::atomic::AtomicU64,
    err: std::sync::atomic::AtomicU64,
    io_errors: std::sync::atomic::AtomicU64,
    retries: std::sync::atomic::AtomicU64,
    reconnects: std::sync::atomic::AtomicU64,
    latency: LatencyHistogram,
}

fn bump(c: &std::sync::atomic::AtomicU64, v: u64) {
    c.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
}

/// Dials `addr`, retrying briefly on transient connect failures. Opening
/// thousands of sockets at once can transiently exhaust the accept backlog
/// or ephemeral state; a refused/reset connect at ramp-up is congestion,
/// not a down server, so back off and try again a few times.
fn connect_patiently(addr: std::net::SocketAddr) -> std::io::Result<Client> {
    let mut delay = Duration::from_millis(5);
    for attempt in 0..6 {
        match Client::connect_with_timeout(addr, Duration::from_secs(2)) {
            Ok(c) => return Ok(c),
            Err(e) if attempt == 5 => return Err(e),
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
    unreachable!("loop returns on last attempt")
}

/// Runs the closed-loop workload against `addr` and aggregates the outcome.
pub fn run_load(addr: std::net::SocketAddr, config: &LoadConfig) -> LoadReport {
    let tallies = std::sync::Arc::new(Tallies::default());
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..config.clients {
        let loop_tallies = std::sync::Arc::clone(&tallies);
        let line = config.request.clone();
        let n = config.requests_per_client;
        let think = Duration::from_millis(config.think_ms);
        // Stagger client i's first request across one think interval.
        let stagger = Duration::from_millis(
            config.think_ms.saturating_mul(client_idx as u64) / config.clients.max(1) as u64,
        );
        let retry = config.retry.map(|mut p| {
            // De-correlate the jitter schedules across client loops.
            p.jitter_seed = splitmix64(p.jitter_seed ^ client_idx as u64);
            p
        });
        // Default thread stacks are 2–8 MB of reserved address space; at
        // thousands of client loops that adds up. These loops recurse
        // nowhere, so a small fixed stack keeps a 10k-client run cheap.
        let builder = std::thread::Builder::new()
            .name(format!("ceci-load-{client_idx}"))
            .stack_size(256 * 1024);
        let spawned = builder.spawn(move || {
            let tallies = loop_tallies;
            let mut client = match connect_patiently(addr) {
                Ok(c) => c,
                Err(_) => {
                    bump(&tallies.io_errors, n as u64);
                    return;
                }
            };
            if !stagger.is_zero() {
                std::thread::sleep(stagger);
            }
            for req_idx in 0..n {
                if req_idx > 0 && !think.is_zero() {
                    std::thread::sleep(think);
                }
                let t = Instant::now();
                let outcome = match &retry {
                    Some(policy) => client.request_with_retry(&line, policy).map(|o| {
                        bump(&tallies.retries, (o.attempts - 1) as u64);
                        bump(&tallies.reconnects, o.reconnects as u64);
                        o.response
                    }),
                    None => client.request(&line),
                };
                match outcome {
                    Ok(resp) if resp.is_ok() => {
                        tallies.latency.record(t.elapsed());
                        bump(&tallies.ok, 1);
                    }
                    Ok(resp) if resp.is_busy() => bump(&tallies.busy, 1),
                    Ok(_) => bump(&tallies.err, 1),
                    Err(_) => {
                        bump(&tallies.io_errors, 1);
                        return; // connection is unusable now
                    }
                }
            }
        });
        match spawned {
            Ok(h) => handles.push(h),
            Err(_) => bump(&tallies.io_errors, n as u64),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = t0.elapsed();
    let tallies = std::sync::Arc::try_unwrap(tallies)
        .unwrap_or_else(|_| panic!("load threads joined; no clones remain"));
    let g = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    LoadReport {
        ok: g(&tallies.ok),
        busy: g(&tallies.busy),
        err: g(&tallies.err),
        io_errors: g(&tallies.io_errors),
        retries: g(&tallies.retries),
        reconnects: g(&tallies.reconnects),
        wall,
        latency: tallies.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let r = Response {
            payload: vec![],
            terminal: "OK MATCH count=42 status=OK cache=HIT build_us=0".to_string(),
        };
        assert!(r.is_ok());
        assert!(!r.is_busy());
        assert_eq!(r.field("count"), Some("42"));
        assert_eq!(r.field_u64("count"), Some(42));
        assert_eq!(r.field("cache"), Some("HIT"));
        assert_eq!(r.field("missing"), None);
    }

    #[test]
    fn terminal_detection() {
        assert!(terminal_line("OK PONG"));
        assert!(terminal_line("BUSY"));
        assert!(terminal_line("ERR nope"));
        assert!(!terminal_line("STAT requests_total 3"));
        assert!(!terminal_line("| plan line"));
    }

    #[test]
    fn event_lines_are_neither_terminal_nor_payload_shaped() {
        let ev = "EVENT DELTA query=q graph=g batch=3 new=2 retired=1 total=9";
        assert!(event_line(ev));
        assert!(!terminal_line(ev));
        assert!(!event_line("EVENTUALLY not an event"));
        assert!(!event_line("OK MATCH count=1"));
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        // Deterministic: same policy, same schedule.
        let q = RetryPolicy::default();
        for a in 0..8 {
            assert_eq!(p.backoff(a), q.backoff(a));
        }
        // Jitter keeps each delay within [0.5, 1.5)× the exponential value.
        for a in 0..8u32 {
            let raw = p
                .base_delay
                .saturating_mul(1 << a)
                .min(p.max_delay)
                .as_secs_f64();
            let b = p.backoff(a).as_secs_f64();
            assert!(b >= raw * 0.5 && b < raw * 1.5, "attempt {a}: {b} vs {raw}");
        }
        // The cap binds for large attempt numbers (pre-jitter ≤ max_delay).
        assert!(p.backoff(30) < p.max_delay.mul_f64(1.5));
        // Different seeds give different schedules.
        let r = RetryPolicy {
            jitter_seed: 99,
            ..RetryPolicy::default()
        };
        assert_ne!(p.backoff(1), r.backoff(1));
    }

    #[test]
    fn transient_error_classification() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::ConnectionAborted,
            ErrorKind::UnexpectedEof,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
        ] {
            assert!(transient_io_error(&Error::new(kind, "x")), "{kind:?}");
        }
        assert!(!transient_io_error(&Error::new(
            ErrorKind::ConnectionRefused,
            "down"
        )));
        assert!(!transient_io_error(&Error::new(
            ErrorKind::InvalidInput,
            "bad"
        )));
    }
}
