//! Event-driven server core: a single epoll readiness loop owning every
//! client connection as a buffered state machine, so 10k+ mostly-idle
//! connections (dashboards, continuous-query subscribers, think-time
//! clients) no longer pin one thread each.
//!
//! ## Shape
//!
//! * The loop thread (`ceci-loop`) owns the nonblocking listener, a wakeup
//!   `eventfd`, and one [`Conn`] per client: read-accumulate → parse line →
//!   dispatch → queue write-out.
//! * **Control-plane** verbs run inline on the loop thread (they are cheap
//!   by construction). **Data-plane** verbs are submitted to the bounded
//!   [`WorkerPool`] with one request in flight per connection; the worker
//!   pushes its response into [`LoopShared::completions`] and wakes the
//!   loop via the eventfd.
//! * Responses and pushed `EVENT` lines go through a bounded per-connection
//!   byte queue ([`QueuedSink`]). Backpressure degrades before memory does:
//!   a full worker queue answers `BUSY`, a reader that stops draining its
//!   socket overflows its write queue and is disconnected
//!   (`slow_reader_disconnects`), and accepts beyond
//!   [`ServeConfig::max_conns`](crate::ServeConfig) are refused with `BUSY`.
//! * While a request is in flight, pipelined input accumulates in the read
//!   buffer; past [`READ_PAUSE`] the connection's `EPOLLIN` interest is
//!   dropped (level-triggered epoll re-arms it once the request completes),
//!   so a firehose client cannot balloon the buffer.
//!
//! The per-connection state machine and the backpressure ladder are
//! documented in DESIGN.md ("Event-driven server core").

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::ServerMetrics;
use crate::pool::{Admission, Completion, PoolHandle};
use crate::protocol::{parse_request, ErrorCode, Request};
use crate::server::{route, DataJob, Routed, ServerState};

/// Token of the listening socket in the epoll interest set.
const TOKEN_LISTENER: u64 = 0;
/// Token of the wakeup eventfd.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Longest accepted request line in bytes; beyond it the connection gets
/// `ERR E_PARSE` and is closed (a line that long is a protocol violation
/// or an attack, not a request).
pub(crate) const MAX_LINE: usize = 1 << 20;
/// Read-buffer high-water mark while a request is in flight: past this the
/// connection's `EPOLLIN` interest is dropped until the request completes.
const READ_PAUSE: usize = 64 * 1024;
/// Per-connection write-queue cap in bytes; overflowing it marks the
/// connection a slow reader and disconnects it.
const WRITE_QUEUE_CAP: usize = 256 * 1024;
/// Bytes read per `read(2)` call.
const READ_CHUNK: usize = 4096;

/// Locks a mutex, recovering from poisoning instead of panicking: every
/// protected structure here (write queues, completion lists, registration
/// maps) stays internally consistent across a panic, and propagating the
/// poison would turn one caught worker panic into a dead server.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thin RAII wrapper over an epoll instance.
struct Poller {
    epfd: libc::c_int,
}

impl Poller {
    fn new() -> std::io::Result<Poller> {
        let epfd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(
        &self,
        op: libc::c_int,
        fd: libc::c_int,
        token: u64,
        events: u32,
    ) -> std::io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        let rc = unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: libc::c_int, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: libc::c_int, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, events)
    }

    fn delete(&self, fd: libc::c_int) {
        let rc =
            unsafe { libc::epoll_ctl(self.epfd, libc::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
        let _ = rc; // best-effort: the fd is about to be closed anyway
    }

    /// Waits for readiness; returns the number of events filled. `EINTR`
    /// surfaces as `Ok(0)` (the loop re-checks `stopping` and re-waits).
    fn wait(&self, events: &mut [libc::epoll_event], timeout_ms: i32) -> usize {
        let n = unsafe {
            libc::epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as libc::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.epfd);
        }
    }
}

/// The wakeup eventfd: worker completions, queued-sink writes from other
/// threads, and shutdown all write 8 bytes here to interrupt `epoll_wait`.
struct WakeFd {
    fd: libc::c_int,
}

impl WakeFd {
    fn new() -> std::io::Result<WakeFd> {
        let fd = unsafe { libc::eventfd(0, libc::EFD_NONBLOCK | libc::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        // Failure modes are a full counter (the loop is already signalled)
        // or a closed fd (the loop is gone); both are safe to ignore.
        unsafe {
            libc::write(self.fd, &one as *const u64 as *const libc::c_void, 8);
        }
    }

    fn drain(&self) {
        let mut counter: u64 = 0;
        unsafe {
            libc::read(self.fd, &mut counter as *mut u64 as *mut libc::c_void, 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.fd);
        }
    }
}

// An eventfd is just an i32; reads/writes from any thread are the point.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

/// State shared between the loop thread and everyone who needs to reach it:
/// pool workers delivering completions, other threads pushing `EVENT` lines
/// into queued sinks, and shutdown.
pub(crate) struct LoopShared {
    wake: WakeFd,
    /// `(connection token, response lines)` pairs from finished pool jobs.
    completions: Mutex<Vec<(u64, Vec<String>)>>,
    /// Tokens whose queued sink received new bytes and needs a flush.
    dirty: Mutex<Vec<u64>>,
}

impl LoopShared {
    fn new() -> std::io::Result<Arc<LoopShared>> {
        Ok(Arc::new(LoopShared {
            wake: WakeFd::new()?,
            completions: Mutex::new(Vec::new()),
            dirty: Mutex::new(Vec::new()),
        }))
    }

    /// Interrupts `epoll_wait` (used by shutdown and by sink writers).
    pub(crate) fn wake(&self) {
        self.wake.wake();
    }

    fn push_completion(&self, token: u64, lines: Vec<String>) {
        lock_recover(&self.completions).push((token, lines));
        self.wake();
    }

    fn push_dirty(&self, token: u64) {
        lock_recover(&self.dirty).push(token);
        self.wake();
    }

    fn take_completions(&self) -> Vec<(u64, Vec<String>)> {
        std::mem::take(&mut *lock_recover(&self.completions))
    }

    fn take_dirty(&self) -> Vec<u64> {
        let mut tokens = std::mem::take(&mut *lock_recover(&self.dirty));
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }
}

/// The event-loop side of a connection's response sink: a bounded byte
/// queue drained by the loop thread. Any thread may append (worker
/// completions, `EVENT` fan-out from mutation jobs); appends past `cap`
/// mark the connection overflowed and it is disconnected rather than
/// buffered without bound.
pub struct QueuedSink {
    token: u64,
    cap: usize,
    buf: Mutex<VecDeque<u8>>,
    closed: AtomicBool,
    overflowed: AtomicBool,
    shared: Arc<LoopShared>,
}

impl QueuedSink {
    fn write_lines(&self, lines: &[String]) -> std::io::Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "connection closed",
            ));
        }
        let added: usize = lines.iter().map(|l| l.len() + 1).sum();
        {
            let mut buf = lock_recover(&self.buf);
            if buf.len() + added > self.cap {
                // Slow reader: the socket stopped draining while responses
                // or events kept queueing. Mark it; the loop disconnects.
                self.overflowed.store(true, Ordering::Release);
                self.closed.store(true, Ordering::Release);
                drop(buf);
                self.shared.push_dirty(self.token);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "per-connection write queue overflow",
                ));
            }
            for l in lines {
                buf.extend(l.as_bytes());
                buf.push_back(b'\n');
            }
        }
        self.shared.push_dirty(self.token);
        Ok(())
    }

    fn has_pending(&self) -> bool {
        !lock_recover(&self.buf).is_empty()
    }
}

/// The response sink of one client connection, shared (`Arc`) so
/// continuous-query events can be pushed to it from mutation jobs on other
/// threads.
pub(crate) type SharedWriter = Arc<ConnSink>;

/// A connection's response sink, shared (`Arc`) so continuous-query events
/// can be pushed to it from mutation jobs on other threads. Whole responses
/// (and whole events) are appended atomically, so an `EVENT` line can
/// interleave *between* responses but never inside one.
pub enum ConnSink {
    /// Threaded fallback: writes go straight to the socket under a lock.
    Direct(Mutex<std::io::BufWriter<TcpStream>>),
    /// Event loop: writes land in the bounded queue, drained by the loop.
    Queued(QueuedSink),
}

impl ConnSink {
    /// Wraps a blocking connection's stream (threaded fallback mode).
    pub(crate) fn direct(stream: TcpStream) -> Arc<ConnSink> {
        Arc::new(ConnSink::Direct(Mutex::new(std::io::BufWriter::new(
            stream,
        ))))
    }

    fn queued(token: u64, cap: usize, shared: Arc<LoopShared>) -> Arc<ConnSink> {
        Arc::new(ConnSink::Queued(QueuedSink {
            token,
            cap,
            buf: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            overflowed: AtomicBool::new(false),
            shared,
        }))
    }

    /// Writes one whole response (or event) atomically. An error means the
    /// connection is effectively dead (socket error, closed, or its write
    /// queue overflowed) — callers drop the connection or registration.
    pub(crate) fn write_lines(&self, lines: &[String]) -> std::io::Result<()> {
        match self {
            ConnSink::Direct(w) => {
                let mut w = lock_recover(w);
                for l in lines {
                    w.write_all(l.as_bytes())?;
                    w.write_all(b"\n")?;
                }
                w.flush()
            }
            ConnSink::Queued(q) => q.write_lines(lines),
        }
    }
}

/// One connection's state machine, owned by the loop thread.
struct Conn {
    stream: TcpStream,
    sink: Arc<ConnSink>,
    read_buf: Vec<u8>,
    /// One data-plane request outstanding on the pool (responses stay in
    /// request order; pipelined input waits in `read_buf`).
    in_flight: bool,
    /// Close once the write queue drains (after `QUIT`, a timeout notice,
    /// or an oversized-line error).
    closing: bool,
    /// Peer closed its write half; serve what's buffered, then close.
    read_eof: bool,
    /// Currently registered epoll interest bits.
    interest: u32,
    last_activity: Instant,
}

impl Conn {
    fn queued(&self) -> &QueuedSink {
        match &*self.sink {
            ConnSink::Queued(q) => q,
            ConnSink::Direct(_) => unreachable!("event-loop connection with a direct sink"),
        }
    }
}

/// Outcome of one socket-flush attempt.
enum Flush {
    /// Queue fully drained.
    Drained,
    /// Socket would block with bytes still queued (needs `EPOLLOUT`).
    Pending,
    /// Socket error or EOF on write: the connection is dead.
    Dead,
    /// The sink overflowed its byte cap (slow reader).
    Overflowed,
}

/// The epoll readiness loop. Built on the caller's thread (so bind/epoll
/// setup errors surface synchronously from `start`), then moved onto the
/// dedicated `ceci-loop` thread and run to completion.
pub(crate) struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: PoolHandle,
    shared: Arc<LoopShared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl EventLoop {
    pub(crate) fn new(
        listener: TcpListener,
        state: Arc<ServerState>,
        pool: PoolHandle,
    ) -> std::io::Result<(EventLoop, Arc<LoopShared>)> {
        listener.set_nonblocking(true)?;
        let shared = LoopShared::new()?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, libc::EPOLLIN)?;
        poller.add(shared.wake.fd, TOKEN_WAKE, libc::EPOLLIN)?;
        Ok((
            EventLoop {
                poller,
                listener,
                state,
                pool,
                shared: Arc::clone(&shared),
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
            },
            shared,
        ))
    }

    /// Runs until [`ServerState::stopping`] is observed (the shutdown path
    /// sets it and wakes the eventfd).
    pub(crate) fn run(mut self) {
        let mut events = vec![libc::epoll_event::default(); 256];
        // The wait timeout doubles as the idle-sweep tick; keep it a small
        // fraction of the io timeout so expiry is reasonably prompt.
        let tick_ms: i32 = if self.state.config().io_timeout_ms > 0 {
            (self.state.config().io_timeout_ms / 4).clamp(10, 1_000) as i32
        } else {
            500
        };
        loop {
            let n = self.poller.wait(&mut events, tick_ms);
            if self.state.stopping.load(Ordering::SeqCst) {
                break;
            }
            let mut readable: Vec<u64> = Vec::new();
            let mut writable: Vec<u64> = Vec::new();
            let mut errored: Vec<u64> = Vec::new();
            for ev in &events[..n] {
                // Copy out of the (packed) struct before matching.
                let token = ev.u64;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    t => {
                        if bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                            errored.push(t);
                        } else {
                            if bits & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0 {
                                readable.push(t);
                            }
                            if bits & libc::EPOLLOUT != 0 {
                                writable.push(t);
                            }
                        }
                    }
                }
            }
            for t in errored {
                self.disconnect(t);
            }
            for t in readable {
                self.read_ready(t);
            }
            for t in writable {
                self.flush_token(t);
            }
            self.drain_completions();
            self.drain_dirty();
            self.sweep_idle();
        }
        // Teardown: mark every sink closed so in-flight jobs and later
        // EVENT pushes fail fast, then drop the sockets.
        for (_, conn) in self.conns.drain() {
            conn.queued().closed.store(true, Ordering::Release);
            ServerMetrics::dec(&self.state.metrics.connections_open);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.state.config().max_conns {
                        // Over the connection cap: refuse with BUSY instead
                        // of letting accepted-but-unserviced sockets pile up.
                        ServerMetrics::inc(&self.state.metrics.connections_rejected);
                        let mut s = stream;
                        let _ = s.write_all(b"BUSY\n");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = libc::EPOLLIN | libc::EPOLLRDHUP;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, interest)
                        .is_err()
                    {
                        continue;
                    }
                    let sink = ConnSink::queued(token, WRITE_QUEUE_CAP, Arc::clone(&self.shared));
                    ServerMetrics::inc(&self.state.metrics.connections_accepted);
                    ServerMetrics::inc(&self.state.metrics.connections_open);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            sink,
                            read_buf: Vec::new(),
                            in_flight: false,
                            closing: false,
                            read_eof: false,
                            interest,
                            last_activity: Instant::now(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.in_flight && conn.read_buf.len() >= READ_PAUSE {
                break; // interest update below drops EPOLLIN until completion
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_eof = true;
                    // A final partial line without a newline is still a
                    // request (matches the threaded reader's EOF handling).
                    if !conn.read_buf.is_empty() && conn.read_buf.last() != Some(&b'\n') {
                        conn.read_buf.push(b'\n');
                    }
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect(token);
                    return;
                }
            }
        }
        self.process_lines(token);
        self.update_interest(token);
        self.maybe_close(token);
    }

    /// Parses and dispatches complete lines from the read buffer, stopping
    /// at the first data-plane request (one in flight per connection keeps
    /// responses in request order).
    fn process_lines(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.in_flight || conn.closing {
                return;
            }
            let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                if conn.read_buf.len() > MAX_LINE {
                    self.oversized_line(token);
                }
                return;
            };
            if pos > MAX_LINE {
                self.oversized_line(token);
                return;
            }
            let line_bytes: Vec<u8> = conn.read_buf.drain(..=pos).collect();
            conn.last_activity = Instant::now();
            let sink = Arc::clone(&conn.sink);
            let Ok(text) = std::str::from_utf8(&line_bytes[..pos]) else {
                ServerMetrics::inc(&self.state.metrics.errors);
                let err = ErrorCode::Parse.line("request line is not valid UTF-8");
                if sink.write_lines(&[err]).is_err() {
                    self.slow_reader(token);
                    return;
                }
                continue;
            };
            let line = text.trim_end_matches('\r');
            let request = match parse_request(line) {
                Ok(None) => continue,
                Ok(Some(r)) => r,
                Err(e) => {
                    ServerMetrics::inc(&self.state.metrics.errors);
                    if sink.write_lines(&[ErrorCode::Parse.line(e)]).is_err() {
                        self.slow_reader(token);
                        return;
                    }
                    continue;
                }
            };
            ServerMetrics::inc(&self.state.metrics.requests);
            let quit = matches!(request, Request::Quit);
            let state = Arc::clone(&self.state);
            match route(request, &state, &sink) {
                Routed::Inline(lines) => {
                    if sink.write_lines(&lines).is_err() {
                        self.slow_reader(token);
                        return;
                    }
                    if quit {
                        if let Some(c) = self.conns.get_mut(&token) {
                            c.closing = true;
                        }
                        return;
                    }
                }
                Routed::Data(job) => {
                    self.submit_data(token, job);
                    // in_flight (or an inline BUSY) — either way re-check
                    // the loop guard before parsing further lines.
                }
            }
        }
    }

    /// Answers `ERR E_PARSE` for a line exceeding [`MAX_LINE`] and closes.
    fn oversized_line(&mut self, token: u64) {
        ServerMetrics::inc(&self.state.metrics.errors);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.read_buf.clear();
        conn.closing = true;
        let sink = Arc::clone(&conn.sink);
        let err = ErrorCode::Parse.line(format!("request line exceeds {MAX_LINE} bytes; closing"));
        if sink.write_lines(&[err]).is_err() {
            self.slow_reader(token);
        }
    }

    /// Submits a routed data-plane job to the pool with this connection's
    /// token; the completion guard delivers response lines back through
    /// [`LoopShared`] exactly once, even if the worker panics mid-job.
    fn submit_data(&mut self, token: u64, job: DataJob) {
        let shared = Arc::clone(&self.shared);
        let panic_shared = Arc::clone(&self.shared);
        let state = Arc::clone(&self.state);
        let panic_state = Arc::clone(&self.state);
        let submitted = Instant::now();
        let admitted = self.pool.submit(Box::new(move || {
            // Armed only once the job actually runs: a rejected submission
            // drops this closure un-run and must not fire the panic path.
            let completion = Completion::new(
                move |lines| shared.push_completion(token, lines),
                move || {
                    ServerMetrics::inc(&panic_state.metrics.worker_drops);
                    ServerMetrics::inc(&panic_state.metrics.errors);
                    panic_shared.push_completion(
                        token,
                        vec![ErrorCode::WorkerDropped.line(
                            "worker panicked while handling this request (worker respawned)",
                        )],
                    );
                },
            );
            let queue_wait = submitted.elapsed();
            let stall = state.chaos_stall_ms.load(Ordering::SeqCst);
            if stall > 0 {
                std::thread::sleep(Duration::from_millis(stall));
            }
            let lines = job(&state, queue_wait);
            completion.deliver(lines);
        }));
        match admitted {
            Admission::Accepted => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.in_flight = true;
                }
            }
            Admission::Rejected => {
                ServerMetrics::inc(&self.state.metrics.rejected_busy);
                let Some(conn) = self.conns.get(&token) else {
                    return;
                };
                let sink = Arc::clone(&conn.sink);
                if sink.write_lines(&[String::from("BUSY")]).is_err() {
                    self.slow_reader(token);
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        for (token, lines) in self.shared.take_completions() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while its job ran
            };
            conn.in_flight = false;
            conn.last_activity = Instant::now();
            let sink = Arc::clone(&conn.sink);
            if sink.write_lines(&lines).is_err() {
                self.slow_reader(token);
                continue;
            }
            // Pipelined requests may have accumulated while in flight.
            self.process_lines(token);
            self.update_interest(token);
            self.maybe_close(token);
        }
    }

    fn drain_dirty(&mut self) {
        for token in self.shared.take_dirty() {
            self.flush_token(token);
        }
    }

    /// Drains a connection's write queue into its socket as far as the
    /// kernel will take it, managing `EPOLLOUT` interest and close-on-drain.
    fn flush_token(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let result = flush_sink(&conn.stream, conn.queued());
        match result {
            Flush::Overflowed => {
                self.slow_reader(token);
            }
            Flush::Dead => {
                self.disconnect(token);
            }
            Flush::Drained | Flush::Pending => {
                self.update_interest(token);
                if matches!(result, Flush::Drained) {
                    self.maybe_close(token);
                }
            }
        }
    }

    /// Recomputes and applies a connection's epoll interest set: `EPOLLIN`
    /// unless reading is paused (in-flight + full read buffer) or the peer
    /// already half-closed; `EPOLLOUT` only while bytes are queued.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let paused = conn.in_flight && conn.read_buf.len() >= READ_PAUSE;
        let mut want = libc::EPOLLRDHUP;
        if !paused && !conn.read_eof && !conn.closing {
            want |= libc::EPOLLIN;
        }
        if conn.queued().has_pending() {
            want |= libc::EPOLLOUT;
        }
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Closes the connection once nothing remains to do for it: `closing`
    /// (QUIT/timeout/protocol error) with the write queue drained, or EOF
    /// from the peer with no buffered request, no in-flight job, and no
    /// undelivered output.
    fn maybe_close(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.in_flight || conn.queued().has_pending() {
            return;
        }
        let done_reading = conn.closing || (conn.read_eof && !conn.read_buf.contains(&b'\n'));
        if done_reading {
            self.disconnect(token);
        }
    }

    /// Disconnects a slow reader (write-queue overflow).
    fn slow_reader(&mut self, token: u64) {
        if self.conns.contains_key(&token) {
            ServerMetrics::inc(&self.state.metrics.slow_reader_disconnects);
        }
        self.disconnect(token);
    }

    fn disconnect(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.delete(conn.stream.as_raw_fd());
        conn.queued().closed.store(true, Ordering::Release);
        ServerMetrics::dec(&self.state.metrics.connections_open);
        // Continuous-query registrations bound to this sink are cleaned up
        // lazily: the next EVENT push observes the closed sink, fails, and
        // auto-unregisters (bumping `event_push_failures`).
    }

    /// Expires idle connections against the configured io timeout. A
    /// connection with a live continuous-query registration and an empty
    /// read buffer is exempt — it legitimately sits waiting for pushed
    /// events. In-flight requests are exempt (the data plane owns them).
    fn sweep_idle(&mut self) {
        let timeout_ms = self.state.config().io_timeout_ms;
        if timeout_ms == 0 {
            return;
        }
        let timeout = Duration::from_millis(timeout_ms);
        let now = Instant::now();
        let mut expired: Vec<u64> = Vec::new();
        for (t, conn) in &self.conns {
            if conn.in_flight || conn.closing {
                continue;
            }
            if now.duration_since(conn.last_activity) < timeout {
                continue;
            }
            if conn.read_buf.is_empty() && self.state.continuous.has_sink(&conn.sink) {
                continue;
            }
            expired.push(*t);
        }
        for token in expired {
            ServerMetrics::inc(&self.state.metrics.timeouts);
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            conn.closing = true;
            let sink = Arc::clone(&conn.sink);
            let notice = ErrorCode::Timeout.line(format!(
                "no complete request within {timeout_ms}ms; closing connection"
            ));
            if sink.write_lines(&[notice]).is_err() {
                self.slow_reader(token);
                continue;
            }
            self.flush_token(token);
        }
    }
}

/// Writes queued bytes into the socket until drained or `EWOULDBLOCK`.
fn flush_sink(stream: &TcpStream, q: &QueuedSink) -> Flush {
    if q.overflowed.load(Ordering::Acquire) {
        return Flush::Overflowed;
    }
    let mut buf = lock_recover(&q.buf);
    loop {
        if buf.is_empty() {
            return Flush::Drained;
        }
        let (front, _) = buf.as_slices();
        match (&*stream).write(front) {
            Ok(0) => return Flush::Dead,
            Ok(n) => {
                buf.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Flush::Dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_sink(cap: usize) -> (Arc<ConnSink>, Arc<LoopShared>) {
        let shared = LoopShared::new().expect("eventfd");
        (ConnSink::queued(7, cap, Arc::clone(&shared)), shared)
    }

    #[test]
    fn queued_sink_appends_and_marks_dirty() {
        let (sink, shared) = test_sink(1024);
        sink.write_lines(&["OK PONG".to_string()]).unwrap();
        assert_eq!(shared.take_dirty(), vec![7]);
        let ConnSink::Queued(q) = &*sink else {
            panic!("queued sink expected")
        };
        let buf = lock_recover(&q.buf);
        let bytes: Vec<u8> = buf.iter().copied().collect();
        assert_eq!(bytes, b"OK PONG\n");
    }

    #[test]
    fn queued_sink_overflow_closes_and_errors() {
        let (sink, _shared) = test_sink(16);
        // First write fits; the second would exceed the 16-byte cap.
        sink.write_lines(&["0123456789".to_string()]).unwrap();
        let err = sink
            .write_lines(&["0123456789".to_string()])
            .expect_err("overflow must error");
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        // Once overflowed the sink is closed: later writes fail fast, which
        // is what auto-unregisters a dead continuous-query subscriber.
        let err = sink.write_lines(&["x".to_string()]).expect_err("closed");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn completions_round_trip_through_shared() {
        let shared = LoopShared::new().expect("eventfd");
        shared.push_completion(3, vec!["OK".to_string()]);
        shared.push_completion(4, vec!["BUSY".to_string()]);
        let got = shared.take_completions();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 3);
        assert_eq!(got[1].1, vec!["BUSY".to_string()]);
        assert!(shared.take_completions().is_empty());
    }
}
