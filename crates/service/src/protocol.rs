//! The line-oriented text protocol spoken by `ceci-serve`.
//!
//! One request per line; whitespace-separated tokens; the command word is
//! case-insensitive. Responses are one or more lines, and the *last* line of
//! every response starts with one of the three terminal words, so clients
//! can frame responses without length prefixes:
//!
//! * `OK ...` — success (possibly preceded by payload lines),
//! * `BUSY` — admission control rejected the request (queue full),
//! * `ERR <code> <message>` — the request failed; `<code>` is a stable
//!   machine-readable [`ErrorCode`] spelling (`E_*`), the message free text.
//!
//! Grammar:
//!
//! ```text
//! LOAD <name> <path> [EDGELIST] [DIRECTED]
//! MATCH <graph> <query-path> [LIMIT <k>] [DEADLINE <ms>] [WORKERS <n>] [RAW] [EXACT]
//! ESTIMATE <graph> <query-path> [WALKS <n>]
//! EXPLAIN <graph> <query-path> [ANALYZE]
//! STATS [PROM]
//! SLEEP <ms>
//! CHAOS PANIC | BUILDPANIC | BUILDDELAY <ms> | DELAY <ms>
//!       | EXIT [after-ms] | STALL <ms>
//! ADDEDGE <graph> <u> <v>
//! DELEDGE <graph> <u> <v>
//! BATCH <graph> {+<u>:<v> | -<u>:<v>}...
//! BATCH <graph> FILE <path>
//! REGISTER <name> <graph> <query-path>
//! UNREGISTER <name>
//! PREPARE <name> <query-path> ROOT <r> ORDER <u0,u1,...> RADIUS <k>
//!         [SYM <a:b,...>] [SYMCOMPLETE]
//! EXEC <name> <pivot> <epoch>
//! PING
//! QUIT
//! ```
//!
//! `PREPARE`/`EXEC` are the *shard plane*, spoken between a `ceci-serve`
//! coordinator and `ceci-shard` processes (they parse everywhere but the
//! query daemon refuses them). `PREPARE` pins the coordinator's plan
//! decisions — query root, matching order, symmetry-breaking constraints
//! (`a:b` means `map(a) < map(b)`), and the fragment extraction radius — so
//! every shard enumerates under the *same* plan as a single-process run.
//! `EXEC` asks for one pivot's cluster count; the shard extracts the
//! radius-ball fragment around the pivot on demand (out-of-core when the
//! graph is memory-mapped) and answers
//! `OK EXEC pivot=<p> epoch=<e> count=<c>`. The epoch is echoed verbatim:
//! commit validation (first-commit-wins, stale-epoch rejection) lives on
//! the coordinator's result board.
//!
//! `ADDEDGE`/`DELEDGE`/`BATCH` mutate a loaded graph in place (streaming
//! updates): each applied batch bumps the graph's mutation *sub-epoch* and
//! publishes a fresh snapshot, leaving in-flight requests on the old one.
//! `BATCH ... FILE` reads a SNAP temporal edge list (`src dst ts`) server
//! side and applies every edge as one batch of additions.
//!
//! `REGISTER` pins a *continuous query*: the server keeps its index live
//! across mutation batches and pushes one asynchronous line
//!
//! ```text
//! EVENT DELTA query=<name> graph=<g> batch=<sub-epoch> new=<n> retired=<r> total=<t>
//! ```
//!
//! to the registering connection per applied batch. `EVENT` lines are never
//! terminal and may interleave *between* (never inside) responses on that
//! connection; clients must treat them as out-of-band payload.
//!
//! `MATCH ... RAW` opts one request out of the multi-query optimization
//! layer (admission filter, single-flight builds, shared-prefix batching,
//! redundant-extension pruning) — the differential lever used to verify the
//! optimized path returns bit-identical counts.
//!
//! `MATCH ... DEADLINE <ms>` is *deadline-aware*: when the adaptive planner
//! predicts the exact enumeration cannot finish inside the deadline, the
//! server degrades gracefully — it answers from the random-walk estimator
//! (`OK MATCH ... mode=APPROX mean=... std_error=... ci95_lo=... ci95_hi=...`)
//! instead of burning a worker for the full deadline, or refuses outright
//! with `ERR E_INFEASIBLE` when even the estimate is too noisy to be useful.
//! `MATCH ... EXACT` opts out of degradation: the request always runs the
//! exact enumeration, reporting `status=DEADLINE_EXCEEDED` with a partial
//! count if the deadline trips (the pre-adaptive behavior).
//!
//! `ESTIMATE` answers the cardinality question directly: it runs the
//! random-walk estimator over the (cached) index and reports the mean,
//! standard error and 95% confidence interval without enumerating.
//!
//! `CHAOS` is a fault-injection verb for testing the server's failure
//! paths; it is refused with `E_CHAOS_DISABLED` unless the server was
//! started with chaos mode enabled (`--chaos`).
//!
//! Payload lines of multi-line responses (`STATS`, `EXPLAIN`) are prefixed
//! with `STAT ` / `| ` respectively and never start with a terminal word.

use std::fmt;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load (or replace) a named graph from a server-side file.
    Load {
        /// Registry name for the graph.
        name: String,
        /// Server-side path to read.
        path: String,
        /// `true` = SNAP edge list, `false` = labeled t/v/e format.
        edge_list: bool,
        /// Provenance flag for edge lists.
        directed: bool,
    },
    /// Match a query pattern against a loaded graph.
    Match {
        /// Name of a loaded graph.
        graph: String,
        /// Server-side path of the query (labeled t/v/e format).
        query_path: String,
        /// Stop after this many embeddings.
        limit: Option<u64>,
        /// Per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Enumeration threads for this request (capped by the server).
        workers: Option<usize>,
        /// `RAW`: bypass the multi-query optimization layer (admission
        /// filter, shared-prefix batching, redundant-extension pruning) for
        /// this request — the differential lever for verifying bit-identical
        /// counts.
        raw: bool,
        /// `EXACT`: opt out of deadline-aware graceful degradation — always
        /// run the exact enumeration even when the planner predicts the
        /// deadline is infeasible.
        exact: bool,
    },
    /// Estimate the embedding count of a (graph, query) pair via random
    /// walks over the index, without enumerating.
    Estimate {
        /// Name of a loaded graph.
        graph: String,
        /// Server-side path of the query (labeled t/v/e format).
        query_path: String,
        /// Walk budget override (`WALKS <n>`); server default otherwise.
        walks: Option<u64>,
    },
    /// Plan/index report for a (graph, query) pair.
    Explain {
        /// Name of a loaded graph.
        graph: String,
        /// Server-side path of the query.
        query_path: String,
        /// `EXPLAIN ... ANALYZE`: actually run the enumeration with a
        /// per-depth profile attached and append the `EXPLAIN ANALYZE`
        /// table (per-depth calls / candidates / intersections / emits /
        /// backtracks / sampled time).
        analyze: bool,
    },
    /// Aggregate server metrics.
    Stats {
        /// `STATS PROM`: render the Prometheus text-exposition format
        /// instead of `STAT <key> <value>` rows.
        prom: bool,
    },
    /// Occupy one pool worker for `ms` milliseconds — an operational aid for
    /// probing admission control (and the deterministic lever the
    /// integration tests use to force `BUSY`).
    Sleep {
        /// How long the worker sleeps.
        ms: u64,
    },
    /// Inject a fault (chaos-mode only; see [`ChaosCommand`]).
    Chaos {
        /// What to break.
        command: ChaosCommand,
    },
    /// Apply a batch of edge mutations to a loaded graph.
    Mutate {
        /// Name of a loaded graph.
        graph: String,
        /// Undirected edges to add, as `(u, v)` vertex-id pairs.
        adds: Vec<(u32, u32)>,
        /// Undirected edges to delete.
        dels: Vec<(u32, u32)>,
    },
    /// Apply a server-side SNAP temporal edge-list file as one batch of
    /// additions.
    BatchFile {
        /// Name of a loaded graph.
        graph: String,
        /// Server-side path of the `src dst ts` file.
        path: String,
    },
    /// Register a continuous query: keep its index live across mutation
    /// batches and emit `EVENT DELTA` lines to this connection.
    Register {
        /// Registration handle (unique per server; re-registering replaces).
        name: String,
        /// Name of a loaded graph.
        graph: String,
        /// Server-side path of the query (labeled t/v/e format).
        query_path: String,
    },
    /// Drop a continuous-query registration.
    Unregister {
        /// The handle passed to `REGISTER`.
        name: String,
    },
    /// Shard plane: pin a query's plan decisions on a `ceci-shard` so later
    /// `EXEC`s enumerate under the coordinator's (full-graph) plan.
    Prepare {
        /// Handle later `EXEC`s reference.
        name: String,
        /// Shard-side path of the query (labeled t/v/e format).
        query_path: String,
        /// Query root chosen by the coordinator.
        root: u32,
        /// Full matching order (query vertex ids, root first).
        order: Vec<u32>,
        /// Fragment extraction radius (max depth of the query tree).
        radius: usize,
        /// Symmetry-breaking constraints as `(smaller, larger)` query
        /// vertex pairs.
        sym: Vec<(u32, u32)>,
        /// Whether the constraint set breaks *all* automorphisms.
        sym_complete: bool,
    },
    /// Shard plane: count the embedding cluster of one pivot under a
    /// `PREPARE`d plan. The epoch is round-tripped for the coordinator's
    /// result board.
    Exec {
        /// The `PREPARE` handle.
        name: String,
        /// Global data-vertex id of the pivot.
        pivot: u32,
        /// Coordinator ownership epoch, echoed in the response.
        epoch: u32,
    },
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

/// A `CHAOS` sub-command: which failure to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosCommand {
    /// Panic inside a pool worker while handling this request — exercises
    /// panic isolation, worker respawn, and the dropped-response path.
    Panic,
    /// Arm a one-shot flag so the *next* index build panics mid-build —
    /// exercises build isolation and cache quarantine.
    BuildPanic,
    /// Arm a one-shot flag so the *next* index build sleeps `ms`
    /// milliseconds before running — the deterministic lever for widening
    /// the single-flight window so concurrent identical MATCHes pile up
    /// behind one leader. Composes with `BuildPanic` (delay first, then
    /// panic).
    BuildDelay {
        /// How long the next build stalls.
        ms: u64,
    },
    /// Occupy a pool worker for `ms` milliseconds (like `SLEEP`, but
    /// counted as injected chaos) — a lever for forcing `BUSY` storms.
    Delay {
        /// How long the worker stalls.
        ms: u64,
    },
    /// Process-level fault: the server process exits (status 42) after
    /// `after_ms` milliseconds (immediately when omitted). On `ceci-shard`
    /// this is the deterministic stand-in for `kill -9` mid-enumeration.
    Exit {
        /// Delay before the process exits.
        after_ms: u64,
    },
    /// Process-level fault: arm a stall of `ms` milliseconds before every
    /// subsequent data/shard-plane request (0 disarms). A stalled shard
    /// stays heartbeat-alive but trips the coordinator's RPC timeout —
    /// the slow-shard re-scatter lever.
    Stall {
        /// Stall applied ahead of each subsequent request.
        ms: u64,
    },
}

/// Stable machine-readable error codes carried on `ERR` lines as the first
/// token after `ERR`. Clients branch on the code; the trailing message is
/// for humans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse.
    Parse,
    /// `MATCH`/`EXPLAIN` named a graph that is not loaded.
    UnknownGraph,
    /// The query file failed to load or validate.
    Query,
    /// `LOAD` failed to read or parse the graph file.
    Load,
    /// The worker handling the request dropped its response channel
    /// (it panicked mid-request and was respawned).
    WorkerDropped,
    /// The index build for this (graph, query) panicked; the request
    /// failed and the cache key was quarantined.
    BuildPanic,
    /// The (graph, query) cache key is quarantined by an earlier build
    /// panic; re-`LOAD` the graph to clear it.
    Quarantined,
    /// A `CHAOS` command arrived but the server runs without `--chaos`.
    ChaosDisabled,
    /// An `ADDEDGE`/`DELEDGE`/`BATCH` mutation was invalid (endpoint out of
    /// range, unreadable batch file, or malformed edge token).
    Mutation,
    /// A `REGISTER`/`UNREGISTER` request failed (unknown handle, or the
    /// continuous query could not be planned).
    Register,
    /// The adaptive planner predicted the request cannot finish inside its
    /// `DEADLINE` and the estimate is too noisy to answer `APPROX`; retry
    /// with `EXACT`, a larger deadline, or `ESTIMATE`.
    Infeasible,
    /// A socket read or write hit its configured timeout: the peer is
    /// half-open, stalled, or abandoned the connection mid-request.
    Timeout,
    /// A shard-plane request failed (`PREPARE`/`EXEC` on a non-shard
    /// server, an `EXEC` naming an unprepared handle, or a coordinator that
    /// exhausted its retry budget against an unreachable shard).
    Shard,
}

impl ErrorCode {
    /// Wire spelling (`E_*`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "E_PARSE",
            ErrorCode::UnknownGraph => "E_UNKNOWN_GRAPH",
            ErrorCode::Query => "E_QUERY",
            ErrorCode::Load => "E_LOAD",
            ErrorCode::WorkerDropped => "E_WORKER_DROPPED",
            ErrorCode::BuildPanic => "E_BUILD_PANIC",
            ErrorCode::Quarantined => "E_QUARANTINED",
            ErrorCode::ChaosDisabled => "E_CHAOS_DISABLED",
            ErrorCode::Mutation => "E_MUTATION",
            ErrorCode::Register => "E_REGISTER",
            ErrorCode::Infeasible => "E_INFEASIBLE",
            ErrorCode::Timeout => "E_TIMEOUT",
            ErrorCode::Shard => "E_SHARD",
        }
    }

    /// Formats the terminal `ERR <code> <message>` line.
    pub fn line(self, message: impl std::fmt::Display) -> String {
        format!("ERR {} {message}", self.as_str())
    }
}

/// A request line that could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_u64(tokens: &mut std::slice::Iter<'_, &str>, what: &str) -> Result<u64, ParseError> {
    tokens
        .next()
        .ok_or_else(|| err(format!("{what} requires a value")))?
        .parse()
        .map_err(|_| err(format!("invalid {what} value")))
}

fn parse_vertex(tokens: &mut std::slice::Iter<'_, &str>, what: &str) -> Result<u32, ParseError> {
    tokens
        .next()
        .ok_or_else(|| err(format!("{what} requires <graph> <u> <v>")))?
        .parse()
        .map_err(|_| err(format!("{what} vertex ids must be u32")))
}

/// Parses one `BATCH` edge token: `+u:v` (add) or `-u:v` (delete).
fn parse_edge_token(token: &str) -> Result<(bool, u32, u32), ParseError> {
    let (add, rest) = match token.as_bytes().first() {
        Some(b'+') => (true, &token[1..]),
        Some(b'-') => (false, &token[1..]),
        _ => return Err(err(format!("BATCH edge {token:?} must start with + or -"))),
    };
    let (u, v) = rest
        .split_once(':')
        .ok_or_else(|| err(format!("BATCH edge {token:?} must be +u:v or -u:v")))?;
    let u = u
        .parse()
        .map_err(|_| err(format!("BATCH edge {token:?}: vertex ids must be u32")))?;
    let v = v
        .parse()
        .map_err(|_| err(format!("BATCH edge {token:?}: vertex ids must be u32")))?;
    Ok((add, u, v))
}

/// Parses one request line. Empty lines and `#` comments yield `Ok(None)`.
pub fn parse_request(line: &str) -> Result<Option<Request>, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let mut it = tokens[1..].iter();
    let cmd = tokens[0].to_ascii_uppercase();
    let request = match cmd.as_str() {
        "LOAD" => {
            let name = it
                .next()
                .ok_or_else(|| err("LOAD requires <name> <path>"))?;
            let path = it
                .next()
                .ok_or_else(|| err("LOAD requires <name> <path>"))?;
            let mut edge_list = false;
            let mut directed = false;
            for flag in it {
                match flag.to_ascii_uppercase().as_str() {
                    "EDGELIST" => edge_list = true,
                    "DIRECTED" => directed = true,
                    other => return Err(err(format!("unknown LOAD flag {other:?}"))),
                }
            }
            Request::Load {
                name: name.to_string(),
                path: path.to_string(),
                edge_list,
                directed,
            }
        }
        "MATCH" => {
            let graph = it
                .next()
                .ok_or_else(|| err("MATCH requires <graph> <query-path>"))?;
            let query_path = it
                .next()
                .ok_or_else(|| err("MATCH requires <graph> <query-path>"))?;
            let mut limit = None;
            let mut deadline_ms = None;
            let mut workers = None;
            let mut raw = false;
            let mut exact = false;
            while let Some(opt) = it.next() {
                match opt.to_ascii_uppercase().as_str() {
                    "LIMIT" => limit = Some(parse_u64(&mut it, "LIMIT")?),
                    "DEADLINE" => deadline_ms = Some(parse_u64(&mut it, "DEADLINE")?),
                    "WORKERS" => {
                        let w = parse_u64(&mut it, "WORKERS")?;
                        if w == 0 {
                            return Err(err("WORKERS must be >= 1"));
                        }
                        workers = Some(w as usize);
                    }
                    "RAW" => raw = true,
                    "EXACT" => exact = true,
                    other => return Err(err(format!("unknown MATCH option {other:?}"))),
                }
            }
            Request::Match {
                graph: graph.to_string(),
                query_path: query_path.to_string(),
                limit,
                deadline_ms,
                workers,
                raw,
                exact,
            }
        }
        "ESTIMATE" => {
            let graph = it
                .next()
                .ok_or_else(|| err("ESTIMATE requires <graph> <query-path>"))?;
            let query_path = it
                .next()
                .ok_or_else(|| err("ESTIMATE requires <graph> <query-path>"))?;
            let mut walks = None;
            while let Some(opt) = it.next() {
                match opt.to_ascii_uppercase().as_str() {
                    "WALKS" => {
                        let w = parse_u64(&mut it, "WALKS")?;
                        if w == 0 {
                            return Err(err("WALKS must be >= 1"));
                        }
                        walks = Some(w);
                    }
                    other => return Err(err(format!("unknown ESTIMATE option {other:?}"))),
                }
            }
            Request::Estimate {
                graph: graph.to_string(),
                query_path: query_path.to_string(),
                walks,
            }
        }
        "EXPLAIN" => {
            let graph = it
                .next()
                .ok_or_else(|| err("EXPLAIN requires <graph> <query-path>"))?;
            let query_path = it
                .next()
                .ok_or_else(|| err("EXPLAIN requires <graph> <query-path>"))?;
            let mut analyze = false;
            for flag in it {
                match flag.to_ascii_uppercase().as_str() {
                    "ANALYZE" => analyze = true,
                    other => return Err(err(format!("unknown EXPLAIN flag {other:?}"))),
                }
            }
            Request::Explain {
                graph: graph.to_string(),
                query_path: query_path.to_string(),
                analyze,
            }
        }
        "STATS" => {
            let mut prom = false;
            for flag in it {
                match flag.to_ascii_uppercase().as_str() {
                    "PROM" => prom = true,
                    other => return Err(err(format!("unknown STATS flag {other:?}"))),
                }
            }
            Request::Stats { prom }
        }
        "SLEEP" => Request::Sleep {
            ms: parse_u64(&mut it, "SLEEP")?,
        },
        "CHAOS" => {
            let sub = it.next().ok_or_else(|| {
                err(
                    "CHAOS requires PANIC | BUILDPANIC | BUILDDELAY <ms> | DELAY <ms> \
                     | EXIT [after-ms] | STALL <ms>",
                )
            })?;
            let command = match sub.to_ascii_uppercase().as_str() {
                "PANIC" => ChaosCommand::Panic,
                "BUILDPANIC" => ChaosCommand::BuildPanic,
                "BUILDDELAY" => ChaosCommand::BuildDelay {
                    ms: parse_u64(&mut it, "BUILDDELAY")?,
                },
                "DELAY" => ChaosCommand::Delay {
                    ms: parse_u64(&mut it, "DELAY")?,
                },
                "EXIT" => ChaosCommand::Exit {
                    after_ms: match it.next() {
                        Some(ms) => ms
                            .parse()
                            .map_err(|_| err("invalid CHAOS EXIT after-ms value"))?,
                        None => 0,
                    },
                },
                "STALL" => ChaosCommand::Stall {
                    ms: parse_u64(&mut it, "STALL")?,
                },
                other => return Err(err(format!("unknown CHAOS command {other:?}"))),
            };
            Request::Chaos { command }
        }
        "ADDEDGE" | "DELEDGE" => {
            let graph = it
                .next()
                .ok_or_else(|| err(format!("{cmd} requires <graph> <u> <v>")))?;
            let u = parse_vertex(&mut it, &cmd)?;
            let v = parse_vertex(&mut it, &cmd)?;
            if it.next().is_some() {
                return Err(err(format!("{cmd} takes exactly <graph> <u> <v>")));
            }
            let (adds, dels) = if cmd == "ADDEDGE" {
                (vec![(u, v)], Vec::new())
            } else {
                (Vec::new(), vec![(u, v)])
            };
            Request::Mutate {
                graph: graph.to_string(),
                adds,
                dels,
            }
        }
        "BATCH" => {
            let graph = it
                .next()
                .ok_or_else(|| err("BATCH requires <graph> followed by edges or FILE <path>"))?;
            let first = it.next().ok_or_else(|| {
                err("BATCH requires at least one +u:v / -u:v edge or FILE <path>")
            })?;
            if first.eq_ignore_ascii_case("FILE") {
                let path = it
                    .next()
                    .ok_or_else(|| err("BATCH ... FILE requires <path>"))?;
                if it.next().is_some() {
                    return Err(err("BATCH ... FILE takes exactly one path"));
                }
                Request::BatchFile {
                    graph: graph.to_string(),
                    path: path.to_string(),
                }
            } else {
                let mut adds = Vec::new();
                let mut dels = Vec::new();
                for token in std::iter::once(first).chain(it) {
                    let (add, u, v) = parse_edge_token(token)?;
                    if add {
                        adds.push((u, v));
                    } else {
                        dels.push((u, v));
                    }
                }
                Request::Mutate {
                    graph: graph.to_string(),
                    adds,
                    dels,
                }
            }
        }
        "REGISTER" => {
            let name = it
                .next()
                .ok_or_else(|| err("REGISTER requires <name> <graph> <query-path>"))?;
            let graph = it
                .next()
                .ok_or_else(|| err("REGISTER requires <name> <graph> <query-path>"))?;
            let query_path = it
                .next()
                .ok_or_else(|| err("REGISTER requires <name> <graph> <query-path>"))?;
            if it.next().is_some() {
                return Err(err("REGISTER takes exactly <name> <graph> <query-path>"));
            }
            Request::Register {
                name: name.to_string(),
                graph: graph.to_string(),
                query_path: query_path.to_string(),
            }
        }
        "UNREGISTER" => {
            let name = it.next().ok_or_else(|| err("UNREGISTER requires <name>"))?;
            if it.next().is_some() {
                return Err(err("UNREGISTER takes exactly <name>"));
            }
            Request::Unregister {
                name: name.to_string(),
            }
        }
        "PREPARE" => {
            let name = it
                .next()
                .ok_or_else(|| err("PREPARE requires <name> <query-path> ROOT <r> ORDER <...>"))?;
            let query_path = it
                .next()
                .ok_or_else(|| err("PREPARE requires <name> <query-path> ROOT <r> ORDER <...>"))?;
            let mut root = None;
            let mut order = Vec::new();
            let mut radius = None;
            let mut sym = Vec::new();
            let mut sym_complete = false;
            while let Some(opt) = it.next() {
                match opt.to_ascii_uppercase().as_str() {
                    "ROOT" => root = Some(parse_u64(&mut it, "ROOT")? as u32),
                    "RADIUS" => radius = Some(parse_u64(&mut it, "RADIUS")? as usize),
                    "ORDER" => {
                        let list = it.next().ok_or_else(|| err("ORDER requires u0,u1,..."))?;
                        for tok in list.split(',') {
                            order.push(
                                tok.parse()
                                    .map_err(|_| err("ORDER vertex ids must be u32"))?,
                            );
                        }
                    }
                    "SYM" => {
                        let list = it.next().ok_or_else(|| err("SYM requires a:b,..."))?;
                        for tok in list.split(',') {
                            let (a, b) = tok
                                .split_once(':')
                                .ok_or_else(|| err("SYM pairs must be a:b"))?;
                            let a = a.parse().map_err(|_| err("SYM ids must be u32"))?;
                            let b = b.parse().map_err(|_| err("SYM ids must be u32"))?;
                            sym.push((a, b));
                        }
                    }
                    "SYMCOMPLETE" => sym_complete = true,
                    other => return Err(err(format!("unknown PREPARE option {other:?}"))),
                }
            }
            let root = root.ok_or_else(|| err("PREPARE requires ROOT <r>"))?;
            let radius = radius.ok_or_else(|| err("PREPARE requires RADIUS <k>"))?;
            if order.is_empty() {
                return Err(err("PREPARE requires a non-empty ORDER"));
            }
            Request::Prepare {
                name: name.to_string(),
                query_path: query_path.to_string(),
                root,
                order,
                radius,
                sym,
                sym_complete,
            }
        }
        "EXEC" => {
            let name = it
                .next()
                .ok_or_else(|| err("EXEC requires <name> <pivot> <epoch>"))?;
            let pivot = parse_u64(&mut it, "EXEC pivot")? as u32;
            let epoch = parse_u64(&mut it, "EXEC epoch")? as u32;
            if it.next().is_some() {
                return Err(err("EXEC takes exactly <name> <pivot> <epoch>"));
            }
            Request::Exec {
                name: name.to_string(),
                pivot,
                epoch,
            }
        }
        "PING" => Request::Ping,
        "QUIT" => Request::Quit,
        other => return Err(err(format!("unknown command {other:?}"))),
    };
    Ok(Some(request))
}

/// Terminal status of a MATCH response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchStatus {
    /// Enumeration ran to completion (or to its LIMIT).
    Ok,
    /// The per-request deadline tripped; the count is partial.
    DeadlineExceeded,
}

impl MatchStatus {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MatchStatus::Ok => "OK",
            MatchStatus::DeadlineExceeded => "DEADLINE_EXCEEDED",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_load() {
        assert_eq!(
            parse_request("LOAD social /data/s.graph").unwrap(),
            Some(Request::Load {
                name: "social".into(),
                path: "/data/s.graph".into(),
                edge_list: false,
                directed: false,
            })
        );
        assert_eq!(
            parse_request("load g p edgelist directed").unwrap(),
            Some(Request::Load {
                name: "g".into(),
                path: "p".into(),
                edge_list: true,
                directed: true,
            })
        );
        assert!(parse_request("LOAD onlyname").is_err());
        assert!(parse_request("LOAD g p BOGUS").is_err());
    }

    #[test]
    fn parses_match_with_options() {
        assert_eq!(
            parse_request("MATCH g q.graph LIMIT 100 DEADLINE 50 WORKERS 2").unwrap(),
            Some(Request::Match {
                graph: "g".into(),
                query_path: "q.graph".into(),
                limit: Some(100),
                deadline_ms: Some(50),
                workers: Some(2),
                raw: false,
                exact: false,
            })
        );
        assert_eq!(
            parse_request("match g q").unwrap(),
            Some(Request::Match {
                graph: "g".into(),
                query_path: "q".into(),
                limit: None,
                deadline_ms: None,
                workers: None,
                raw: false,
                exact: false,
            })
        );
        assert_eq!(
            parse_request("MATCH g q RAW").unwrap(),
            Some(Request::Match {
                graph: "g".into(),
                query_path: "q".into(),
                limit: None,
                deadline_ms: None,
                workers: None,
                raw: true,
                exact: false,
            })
        );
        assert_eq!(
            parse_request("MATCH g q DEADLINE 10 EXACT").unwrap(),
            Some(Request::Match {
                graph: "g".into(),
                query_path: "q".into(),
                limit: None,
                deadline_ms: Some(10),
                workers: None,
                raw: false,
                exact: true,
            })
        );
        assert!(parse_request("MATCH g q LIMIT").is_err());
        assert!(parse_request("MATCH g q LIMIT abc").is_err());
        assert!(parse_request("MATCH g q WORKERS 0").is_err());
        assert!(parse_request("MATCH g").is_err());
    }

    #[test]
    fn parses_estimate() {
        assert_eq!(
            parse_request("ESTIMATE g q.graph").unwrap(),
            Some(Request::Estimate {
                graph: "g".into(),
                query_path: "q.graph".into(),
                walks: None,
            })
        );
        assert_eq!(
            parse_request("estimate g q walks 500").unwrap(),
            Some(Request::Estimate {
                graph: "g".into(),
                query_path: "q".into(),
                walks: Some(500),
            })
        );
        assert!(parse_request("ESTIMATE g").is_err());
        assert!(parse_request("ESTIMATE g q WALKS").is_err());
        assert!(parse_request("ESTIMATE g q WALKS 0").is_err());
        assert!(parse_request("ESTIMATE g q BOGUS").is_err());
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(
            parse_request("STATS").unwrap(),
            Some(Request::Stats { prom: false })
        );
        assert_eq!(
            parse_request("stats prom").unwrap(),
            Some(Request::Stats { prom: true })
        );
        assert!(parse_request("STATS BOGUS").is_err());
        assert_eq!(parse_request("ping").unwrap(), Some(Request::Ping));
        assert_eq!(parse_request("QUIT").unwrap(), Some(Request::Quit));
        assert_eq!(
            parse_request("SLEEP 25").unwrap(),
            Some(Request::Sleep { ms: 25 })
        );
        assert_eq!(
            parse_request("EXPLAIN g q").unwrap(),
            Some(Request::Explain {
                graph: "g".into(),
                query_path: "q".into(),
                analyze: false,
            })
        );
        assert_eq!(
            parse_request("explain g q analyze").unwrap(),
            Some(Request::Explain {
                graph: "g".into(),
                query_path: "q".into(),
                analyze: true,
            })
        );
        assert!(parse_request("EXPLAIN g q VERBOSE").is_err());
    }

    #[test]
    fn blank_and_comment_lines_skip() {
        assert_eq!(parse_request("").unwrap(), None);
        assert_eq!(parse_request("   ").unwrap(), None);
        assert_eq!(parse_request("# note").unwrap(), None);
    }

    #[test]
    fn unknown_command_errors() {
        let e = parse_request("FROB x").unwrap_err();
        assert!(e.to_string().contains("FROB"));
    }

    #[test]
    fn status_spelling() {
        assert_eq!(MatchStatus::Ok.as_str(), "OK");
        assert_eq!(MatchStatus::DeadlineExceeded.as_str(), "DEADLINE_EXCEEDED");
    }

    #[test]
    fn parses_chaos_commands() {
        assert_eq!(
            parse_request("CHAOS PANIC").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Panic
            })
        );
        assert_eq!(
            parse_request("chaos buildpanic").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::BuildPanic
            })
        );
        assert_eq!(
            parse_request("CHAOS DELAY 40").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Delay { ms: 40 }
            })
        );
        assert_eq!(
            parse_request("chaos builddelay 250").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::BuildDelay { ms: 250 }
            })
        );
        assert!(parse_request("CHAOS").is_err());
        assert!(parse_request("CHAOS DELAY").is_err());
        assert!(parse_request("CHAOS BUILDDELAY").is_err());
        assert!(parse_request("CHAOS FLOOD").is_err());
    }

    #[test]
    fn parses_process_chaos_commands() {
        assert_eq!(
            parse_request("CHAOS EXIT").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Exit { after_ms: 0 }
            })
        );
        assert_eq!(
            parse_request("chaos exit 150").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Exit { after_ms: 150 }
            })
        );
        assert_eq!(
            parse_request("CHAOS STALL 300").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Stall { ms: 300 }
            })
        );
        assert_eq!(
            parse_request("chaos stall 0").unwrap(),
            Some(Request::Chaos {
                command: ChaosCommand::Stall { ms: 0 }
            })
        );
        assert!(parse_request("CHAOS EXIT soon").is_err());
        assert!(parse_request("CHAOS STALL").is_err());
        assert!(parse_request("CHAOS STALL forever").is_err());
    }

    #[test]
    fn parses_shard_plane_verbs() {
        assert_eq!(
            parse_request("PREPARE q /tmp/q.graph ROOT 2 ORDER 2,0,1,3 RADIUS 3").unwrap(),
            Some(Request::Prepare {
                name: "q".into(),
                query_path: "/tmp/q.graph".into(),
                root: 2,
                order: vec![2, 0, 1, 3],
                radius: 3,
                sym: vec![],
                sym_complete: false,
            })
        );
        assert_eq!(
            parse_request("prepare q q.g root 0 order 0,1 radius 1 sym 0:1,1:2 symcomplete")
                .unwrap(),
            Some(Request::Prepare {
                name: "q".into(),
                query_path: "q.g".into(),
                root: 0,
                order: vec![0, 1],
                radius: 1,
                sym: vec![(0, 1), (1, 2)],
                sym_complete: true,
            })
        );
        assert_eq!(
            parse_request("EXEC q 42 7").unwrap(),
            Some(Request::Exec {
                name: "q".into(),
                pivot: 42,
                epoch: 7,
            })
        );
        assert!(parse_request("PREPARE q").is_err());
        assert!(
            parse_request("PREPARE q p ORDER 0,1 RADIUS 1").is_err(),
            "no ROOT"
        );
        assert!(
            parse_request("PREPARE q p ROOT 0 RADIUS 1").is_err(),
            "no ORDER"
        );
        assert!(
            parse_request("PREPARE q p ROOT 0 ORDER 0,1").is_err(),
            "no RADIUS"
        );
        assert!(parse_request("PREPARE q p ROOT 0 ORDER a,b RADIUS 1").is_err());
        assert!(parse_request("PREPARE q p ROOT 0 ORDER 0 RADIUS 1 SYM 0-1").is_err());
        assert!(parse_request("EXEC q 42").is_err());
        assert!(parse_request("EXEC q 42 7 9").is_err());
        assert!(parse_request("EXEC q x y").is_err());
    }

    #[test]
    fn parses_mutation_verbs() {
        assert_eq!(
            parse_request("ADDEDGE g 3 7").unwrap(),
            Some(Request::Mutate {
                graph: "g".into(),
                adds: vec![(3, 7)],
                dels: vec![],
            })
        );
        assert_eq!(
            parse_request("deledge g 0 1").unwrap(),
            Some(Request::Mutate {
                graph: "g".into(),
                adds: vec![],
                dels: vec![(0, 1)],
            })
        );
        assert_eq!(
            parse_request("BATCH g +1:2 -3:4 +5:6").unwrap(),
            Some(Request::Mutate {
                graph: "g".into(),
                adds: vec![(1, 2), (5, 6)],
                dels: vec![(3, 4)],
            })
        );
        assert_eq!(
            parse_request("batch g file /tmp/edges.txt").unwrap(),
            Some(Request::BatchFile {
                graph: "g".into(),
                path: "/tmp/edges.txt".into(),
            })
        );
        assert!(parse_request("ADDEDGE g 1").is_err());
        assert!(parse_request("ADDEDGE g 1 2 3").is_err());
        assert!(parse_request("ADDEDGE g a b").is_err());
        assert!(parse_request("BATCH g").is_err());
        assert!(parse_request("BATCH g 1:2").is_err(), "missing +/- sign");
        assert!(parse_request("BATCH g +1-2").is_err(), "missing colon");
        assert!(parse_request("BATCH g FILE").is_err());
    }

    #[test]
    fn parses_continuous_query_verbs() {
        assert_eq!(
            parse_request("REGISTER cq1 g q.graph").unwrap(),
            Some(Request::Register {
                name: "cq1".into(),
                graph: "g".into(),
                query_path: "q.graph".into(),
            })
        );
        assert_eq!(
            parse_request("unregister cq1").unwrap(),
            Some(Request::Unregister { name: "cq1".into() })
        );
        assert!(parse_request("REGISTER cq1 g").is_err());
        assert!(parse_request("REGISTER cq1 g q extra").is_err());
        assert!(parse_request("UNREGISTER").is_err());
        assert!(parse_request("UNREGISTER a b").is_err());
    }

    #[test]
    fn error_codes_format_err_lines() {
        assert_eq!(ErrorCode::WorkerDropped.as_str(), "E_WORKER_DROPPED");
        assert_eq!(
            ErrorCode::Quarantined.line("index build previously panicked"),
            "ERR E_QUARANTINED index build previously panicked"
        );
        // Every code spells as a single E_* token (clients split on space).
        for code in [
            ErrorCode::Parse,
            ErrorCode::UnknownGraph,
            ErrorCode::Query,
            ErrorCode::Load,
            ErrorCode::WorkerDropped,
            ErrorCode::BuildPanic,
            ErrorCode::Quarantined,
            ErrorCode::ChaosDisabled,
            ErrorCode::Mutation,
            ErrorCode::Register,
            ErrorCode::Infeasible,
            ErrorCode::Timeout,
            ErrorCode::Shard,
        ] {
            assert!(code.as_str().starts_with("E_"));
            assert!(!code.as_str().contains(' '));
        }
        assert_eq!(ErrorCode::Timeout.as_str(), "E_TIMEOUT");
        assert_eq!(ErrorCode::Shard.as_str(), "E_SHARD");
    }
}
