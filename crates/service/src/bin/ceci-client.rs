//! `ceci-client` — protocol client and closed-loop load generator.
//!
//! ```text
//! ceci-client --addr HOST:PORT [--retries N] CMD ARGS...  # one request
//! ceci-client --addr HOST:PORT [--retries N]              # pipe stdin lines
//! ceci-client --bench-local [options]          # self-contained load baseline
//!
//! `--retries N` retries BUSY rejections and transient transport failures
//! (connection reset / EOF mid-response) up to N times with exponential
//! backoff plus deterministic jitter, reconnecting as needed.
//!
//! bench-local options:
//!   --clients N     concurrent connections (default 8)
//!   --requests N    requests per connection (default 25)
//!   --graph-n N     synthetic data-graph vertices (default 2000)
//!   --query-size N  extracted query vertices (default 4)
//!   --retries N     per-request retry budget for BUSY/transient errors
//!                   (default 0 = one shot)
//!   --think-ms N    think time between requests per client loop (default 0);
//!                   with thousands of clients this keeps the offered load
//!                   constant (offered_rps ≈ clients × 1000 / think_ms)
//!   --out FILE      write a JSON report (e.g. bench_results/service.json)
//! ```
//!
//! `--bench-local` starts an in-process server on a loopback ephemeral
//! port, loads a deterministic synthetic labeled graph, extracts a query
//! pattern from it, and drives the load generator against repeated `MATCH`
//! requests — the cache-hit serving path under concurrency, with no
//! external process management. Exit code is non-zero if any request
//! errors.
//!
//! In one-shot mode the exit code mirrors the terminal line: 0 for `OK`,
//! 3 for `BUSY`, 1 for `ERR`.
//! ```

use std::io::{BufRead, Write};
use std::process::exit;
use std::sync::Arc;

use ceci_graph::extract::extract_query;
use ceci_graph::generators::{erdos_renyi, inject_random_labels};
use ceci_graph::io as graph_io;
use ceci_service::{
    run_load, start_with_state, Client, LoadConfig, RetryPolicy, ServeConfig, ServerState,
};

fn usage() -> ! {
    eprintln!(
        "usage: ceci-client --addr HOST:PORT [--retries N] [CMD ARGS...]\n       \
         ceci-client --bench-local [--clients N] [--requests N] [--graph-n N] \
         [--query-size N] [--retries N] [--think-ms N] [--out FILE]"
    );
    exit(2)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--bench-local") {
        bench_local(&raw);
        return;
    }
    let mut addr = String::new();
    let mut retries: u32 = 0;
    let mut command: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--addr" => {
                i += 1;
                addr = raw.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--retries" => {
                i += 1;
                retries = raw
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => command.push(raw[i].clone()),
        }
        i += 1;
    }
    if addr.is_empty() {
        usage();
    }
    let retry = (retries > 0).then(|| RetryPolicy {
        max_retries: retries,
        ..RetryPolicy::default()
    });
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: connect {addr}: {e}");
        exit(1);
    });
    if command.is_empty() {
        // Interactive / piped mode: forward stdin lines, print responses.
        let stdin = std::io::stdin();
        let mut status = 0;
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            match send_and_print(&mut client, &line, retry.as_ref()) {
                Ok(s) => status = s,
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(1);
                }
            }
        }
        exit(status);
    }
    let line = command.join(" ");
    match send_and_print(&mut client, &line, retry.as_ref()) {
        Ok(status) => exit(status),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

/// Sends one request (retrying under `retry` when given), prints the full
/// response, returns the exit status for its terminal line.
fn send_and_print(
    client: &mut Client,
    line: &str,
    retry: Option<&RetryPolicy>,
) -> std::io::Result<i32> {
    let resp = match retry {
        Some(policy) => {
            let outcome = client.request_with_retry(line, policy)?;
            if outcome.attempts > 1 {
                eprintln!(
                    "({} attempts, {} reconnects)",
                    outcome.attempts, outcome.reconnects
                );
            }
            outcome.response
        }
        None => client.request(line)?,
    };
    for l in &resp.payload {
        println!("{l}");
    }
    println!("{}", resp.terminal);
    Ok(if resp.is_ok() {
        0
    } else if resp.is_busy() {
        3
    } else {
        1
    })
}

struct BenchArgs {
    clients: usize,
    requests: usize,
    graph_n: usize,
    query_size: usize,
    retries: u32,
    think_ms: u64,
    out: Option<String>,
}

fn parse_bench_args(raw: &[String]) -> BenchArgs {
    let mut args = BenchArgs {
        clients: 8,
        requests: 25,
        graph_n: 2000,
        query_size: 4,
        retries: 0,
        think_ms: 0,
        out: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        raw.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--bench-local" => {}
            "--clients" => args.clients = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => args.requests = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--graph-n" => args.graph_n = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--query-size" => args.query_size = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--retries" => args.retries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--think-ms" => args.think_ms = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value(&mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn bench_local(raw: &[String]) {
    let args = parse_bench_args(raw);

    // Deterministic synthetic workload: a labeled ER graph plus a query
    // pattern carved out of it (guaranteed at least one embedding).
    let graph = inject_random_labels(
        &erdos_renyi(args.graph_n, args.graph_n * 4, 0xCEC1),
        4,
        0xCEC1,
    );
    let extracted = extract_query(&graph, args.query_size, 7, 50).unwrap_or_else(|| {
        eprintln!("error: could not extract a connected query; try a larger --graph-n");
        exit(1);
    });
    let query_path = std::env::temp_dir().join(format!(
        "ceci-bench-query-{}-{}.graph",
        std::process::id(),
        args.query_size
    ));
    let mut file = std::fs::File::create(&query_path).unwrap_or_else(|e| {
        eprintln!("error: write query file: {e}");
        exit(1);
    });
    graph_io::write_labeled(&extracted.pattern, &mut file).expect("serialize query");
    file.flush().ok();

    // In-process server on an ephemeral loopback port, graph preloaded.
    let state = Arc::new(ServerState::new(ServeConfig {
        pool_workers: args.clients.clamp(2, 8),
        queue_cap: args.clients * 2,
        ..ServeConfig::default()
    }));
    state.registry.insert("bench", graph);
    let handle = start_with_state(Arc::clone(&state)).unwrap_or_else(|e| {
        eprintln!("error: bind failed: {e}");
        exit(1);
    });

    let request = format!("MATCH bench {}", query_path.display());
    let load = LoadConfig {
        clients: args.clients,
        requests_per_client: args.requests,
        request,
        retry: (args.retries > 0).then(|| RetryPolicy {
            max_retries: args.retries,
            ..RetryPolicy::default()
        }),
        think_ms: args.think_ms,
    };
    let report = run_load(handle.addr(), &load);

    let cache_hits = state
        .metrics
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let cache_misses = state
        .metrics
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    handle.shutdown();
    std::fs::remove_file(&query_path).ok();

    let p50 = report.latency.quantile_us(0.50);
    let p99 = report.latency.quantile_us(0.99);
    println!(
        "bench-local: clients={} requests={} ok={} busy={} err={} io_errors={}",
        args.clients, args.requests, report.ok, report.busy, report.err, report.io_errors
    );
    println!(
        "  throughput={:.1} req/s p50={p50}us p99={p99}us cache_hits={cache_hits} \
         cache_misses={cache_misses}",
        report.throughput_rps()
    );

    if let Some(out) = &args.out {
        if let Some(parent) = std::path::Path::new(out).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        let json = format!(
            "{{\n  \"benchmark\": \"service_bench_local\",\n  \"clients\": {},\n  \
             \"requests_per_client\": {},\n  \"think_ms\": {},\n  \"graph_n\": {},\n  \
             \"query_size\": {},\n  \
             \"ok\": {},\n  \"busy\": {},\n  \"err\": {},\n  \"io_errors\": {},\n  \
             \"wall_ms\": {},\n  \"throughput_rps\": {:.2},\n  \"latency_p50_us\": {},\n  \
             \"latency_p99_us\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
            args.clients,
            args.requests,
            args.think_ms,
            args.graph_n,
            args.query_size,
            report.ok,
            report.busy,
            report.err,
            report.io_errors,
            report.wall.as_millis(),
            report.throughput_rps(),
            p50,
            p99,
            cache_hits,
            cache_misses,
        );
        std::fs::write(out, json).unwrap_or_else(|e| {
            eprintln!("error: write {out}: {e}");
            exit(1);
        });
        println!("  report written to {out}");
    }

    if report.err > 0 || report.io_errors > 0 {
        exit(1);
    }
}
