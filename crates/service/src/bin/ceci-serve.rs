//! `ceci-serve` — the subgraph-query daemon.
//!
//! ```text
//! ceci-serve [options]
//!
//!   --addr HOST:PORT     bind address (default 127.0.0.1:7439; port 0 = ephemeral)
//!   --pool-workers N     data-plane pool threads (default 2)
//!   --queue-cap N        pending-request cap before BUSY (default 64)
//!   --cache-mb N         index-cache budget in MiB (default 64; 0 disables)
//!   --match-workers N    default enumeration threads per MATCH (default 1)
//!   --max-match-workers N  cap on per-request WORKERS (default 8)
//!   --build-threads N    BFS-filter threads per cache-miss index build
//!                        (default 1; any value builds a bit-identical index)
//!   --compact-threshold N  pending overlay edges that trigger CSR compaction
//!                        after a mutation batch (default 32768)
//!   --dirty-log-cap N    mutation batches of dirty endpoints kept per graph
//!                        for index repair (default 64; older caches rebuild)
//!   --no-stream-repair   disable incremental index repair (stale cache
//!                        entries always rebuild from scratch)
//!   --no-adaptive        disable cost-model-driven adaptive execution
//!                        (fixed BFS plans, no deadline-aware APPROX /
//!                        E_INFEASIBLE degradation, no kernel pinning)
//!   --preload NAME=FILE  LOAD a labeled graph before accepting connections
//!                        (repeatable)
//!   --event-loop         serve connections from the epoll event loop
//!                        (the default): one readiness thread owns every
//!                        connection; data-plane work still runs on the
//!                        bounded pool
//!   --no-event-loop      fall back to thread-per-connection serving
//!   --max-conns N        concurrent-connection cap; connections beyond it
//!                        are answered BUSY and closed (default 10000)
//!   --io-timeout-ms N    per-connection socket read/write timeout
//!                        (default 30000; 0 disables); connections idle
//!                        past it close with ERR E_TIMEOUT unless they
//!                        hold a REGISTERed continuous query
//!   --shard ADDR         coordinator mode: scatter plain MATCH requests
//!                        across this ceci-shard process (repeatable);
//!                        all shards are probed at startup and the server
//!                        refuses to start (typed E_SHARD error, exit 1)
//!                        if any stays unreachable past the retry budget
//!   --shard-timeout-ms N per-RPC socket timeout toward shards (default 5000)
//!   --shard-retries N    reconnect attempts before a shard is declared
//!                        dead and its pivots re-scatter (default 3)
//!   --chaos              enable the CHAOS fault-injection verb (testing
//!                        only; without it CHAOS answers E_CHAOS_DISABLED)
//!   --trace              record service.request stage spans (queue wait /
//!                        cache probe / build / enumerate / serialize) into
//!                        the in-process tracer; surfaced via STATS PROM
//!                        (ceci_trace_spans gauge) and EXPLAIN ANALYZE
//! ```
//!
//! The server prints one `listening on <addr>` line to stdout once live —
//! scripts wait for it — and serves until killed.

use std::process::exit;
use std::sync::Arc;

use ceci_graph::io;
use ceci_service::{start_with_state, ServeConfig, ServerState};

fn usage() -> ! {
    eprintln!(
        "usage: ceci-serve [--addr HOST:PORT] [--pool-workers N] [--queue-cap N] \
         [--cache-mb N] [--match-workers N] [--max-match-workers N] \
         [--build-threads N] [--compact-threshold N] [--dirty-log-cap N] \
         [--no-stream-repair] [--no-adaptive] [--preload NAME=FILE]... \
         [--event-loop | --no-event-loop] [--max-conns N] \
         [--io-timeout-ms N] [--shard ADDR]... [--shard-timeout-ms N] \
         [--shard-retries N] [--chaos] [--trace]"
    );
    exit(2)
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7439".to_string(),
        ..ServeConfig::default()
    };
    let mut preloads: Vec<(String, String)> = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        raw.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let num = |i: &mut usize| -> usize { value(i).parse().unwrap_or_else(|_| usage()) };
    while i < raw.len() {
        match raw[i].as_str() {
            "--addr" => config.addr = value(&mut i),
            "--pool-workers" => config.pool_workers = num(&mut i).max(1),
            "--queue-cap" => config.queue_cap = num(&mut i),
            "--cache-mb" => config.cache_budget_bytes = num(&mut i) << 20,
            "--match-workers" => config.default_match_workers = num(&mut i).max(1),
            "--max-match-workers" => config.max_match_workers = num(&mut i).max(1),
            "--build-threads" => config.build_threads = num(&mut i).max(1),
            "--compact-threshold" => config.compact_threshold = num(&mut i).max(1),
            "--dirty-log-cap" => config.dirty_log_cap = num(&mut i).max(1),
            "--no-stream-repair" => config.stream_repair = false,
            "--event-loop" => config.event_loop = true,
            "--no-event-loop" => config.event_loop = false,
            "--max-conns" => config.max_conns = num(&mut i).max(1),
            "--io-timeout-ms" => {
                config.io_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--shard" => config.shards.push(value(&mut i)),
            "--shard-timeout-ms" => {
                config.shard_io_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--shard-retries" => {
                config.shard_retries = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--no-adaptive" => config.adaptive = false,
            "--chaos" => config.chaos = true,
            "--trace" => config.trace = true,
            "--preload" => {
                let spec = value(&mut i);
                let Some((name, file)) = spec.split_once('=') else {
                    usage()
                };
                preloads.push((name.to_string(), file.to_string()));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let state = Arc::new(ServerState::new(config));
    for (name, file) in &preloads {
        match io::load_labeled(file) {
            Ok(graph) => {
                let (entry, _) = state.registry.insert(name, graph);
                eprintln!(
                    "preloaded {name} ({} vertices, {} edges, epoch {})",
                    entry.graph().num_vertices(),
                    entry.graph().num_edges(),
                    entry.epoch
                );
            }
            Err(e) => {
                eprintln!("error preloading {name} from {file}: {e}");
                exit(1);
            }
        }
    }

    // Coordinator mode: refuse to serve behind an unreachable shard. Each
    // configured address is probed with the full retry budget; a shard that
    // never answers produces a typed E_SHARD error and exit 1 — not a panic.
    if let Some(shards) = state.shards() {
        if let Err(e) = ceci_service::validate_shards(shards, &state.coord_config()) {
            eprintln!("error: {e}");
            exit(1);
        }
        eprintln!("coordinator mode: {} shard(s) reachable", shards.len());
    }

    let handle = match start_with_state(state) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    if handle.state().config().chaos {
        eprintln!("warning: CHAOS fault injection is enabled; do not expose this server");
    }
    // Serve until killed: the accept thread owns the listener; parking the
    // main thread keeps the handle (and the pool) alive.
    loop {
        std::thread::park();
    }
}
