//! `ceci-shard` — a data-fragment process for multi-process sharded serving.
//!
//! ```text
//! ceci-shard --graph FILE [options]
//!
//!   --graph FILE         the data graph this shard serves (required)
//!   --addr HOST:PORT     bind address (default 127.0.0.1:0 = ephemeral);
//!                        IPv4 binds set SO_REUSEADDR so a restarted shard
//!                        can reclaim its port through TIME_WAIT
//!   --heap               load the graph fully into memory; the default for
//!                        CECIGRF1 files is a zero-copy mmap view, so shards
//!                        can serve fragments larger than RAM
//!   --labeled            FILE is a labeled edge-list (implies --heap)
//!   --io-timeout-ms N    per-connection socket read/write timeout
//!                        (default 5000; 0 disables)
//!   --chaos              enable CHAOS EXIT / CHAOS STALL process faults
//!                        (testing only)
//! ```
//!
//! A shard speaks the same line protocol as `ceci-serve` but serves only the
//! coordinator-facing verbs: `PREPARE` (install a query plan), `EXEC`
//! (count one pivot's embeddings), plus `PING`/`STATS`/`QUIT`/`CHAOS`.
//! It prints one `listening on <addr>` line to stdout once live — scripts
//! wait for it — and serves until killed.

use std::process::exit;

use ceci_graph::io;
use ceci_graph::io::MappedCsr;
use ceci_service::{start_shard, GraphStore, ShardConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ceci-shard --graph FILE [--addr HOST:PORT] [--heap] [--labeled] \
         [--io-timeout-ms N] [--chaos]"
    );
    exit(2)
}

fn main() {
    let mut config = ShardConfig {
        addr: "127.0.0.1:0".to_string(),
        store: GraphStore::Heap(ceci_graph::Graph::new(Vec::new(), &[], false)),
        chaos: false,
        io_timeout_ms: 5_000,
    };
    let mut graph_path: Option<String> = None;
    let mut heap = false;
    let mut labeled = false;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        raw.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--graph" => graph_path = Some(value(&mut i)),
            "--addr" => config.addr = value(&mut i),
            "--heap" => heap = true,
            "--labeled" => labeled = true,
            "--io-timeout-ms" => {
                config.io_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--chaos" => config.chaos = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let Some(path) = graph_path else { usage() };

    // Three loading modes: labeled edge-list (heap), CECIGRF1 heap copy,
    // and the default CECIGRF1 mmap view (fragments larger than RAM).
    let store = if labeled {
        match io::load_labeled(&path) {
            Ok(g) => GraphStore::Heap(g),
            Err(e) => {
                eprintln!("error loading labeled graph {path}: {e}");
                exit(1);
            }
        }
    } else if heap {
        match io::load_binary(&path) {
            Ok(g) => GraphStore::Heap(g),
            Err(e) => {
                eprintln!("error loading binary graph {path}: {e}");
                exit(1);
            }
        }
    } else {
        match MappedCsr::open(&path) {
            Ok(m) => GraphStore::Mapped(m),
            Err(e) => {
                eprintln!("error mapping binary graph {path}: {e}");
                exit(1);
            }
        }
    };
    let vertices = store.num_vertices();
    config.store = store;
    let chaos = config.chaos;

    let handle = match start_shard(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            exit(1);
        }
    };
    eprintln!("shard serving {vertices} vertices from {path}");
    println!("listening on {}", handle.addr());
    if chaos {
        eprintln!("warning: CHAOS fault injection is enabled; do not expose this shard");
    }
    // Serve until killed: the accept thread owns the listener; parking the
    // main thread keeps the handle alive.
    loop {
        std::thread::park();
    }
}
