//! A bounded worker pool with admission control.
//!
//! The data plane (`MATCH`, `EXPLAIN`, `SLEEP`) is executed by a fixed set
//! of worker threads fed from a bounded FIFO queue. Submission never
//! blocks: when the queue is full the job is rejected immediately and the
//! connection answers `BUSY` — fast rejection beats unbounded queueing for
//! tail latency (the client can retry with backoff; the server never
//! accumulates an invisible backlog).
//!
//! All of it is std-only: one `Mutex<VecDeque>` + `Condvar`. The queue
//! critical sections are push/pop only — job execution happens outside the
//! lock, so the mutex is never held across user work.
//!
//! ## Panic isolation
//!
//! A panicking job must not take a worker down with it: the pool would
//! silently shrink until every data-plane request hangs. Each worker thread
//! is therefore a *supervisor*: it runs the drain loop under
//! [`std::panic::catch_unwind`], and when a job panics it counts the panic
//! (optionally notifying a hook, which the server wires to its
//! `panics_caught` metric), increments the respawn counter, and re-enters
//! the drain loop on the same thread — logically a worker respawn without
//! paying for a new OS thread. The queue mutex is only ever held around
//! push/pop (never across a job), so a job panic cannot poison it.

//! ## Shared-prefix frontier cache
//!
//! The same file also hosts the batch scheduler's [`FrontierCache`]: queued
//! MATCHes whose plans share a matching-order prefix shape
//! ([`ceci_core::PrefixSpec`]) elect one *leader* to build the shared
//! candidate frontier; the rest fork their enumeration from it. The cache is
//! single-flight (same leader/waiter discipline as the index cache), keyed
//! by `(graph epoch, mutation sub-epoch, spec signature)` with spec equality re-verified before
//! sharing, so a signature collision degrades to solo execution instead of
//! wrong counts.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ceci_core::PrefixSpec;
use ceci_graph::VertexId;

/// A unit of data-plane work. Boxed closure so the pool stays independent
/// of server internals; responses travel through the channel the closure
/// captures.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Callback invoked (from the worker thread) every time a job panic is
/// caught — the server points this at its metrics.
pub type PanicHook = Arc<dyn Fn() + Send + Sync + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled on push and on shutdown.
    available: Condvar,
    capacity: usize,
    /// Job panics caught by worker supervisors.
    panics: AtomicU64,
    /// Worker drain loops restarted after a caught panic.
    respawns: AtomicU64,
    /// Optional per-panic notification.
    on_panic: Option<PanicHook>,
}

/// Result of [`WorkerPool::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued and will run.
    Accepted,
    /// The queue was at capacity; the job was dropped (answer `BUSY`).
    Rejected,
}

/// A fixed-size thread pool over a bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads servicing a queue of at most `queue_cap`
    /// pending jobs (in addition to the jobs currently executing).
    ///
    /// Fails (instead of panicking) when the OS refuses to spawn a thread;
    /// already-spawned workers are shut down before the error returns.
    pub fn new(workers: usize, queue_cap: usize) -> io::Result<Self> {
        WorkerPool::with_panic_hook(workers, queue_cap, None)
    }

    /// [`WorkerPool::new`] with a hook fired on every caught job panic.
    pub fn with_panic_hook(
        workers: usize,
        queue_cap: usize,
        on_panic: Option<PanicHook>,
    ) -> io::Result<Self> {
        assert!(workers >= 1, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            capacity: queue_cap.max(1),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            on_panic,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("ceci-pool-{i}"))
                .spawn(move || supervisor_loop(&worker_shared));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Structured teardown of what already exists.
                    let partial = WorkerPool {
                        shared,
                        workers: handles,
                    };
                    partial.shutdown();
                    return Err(e);
                }
            }
        }
        Ok(WorkerPool {
            shared,
            workers: handles,
        })
    }

    /// Job panics caught (and survived) by the pool so far.
    pub fn panics_caught(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Worker drain loops restarted after a caught panic.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Admits `job` if the queue has room; otherwise rejects immediately.
    pub fn submit(&self, job: Job) -> Admission {
        submit_inner(&self.shared, job)
    }

    /// A cloneable submission handle sharing the queue (but not the join
    /// handles) — what connection threads hold.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Jobs currently waiting (not executing).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Stops accepting work, drains queued jobs, and joins the workers.
    pub fn shutdown(mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool lock poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Best-effort: signal shutdown so detached workers exit; join only
        // in explicit `shutdown()` (drop must not block response paths).
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shutdown = true;
        }
        self.shared.available.notify_all();
    }
}

/// Submission façade over a live pool; cheap to clone, safe to hold after
/// the pool shuts down (submissions then reject).
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<Shared>,
}

impl PoolHandle {
    /// Admits `job` if the queue has room; otherwise rejects immediately.
    pub fn submit(&self, job: Job) -> Admission {
        submit_inner(&self.shared, job)
    }
}

/// Exactly-once delivery of a data-plane job's response lines back to the
/// connection that submitted it — the pool side of the completion hand-off
/// shared by the threaded server (mpsc channel) and the event loop
/// (completion queue + eventfd wake).
///
/// The job calls [`Completion::deliver`] with the response on its normal
/// path. If the job panics first, the guard is dropped during the unwind
/// (the supervisor catches the panic above it) and the `on_panic` closure
/// fires instead — so the waiting connection always hears *something* and
/// can never hang on a worker that died mid-request.
pub struct Completion {
    deliver: Option<Box<dyn FnOnce(Vec<String>) + Send>>,
    on_panic: Option<Box<dyn FnOnce() + Send>>,
}

impl Completion {
    /// Builds a guard from the normal-path delivery and the panic fallback.
    pub fn new(
        deliver: impl FnOnce(Vec<String>) + Send + 'static,
        on_panic: impl FnOnce() + Send + 'static,
    ) -> Self {
        Completion {
            deliver: Some(Box::new(deliver)),
            on_panic: Some(Box::new(on_panic)),
        }
    }

    /// Delivers the response lines (disarms the panic fallback).
    pub fn deliver(mut self, lines: Vec<String>) {
        self.on_panic = None;
        if let Some(f) = self.deliver.take() {
            f(lines);
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if let Some(f) = self.on_panic.take() {
            f();
        }
    }
}

fn submit_inner(shared: &Shared, job: Job) -> Admission {
    let mut q = shared.queue.lock().expect("pool lock poisoned");
    if q.shutdown || q.jobs.len() >= shared.capacity {
        return Admission::Rejected;
    }
    q.jobs.push_back(job);
    drop(q);
    shared.available.notify_one();
    Admission::Accepted
}

/// Runs [`worker_loop`] until clean shutdown, restarting it after every
/// caught job panic — the per-thread supervisor described in the module
/// docs.
fn supervisor_loop(shared: &Shared) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(()) => return, // shutdown requested
            Err(_payload) => {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                shared.respawns.fetch_add(1, Ordering::Relaxed);
                if let Some(hook) = &shared.on_panic {
                    hook();
                }
                // Re-enter the drain loop: the "respawned" worker.
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("pool lock poisoned");
            }
        };
        job(); // outside the lock, panics caught by the supervisor
    }
}

/// A shared-prefix candidate frontier: the structural prefix shape it was
/// built from plus every injective assignment of that shape onto the data
/// graph. Immutable once published; shared by `Arc`.
pub struct SharedFrontier {
    /// The prefix shape the frontier satisfies. Consumers must verify their
    /// own spec `==` this one before forking from the frontier (signatures
    /// can collide; shapes cannot).
    pub spec: PrefixSpec,
    /// All structural prefix assignments, lexicographic by position.
    pub frontier: Vec<Vec<VertexId>>,
}

/// How a [`FrontierCache::get_or_build`] call was satisfied.
pub enum FrontierOutcome {
    /// This caller was elected leader and built (and published) the
    /// frontier.
    Built(Arc<SharedFrontier>),
    /// Another request already built it; this caller shares it.
    Shared(Arc<SharedFrontier>),
    /// The cached entry's spec differs from the caller's (signature
    /// collision) — the caller must enumerate solo, without the cache.
    Solo,
}

enum FrontierSlot {
    /// A leader is building; waiters sleep on the cache condvar.
    Building,
    /// Published and shareable.
    Ready(Arc<SharedFrontier>),
}

#[derive(Default)]
struct FrontierMap {
    slots: HashMap<(u64, u64, u64), FrontierSlot>,
    /// Publication order of `Ready` keys, for FIFO capacity eviction.
    order: VecDeque<(u64, u64, u64)>,
}

/// Single-flight cache of shared-prefix frontiers keyed by
/// `(graph epoch, mutation sub-epoch, PrefixSpec signature)`. Keying on the
/// sub-epoch makes a frontier built before an `ADDEDGE`/`DELEDGE` batch
/// unreachable afterwards by construction — a stale shared frontier can
/// never be served across a mutation, without any eager sweep.
///
/// Concurrency discipline mirrors the index cache: the first request for a
/// key becomes the *leader* (slot `Building`), builds outside the lock, and
/// publishes `Ready`; concurrent requests for the same key wait on the
/// condvar and share the published `Arc`. If the leader panics, a drop
/// guard removes the `Building` slot and wakes the waiters, which then
/// re-elect among themselves. Frontiers are *derived* data — eviction (FIFO
/// beyond `capacity`, or a whole epoch on graph replacement) only costs a
/// rebuild.
pub struct FrontierCache {
    map: Mutex<FrontierMap>,
    published: Condvar,
    capacity: usize,
}

/// Removes a leader's `Building` slot if it never published (panic
/// unwind), so waiters are not stranded.
struct BuildingGuard<'a> {
    cache: &'a FrontierCache,
    key: (u64, u64, u64),
    armed: bool,
}

impl Drop for BuildingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut m = self.cache.map.lock().expect("frontier lock poisoned");
            if matches!(m.slots.get(&self.key), Some(FrontierSlot::Building)) {
                m.slots.remove(&self.key);
            }
            drop(m);
            self.cache.published.notify_all();
        }
    }
}

impl FrontierCache {
    /// A cache holding at most `capacity` published frontiers.
    pub fn new(capacity: usize) -> Self {
        FrontierCache {
            map: Mutex::new(FrontierMap::default()),
            published: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Returns the frontier for `(epoch, sub_epoch, spec)`, building it via
    /// `build` (outside the cache lock) when this caller is elected leader.
    ///
    /// `Solo` means a signature collision: an entry exists for the key but
    /// its spec differs, so the caller must run unbatched rather than share
    /// a frontier built for a different shape.
    pub fn get_or_build(
        &self,
        epoch: u64,
        sub_epoch: u64,
        spec: &PrefixSpec,
        build: impl FnOnce() -> Vec<Vec<VertexId>>,
    ) -> FrontierOutcome {
        let key = (epoch, sub_epoch, spec.signature());
        let mut m = self.map.lock().expect("frontier lock poisoned");
        loop {
            match m.slots.get(&key) {
                Some(FrontierSlot::Ready(arc)) => {
                    return if arc.spec == *spec {
                        FrontierOutcome::Shared(Arc::clone(arc))
                    } else {
                        FrontierOutcome::Solo
                    };
                }
                Some(FrontierSlot::Building) => {
                    m = self.published.wait(m).expect("frontier lock poisoned");
                }
                None => break,
            }
        }
        // Elected leader: publish intent, build outside the lock.
        m.slots.insert(key, FrontierSlot::Building);
        drop(m);
        let mut guard = BuildingGuard {
            cache: self,
            key,
            armed: true,
        };
        let frontier = build(); // may panic; guard unblocks waiters
        guard.armed = false;
        let arc = Arc::new(SharedFrontier {
            spec: spec.clone(),
            frontier,
        });
        let mut m = self.map.lock().expect("frontier lock poisoned");
        while m.order.len() >= self.capacity {
            match m.order.pop_front() {
                Some(old) => {
                    m.slots.remove(&old);
                }
                None => break,
            }
        }
        m.slots.insert(key, FrontierSlot::Ready(Arc::clone(&arc)));
        m.order.push_back(key);
        drop(m);
        self.published.notify_all();
        FrontierOutcome::Built(arc)
    }

    /// Drops every *published* frontier built against `epoch` (a graph
    /// replacement invalidates them). In-flight `Building` slots are left
    /// alone — their leaders publish into the dead epoch harmlessly and the
    /// entries age out via FIFO capacity eviction.
    pub fn evict_epoch(&self, epoch: u64) {
        let mut m = self.map.lock().expect("frontier lock poisoned");
        m.order.retain(|k| k.0 != epoch);
        m.slots
            .retain(|k, slot| k.0 != epoch || matches!(slot, FrontierSlot::Building));
    }

    /// Number of published (Ready) frontiers currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("frontier lock poisoned").order.len()
    }

    /// Whether no frontier is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            let admitted = pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
            assert_eq!(admitted, Admission::Accepted);
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        pool.shutdown();
    }

    #[test]
    fn rejects_when_queue_full() {
        let pool = WorkerPool::new(1, 1).unwrap();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        assert_eq!(
            pool.submit(Box::new(move || {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            })),
            Admission::Accepted
        );
        entered_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // ...fill the queue...
        assert_eq!(pool.submit(Box::new(|| {})), Admission::Accepted);
        // ...and the next submission bounces without blocking.
        assert_eq!(pool.submit(Box::new(|| {})), Admission::Rejected);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 16).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let hook_fires = Arc::new(AtomicUsize::new(0));
        let hook_counter = Arc::clone(&hook_fires);
        let pool = WorkerPool::with_panic_hook(
            1,
            16,
            Some(Arc::new(move || {
                hook_counter.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
        let (tx, rx) = mpsc::channel::<&'static str>();
        // One panicking job, then a normal one on the same (sole) worker.
        let t1 = tx.clone();
        pool.submit(Box::new(move || {
            // The sender dropping on unwind is the observable signal.
            let _keep = t1;
            panic!("injected job panic");
        }));
        pool.submit(Box::new(move || {
            tx.send("survived").unwrap();
        }));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "survived");
        assert_eq!(pool.panics_caught(), 1);
        assert_eq!(pool.respawns(), 1);
        assert_eq!(hook_fires.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn respawned_worker_keeps_draining_many_panics() {
        let pool = WorkerPool::new(2, 64).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                if i % 3 == 0 {
                    panic!("chaos {i}");
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown(); // drains everything despite 7 interleaved panics
        assert_eq!(done.load(Ordering::SeqCst), 13, "non-panicking jobs ran");
    }

    use ceci_graph::{lid, vid, Graph, LabelSet};
    use ceci_query::{QueryGraph, QueryPlan};

    /// A path query over a small labeled graph — enough structure for
    /// `PrefixSpec::from_plan` to produce distinct specs at depths 1 and 2.
    fn specs() -> (PrefixSpec, PrefixSpec) {
        let labels: Vec<LabelSet> = [0u32, 1, 0, 1, 0]
            .iter()
            .map(|&l| LabelSet::single(lid(l)))
            .collect();
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)].map(|(a, b)| (vid(a), vid(b)));
        let graph = Graph::new(labels, &edges, false);
        let qlabels: Vec<LabelSet> = [0u32, 1, 0]
            .iter()
            .map(|&l| LabelSet::single(lid(l)))
            .collect();
        let qedges = [(0u32, 1u32), (1, 2)].map(|(a, b)| (vid(a), vid(b)));
        let pattern = Graph::new(qlabels, &qedges, false);
        let query = QueryGraph::from_graph(&pattern).unwrap();
        let plan = QueryPlan::new(query, &graph);
        (
            PrefixSpec::from_plan(&plan, 1).unwrap(),
            PrefixSpec::from_plan(&plan, 2).unwrap(),
        )
    }

    #[test]
    fn frontier_cache_single_flights_concurrent_builders() {
        let cache = Arc::new(FrontierCache::new(8));
        let (spec, _) = specs();
        let builds = Arc::new(AtomicUsize::new(0));
        let built = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let cache = Arc::clone(&cache);
            let spec = spec.clone();
            let builds = Arc::clone(&builds);
            let built = Arc::clone(&built);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let outcome = cache.get_or_build(1, 0, &spec, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the single-flight window so followers pile up.
                    std::thread::sleep(Duration::from_millis(50));
                    vec![vec![vid(0)], vec![vid(2)], vec![vid(4)]]
                });
                match outcome {
                    FrontierOutcome::Built(f) => {
                        assert_eq!(f.frontier.len(), 3);
                        built.fetch_add(1, Ordering::SeqCst);
                    }
                    FrontierOutcome::Shared(f) => {
                        assert_eq!(f.frontier.len(), 3);
                        shared.fetch_add(1, Ordering::SeqCst);
                    }
                    FrontierOutcome::Solo => panic!("no collision expected"),
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build ran");
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(shared.load(Ordering::SeqCst), 5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn frontier_cache_leader_panic_unblocks_waiters() {
        let cache = Arc::new(FrontierCache::new(8));
        let (spec, _) = specs();
        // Leader panics mid-build...
        let c = Arc::clone(&cache);
        let s = spec.clone();
        let leader = std::thread::spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                c.get_or_build(1, 0, &s, || panic!("injected frontier-build panic"))
            }));
        });
        leader.join().unwrap();
        // ...and the slot is gone, so the next caller is elected leader and
        // succeeds rather than waiting forever.
        match cache.get_or_build(1, 0, &spec, || vec![vec![vid(0)]]) {
            FrontierOutcome::Built(f) => assert_eq!(f.frontier.len(), 1),
            _ => panic!("expected fresh leadership after leader panic"),
        }
    }

    #[test]
    fn frontier_cache_evicts_by_epoch_and_capacity() {
        let cache = FrontierCache::new(2);
        let (spec1, spec2) = specs();
        assert!(cache.is_empty());
        cache.get_or_build(1, 0, &spec1, || vec![vec![vid(0)]]);
        cache.get_or_build(1, 0, &spec2, || vec![vec![vid(0), vid(1)]]);
        assert_eq!(cache.len(), 2);
        // Third distinct key FIFO-evicts the oldest.
        cache.get_or_build(2, 0, &spec1, || vec![vec![vid(2)]]);
        assert_eq!(cache.len(), 2);
        // The epoch-1 survivors go on graph replacement; epoch 2 stays.
        cache.evict_epoch(1);
        assert_eq!(cache.len(), 1);
        match cache.get_or_build(2, 0, &spec1, || unreachable!("still cached")) {
            FrontierOutcome::Shared(f) => assert_eq!(f.frontier, vec![vec![vid(2)]]),
            _ => panic!("epoch-2 entry should have survived"),
        }
    }

    #[test]
    fn frontier_cache_never_serves_across_a_mutation() {
        // Regression: a frontier shared at sub-epoch 0 must be unreachable
        // after a mutation bumps the graph to sub-epoch 1 — the key
        // includes the sub-epoch, so staleness is structural.
        let cache = FrontierCache::new(8);
        let (spec, _) = specs();
        match cache.get_or_build(1, 0, &spec, || vec![vec![vid(0)]]) {
            FrontierOutcome::Built(f) => assert_eq!(f.frontier, vec![vec![vid(0)]]),
            _ => panic!("first build"),
        }
        // Same epoch, same spec, new sub-epoch: rebuild, never share.
        match cache.get_or_build(1, 1, &spec, || vec![vec![vid(0)], vec![vid(2)]]) {
            FrontierOutcome::Built(f) => assert_eq!(f.frontier.len(), 2),
            FrontierOutcome::Shared(_) => panic!("stale frontier served across mutation"),
            FrontierOutcome::Solo => panic!("no collision expected"),
        }
        // The old sub-epoch's entry still answers probes pinned to it.
        match cache.get_or_build(1, 0, &spec, || unreachable!("still cached")) {
            FrontierOutcome::Shared(f) => assert_eq!(f.frontier, vec![vec![vid(0)]]),
            _ => panic!("pinned sub-epoch entry should persist until aged out"),
        }
        // Graph replacement still sweeps every sub-epoch of the epoch.
        cache.evict_epoch(1);
        assert!(cache.is_empty());
    }
}
