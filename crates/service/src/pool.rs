//! A bounded worker pool with admission control.
//!
//! The data plane (`MATCH`, `EXPLAIN`, `SLEEP`) is executed by a fixed set
//! of worker threads fed from a bounded FIFO queue. Submission never
//! blocks: when the queue is full the job is rejected immediately and the
//! connection answers `BUSY` — fast rejection beats unbounded queueing for
//! tail latency (the client can retry with backoff; the server never
//! accumulates an invisible backlog).
//!
//! All of it is std-only: one `Mutex<VecDeque>` + `Condvar`. The queue
//! critical sections are push/pop only — job execution happens outside the
//! lock, so the mutex is never held across user work.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of data-plane work. Boxed closure so the pool stays independent
/// of server internals; responses travel through the channel the closure
/// captures.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled on push and on shutdown.
    available: Condvar,
    capacity: usize,
}

/// Result of [`WorkerPool::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The job was queued and will run.
    Accepted,
    /// The queue was at capacity; the job was dropped (answer `BUSY`).
    Rejected,
}

/// A fixed-size thread pool over a bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads servicing a queue of at most `queue_cap`
    /// pending jobs (in addition to the jobs currently executing).
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            capacity: queue_cap.max(1),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ceci-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Admits `job` if the queue has room; otherwise rejects immediately.
    pub fn submit(&self, job: Job) -> Admission {
        submit_inner(&self.shared, job)
    }

    /// A cloneable submission handle sharing the queue (but not the join
    /// handles) — what connection threads hold.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Jobs currently waiting (not executing).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool lock poisoned")
            .jobs
            .len()
    }

    /// Stops accepting work, drains queued jobs, and joins the workers.
    pub fn shutdown(mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool lock poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Best-effort: signal shutdown so detached workers exit; join only
        // in explicit `shutdown()` (drop must not block response paths).
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shutdown = true;
        }
        self.shared.available.notify_all();
    }
}

/// Submission façade over a live pool; cheap to clone, safe to hold after
/// the pool shuts down (submissions then reject).
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<Shared>,
}

impl PoolHandle {
    /// Admits `job` if the queue has room; otherwise rejects immediately.
    pub fn submit(&self, job: Job) -> Admission {
        submit_inner(&self.shared, job)
    }
}

fn submit_inner(shared: &Shared, job: Job) -> Admission {
    let mut q = shared.queue.lock().expect("pool lock poisoned");
    if q.shutdown || q.jobs.len() >= shared.capacity {
        return Admission::Rejected;
    }
    q.jobs.push_back(job);
    drop(q);
    shared.available.notify_one();
    Admission::Accepted
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).expect("pool lock poisoned");
            }
        };
        job(); // outside the lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            let admitted = pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
            assert_eq!(admitted, Admission::Accepted);
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        pool.shutdown();
    }

    #[test]
    fn rejects_when_queue_full() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        assert_eq!(
            pool.submit(Box::new(move || {
                entered_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            })),
            Admission::Accepted
        );
        entered_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // ...fill the queue...
        assert_eq!(pool.submit(Box::new(|| {})), Admission::Accepted);
        // ...and the next submission bounces without blocking.
        assert_eq!(pool.submit(Box::new(|| {})), Admission::Rejected);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
