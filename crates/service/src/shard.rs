//! The `ceci-shard` server: one process owning a graph fragment source,
//! answering the shard plane of the line protocol (`PREPARE` / `EXEC`).
//!
//! ## Execution model
//!
//! A shard holds a *graph source* — either a heap [`Graph`] or a
//! memory-mapped CSR ([`MappedCsr`], for fragments larger than RAM) — and
//! serves each `EXEC <name> <pivot> <epoch>` self-contained: extract the
//! radius-ball fragment around that single pivot (the §8 physical
//! decomposition, one pivot at a time), rebuild the coordinator's plan
//! inside the fragment via [`QueryPlan::from_parts`], build a single-pivot
//! CECI, and enumerate. The per-pivot count is a pure function of
//! `(graph, plan, pivot)`, which is what makes the coordinator's
//! first-commit-wins result board bit-identical to a single-process run
//! under any kill/restart schedule.
//!
//! ## Fault surface
//!
//! * `CHAOS EXIT [after-ms]` exits the process with status 42 — the
//!   deterministic stand-in for `kill -9` mid-enumeration.
//! * `CHAOS STALL <ms>` arms a persistent stall ahead of every subsequent
//!   `PREPARE`/`EXEC` (0 disarms). `PING` is unaffected, so a stalled
//!   shard stays heartbeat-alive while tripping the coordinator's RPC
//!   timeout — the slow-shard re-scatter lever.
//! * Listener sockets are created with `SO_REUSEADDR` ([`bind_reuse`]) so
//!   a killed shard can rebind its port immediately on restart even while
//!   old connections sit in TIME_WAIT.
//! * Connection sockets carry read/write timeouts; a stalled or half-open
//!   peer gets `ERR E_TIMEOUT` and its connection closed instead of
//!   pinning a thread forever.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ceci_core::metrics::Counters;
use ceci_core::sink::CountSink;
use ceci_core::{BuildOptions, Ceci, EnumOptions, Enumerator};
use ceci_distributed::Fragment;
use ceci_graph::io::MappedCsr;
use ceci_graph::{vid, Graph, LabelSet, VertexId};
use ceci_query::{OrderConstraint, QueryGraph, QueryPlan};

use crate::protocol::{parse_request, ChaosCommand, ErrorCode, Request};

/// Read access to a data graph, abstracted over storage so the per-pivot
/// fragment extraction runs identically on a heap CSR and an mmap'd one.
pub trait AdjacencySource {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Whether the source was declared directed at load time.
    fn directed(&self) -> bool;
    /// Calls `f` for every neighbor of `v` in CSR order.
    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32));
    /// The vertex's label set (owned; the mmap view materializes it).
    fn label_set(&self, v: u32) -> LabelSet;
}

impl AdjacencySource for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    fn directed(&self) -> bool {
        self.is_directed_input()
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for &nb in self.neighbors(vid(v)) {
            f(nb.0);
        }
    }

    fn label_set(&self, v: u32) -> LabelSet {
        self.labels(vid(v)).clone()
    }
}

impl AdjacencySource for MappedCsr {
    fn num_vertices(&self) -> usize {
        MappedCsr::num_vertices(self)
    }

    fn directed(&self) -> bool {
        self.is_directed_input()
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for &nb in self.neighbors(v) {
            f(nb);
        }
    }

    fn label_set(&self, v: u32) -> LabelSet {
        MappedCsr::label_set(self, v)
    }
}

/// Extracts the radius-`radius` fragment around `pivots` from any
/// [`AdjacencySource`] — the storage-generic twin of
/// [`ceci_distributed::extract_fragment`], bit-identical to it on the same
/// graph (same BFS, same ascending-global-id dense relabeling; the relabel
/// order is load-bearing because symmetry breaking compares data-vertex
/// ids across fragments).
pub fn extract_fragment_from<A: AdjacencySource + ?Sized>(
    src: &A,
    pivots: &[VertexId],
    radius: usize,
) -> Fragment {
    let mut dist: HashMap<VertexId, usize> = HashMap::new();
    let mut order: Vec<VertexId> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &p in pivots {
        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p) {
            e.insert(0);
            order.push(p);
            queue.push_back(p);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        src.for_each_neighbor(v.0, &mut |nb| {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(vid(nb)) {
                e.insert(d + 1);
                order.push(vid(nb));
                queue.push_back(vid(nb));
            }
        });
    }
    order.sort_unstable();
    let local_of: HashMap<VertexId, VertexId> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, VertexId::from_index(i)))
        .collect();
    let mut edges = Vec::new();
    for &v in &order {
        src.for_each_neighbor(v.0, &mut |nb| {
            if v < vid(nb) {
                if let Some(&lnb) = local_of.get(&vid(nb)) {
                    edges.push((local_of[&v], lnb));
                }
            }
        });
    }
    let labels = order.iter().map(|&v| src.label_set(v.0)).collect();
    let graph = Graph::new(labels, &edges, src.directed());
    let local_pivots = pivots.iter().map(|p| local_of[p]).collect();
    Fragment {
        graph,
        local_pivots,
        global_of: order,
        radius,
    }
}

/// The coordinator's plan decisions, pinned on the shard by `PREPARE` so
/// every `EXEC` rebuilds the *same* plan inside its fragment. Everything
/// here is a query-side property (root, order, symmetry) — candidates are
/// recomputed per fragment by [`QueryPlan::from_parts`].
#[derive(Clone, Debug)]
pub struct PlanSpec {
    /// The query pattern.
    pub query: QueryGraph,
    /// Root pinned by the coordinator's full-graph plan.
    pub root: VertexId,
    /// Full matching order, root first.
    pub order: Vec<VertexId>,
    /// Symmetry-breaking constraints.
    pub sym: Vec<OrderConstraint>,
    /// Whether `sym` breaks all automorphisms.
    pub sym_complete: bool,
    /// Fragment extraction radius (max query-tree depth).
    pub radius: usize,
}

/// Counts the embedding cluster of one global pivot: extract its radius
/// ball, rebuild the plan locally, build a single-pivot CECI, enumerate.
/// Returns 0 when the pivot fails the fragment-local initial filters (then
/// it also failed the global ones — filtering is neighborhood-local).
pub fn exec_pivot<A: AdjacencySource + ?Sized>(src: &A, spec: &PlanSpec, pivot: VertexId) -> u64 {
    let fragment = extract_fragment_from(src, &[pivot], spec.radius);
    let local_plan = QueryPlan::from_parts(
        spec.query.clone(),
        spec.root,
        spec.order.clone(),
        &fragment.graph,
        spec.sym.clone(),
        spec.sym_complete,
    );
    let local_pivot = fragment.local_pivots[0];
    let initial = local_plan.initial_candidates(local_plan.root());
    if initial.binary_search(&local_pivot).is_err() {
        return 0;
    }
    let ceci = Ceci::build_for_pivots(
        &fragment.graph,
        &local_plan,
        BuildOptions::default(),
        vec![local_pivot],
    );
    let mut enumerator =
        Enumerator::new(&fragment.graph, &local_plan, &ceci, EnumOptions::default());
    let mut counters = Counters::default();
    let mut sink = CountSink::unbounded();
    for &(p, _) in ceci.pivots() {
        enumerator.enumerate_cluster(p, &mut sink, &mut counters);
    }
    sink.count()
}

/// The shard's graph: heap CSR or mmap'd CSR view.
pub enum GraphStore {
    /// Fully-loaded in-memory graph.
    Heap(Graph),
    /// Zero-copy view over an on-disk `CECIGRF1` file — serves fragments
    /// larger than RAM (the page cache keeps the hot balls resident).
    Mapped(MappedCsr),
}

impl GraphStore {
    /// Vertex count (for startup logging and pivot validation).
    pub fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Heap(g) => g.num_vertices(),
            GraphStore::Mapped(m) => m.num_vertices(),
        }
    }

    fn exec(&self, spec: &PlanSpec, pivot: VertexId) -> u64 {
        match self {
            GraphStore::Heap(g) => exec_pivot(g, spec, pivot),
            GraphStore::Mapped(m) => exec_pivot(m, spec, pivot),
        }
    }
}

/// Shard server configuration.
pub struct ShardConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port). IPv4 addresses
    /// bind through [`bind_reuse`]; others fall back to a plain bind.
    pub addr: String,
    /// The graph this shard serves.
    pub store: GraphStore,
    /// Enable `CHAOS` process faults.
    pub chaos: bool,
    /// Per-connection socket read/write timeout in ms (0 = none).
    pub io_timeout_ms: u64,
}

/// Shared shard state.
pub struct ShardState {
    store: GraphStore,
    plans: Mutex<HashMap<String, Arc<PlanSpec>>>,
    chaos: bool,
    io_timeout_ms: u64,
    /// `CHAOS STALL` milliseconds applied before each `PREPARE`/`EXEC`.
    stall_ms: AtomicU64,
    /// `EXEC`s answered.
    execs: AtomicU64,
    /// `PREPARE`s accepted.
    prepares: AtomicU64,
    /// Connections closed on socket timeout.
    timeouts: AtomicU64,
    stopping: AtomicBool,
}

/// A running shard server; call [`ShardHandle::shutdown`] to stop it.
pub struct ShardHandle {
    addr: SocketAddr,
    state: Arc<ShardState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(mut self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Binds a TCP listener with `SO_REUSEADDR` so a restarted process can
/// reclaim the same port while the killed predecessor's connections are
/// still in TIME_WAIT. IPv4 only (shards are loopback/LAN processes);
/// non-IPv4 addresses fall back to a plain [`TcpListener::bind`].
pub fn bind_reuse(addr: &str) -> std::io::Result<TcpListener> {
    let parsed: Result<SocketAddrV4, _> = addr.parse();
    let Ok(v4) = parsed else {
        return TcpListener::bind(addr);
    };
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_STREAM | libc::SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let fail = |fd: i32| -> std::io::Error {
            let e = std::io::Error::last_os_error();
            libc::close(fd);
            e
        };
        let one: libc::c_int = 1;
        if libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_REUSEADDR,
            (&one as *const libc::c_int).cast(),
            std::mem::size_of::<libc::c_int>() as libc::socklen_t,
        ) != 0
        {
            return Err(fail(fd));
        }
        let sin = libc::sockaddr_in {
            sin_family: libc::AF_INET as libc::sa_family_t,
            sin_port: v4.port().to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from(*v4.ip()).to_be(),
            },
            sin_zero: [0; 8],
        };
        if libc::bind(
            fd,
            (&sin as *const libc::sockaddr_in).cast(),
            std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        ) != 0
        {
            return Err(fail(fd));
        }
        if libc::listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        use std::os::unix::io::FromRawFd;
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Binds and starts serving the shard plane; returns once the listener is
/// live.
pub fn start_shard(config: ShardConfig) -> std::io::Result<ShardHandle> {
    let listener = bind_reuse(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ShardState {
        store: config.store,
        plans: Mutex::new(HashMap::new()),
        chaos: config.chaos,
        io_timeout_ms: config.io_timeout_ms,
        stall_ms: AtomicU64::new(0),
        execs: AtomicU64::new(0),
        prepares: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
    });
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("shard-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = Arc::clone(&accept_state);
                let _ = std::thread::Builder::new()
                    .name("shard-conn".to_string())
                    .spawn(move || {
                        let _ = serve_shard_connection(stream, &state);
                    });
            }
        })?;
    Ok(ShardHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
    })
}

fn timeout_kind(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

fn serve_shard_connection(stream: TcpStream, state: &Arc<ShardState>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    if state.io_timeout_ms > 0 {
        let t = Some(Duration::from_millis(state.io_timeout_ms));
        stream.set_read_timeout(t)?;
        stream.set_write_timeout(t)?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if timeout_kind(&e) => {
                // A shard connection is request/response only — an idle
                // socket past the timeout is a stalled or half-open peer.
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_lines(
                    &mut writer,
                    &[ErrorCode::Timeout.line(format!(
                        "no request within {}ms; closing connection",
                        state.io_timeout_ms
                    ))],
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let line = buf.trim_end_matches(['\r', '\n']);
        let request = match parse_request(line) {
            Ok(None) => continue,
            Ok(Some(r)) => r,
            Err(e) => {
                write_lines(&mut writer, &[ErrorCode::Parse.line(e)])?;
                continue;
            }
        };
        let quit = matches!(request, Request::Quit);
        let lines = dispatch_shard(request, state);
        write_lines(&mut writer, &lines)?;
        if quit {
            return Ok(());
        }
    }
}

fn write_lines(writer: &mut BufWriter<TcpStream>, lines: &[String]) -> std::io::Result<()> {
    for l in lines {
        writer.write_all(l.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

fn dispatch_shard(request: Request, state: &Arc<ShardState>) -> Vec<String> {
    match request {
        Request::Ping => vec!["OK PONG".to_string()],
        Request::Quit => vec!["OK BYE".to_string()],
        Request::Stats { .. } => {
            let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
            vec![
                format!("STAT shard_execs {}", g(&state.execs)),
                format!("STAT shard_prepares {}", g(&state.prepares)),
                format!("STAT shard_stall_ms {}", g(&state.stall_ms)),
                format!("STAT shard_timeouts {}", g(&state.timeouts)),
                format!("STAT shard_vertices {}", state.store.num_vertices()),
                "OK STATS".to_string(),
            ]
        }
        Request::Chaos { command } => exec_shard_chaos(command, state),
        Request::Prepare {
            name,
            query_path,
            root,
            order,
            radius,
            sym,
            sym_complete,
        } => {
            apply_stall(state);
            exec_prepare(
                state,
                &name,
                &query_path,
                root,
                &order,
                radius,
                &sym,
                sym_complete,
            )
        }
        Request::Exec { name, pivot, epoch } => {
            apply_stall(state);
            exec_exec(state, &name, pivot, epoch)
        }
        // The query-daemon data plane has no meaning on a shard.
        _ => vec![ErrorCode::Shard
            .line("this is a ceci-shard; only PREPARE/EXEC/PING/STATS/QUIT/CHAOS are served")],
    }
}

fn apply_stall(state: &ShardState) {
    let ms = state.stall_ms.load(Ordering::SeqCst);
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

fn exec_shard_chaos(command: ChaosCommand, state: &Arc<ShardState>) -> Vec<String> {
    if !state.chaos {
        return vec![
            ErrorCode::ChaosDisabled.line("start the shard with --chaos to enable fault injection")
        ];
    }
    match command {
        ChaosCommand::Exit { after_ms } => {
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(after_ms));
                std::process::exit(42);
            });
            vec![format!("OK CHAOS armed=EXIT after_ms={after_ms}")]
        }
        ChaosCommand::Stall { ms } => {
            state.stall_ms.store(ms, Ordering::SeqCst);
            vec![format!("OK CHAOS armed=STALL ms={ms}")]
        }
        _ => {
            vec![ErrorCode::Shard.line("only CHAOS EXIT and CHAOS STALL are supported on a shard")]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_prepare(
    state: &ShardState,
    name: &str,
    query_path: &str,
    root: u32,
    order: &[u32],
    radius: usize,
    sym: &[(u32, u32)],
    sym_complete: bool,
) -> Vec<String> {
    let pattern = match ceci_graph::io::load_labeled(query_path) {
        Ok(p) => p,
        Err(e) => return vec![ErrorCode::Query.line(format!("query load failed: {e}"))],
    };
    let query = match QueryGraph::from_graph(&pattern) {
        Ok(q) => q,
        Err(e) => return vec![ErrorCode::Query.line(format!("invalid query: {e}"))],
    };
    let n = query.num_vertices() as u32;
    if root >= n || order.iter().any(|&u| u >= n) || sym.iter().any(|&(a, b)| a >= n || b >= n) {
        return vec![ErrorCode::Shard.line("PREPARE references query vertices out of range")];
    }
    if order.len() != n as usize || order.first() != Some(&root) {
        return vec![
            ErrorCode::Shard.line("PREPARE order must cover every query vertex, root first")
        ];
    }
    let spec = PlanSpec {
        query,
        root: vid(root),
        order: order.iter().map(|&u| vid(u)).collect(),
        sym: sym
            .iter()
            .map(|&(a, b)| OrderConstraint {
                smaller: vid(a),
                larger: vid(b),
            })
            .collect(),
        sym_complete,
        radius,
    };
    // Re-PREPARE under the same name is idempotent by design: coordinator
    // drivers re-send it after every (re)connect.
    state
        .plans
        .lock()
        .expect("plans lock poisoned")
        .insert(name.to_string(), Arc::new(spec));
    state.prepares.fetch_add(1, Ordering::Relaxed);
    vec![format!("OK PREPARED name={name} radius={radius}")]
}

fn exec_exec(state: &ShardState, name: &str, pivot: u32, epoch: u32) -> Vec<String> {
    let spec = state
        .plans
        .lock()
        .expect("plans lock poisoned")
        .get(name)
        .cloned();
    let Some(spec) = spec else {
        return vec![ErrorCode::Shard.line(format!(
            "unknown PREPARE handle {name:?}; (re)send PREPARE on this connection's plan"
        ))];
    };
    if (pivot as usize) >= state.store.num_vertices() {
        return vec![ErrorCode::Shard.line(format!("pivot {pivot} out of range"))];
    }
    let count = state.store.exec(&spec, vid(pivot));
    state.execs.fetch_add(1, Ordering::Relaxed);
    vec![format!("OK EXEC pivot={pivot} epoch={epoch} count={count}")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::count_embeddings;
    use ceci_graph::generators::{attach_pendants, kronecker_default};
    use ceci_graph::io::save_binary;
    use ceci_query::PaperQuery;

    fn data() -> Graph {
        let core = kronecker_default(7, 5, 23);
        attach_pendants(&core, 60, 24)
    }

    #[test]
    fn generic_extraction_matches_reference() {
        let g = data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        let radius = plan
            .tree()
            .bfs_order()
            .iter()
            .map(|&u| plan.tree().depth(u))
            .max()
            .unwrap_or(0) as usize;
        for p in [0u32, 3, 17, 40] {
            let want = ceci_distributed::extract_fragment(&g, &[vid(p)], radius);
            let got = extract_fragment_from(&g, &[vid(p)], radius);
            assert_eq!(got.graph.num_vertices(), want.graph.num_vertices());
            assert_eq!(got.graph.num_edges(), want.graph.num_edges());
            assert_eq!(got.global_of, want.global_of);
            assert_eq!(got.local_pivots, want.local_pivots);
        }
    }

    #[test]
    fn per_pivot_sum_equals_full_count() {
        let g = data();
        for q in [PaperQuery::Qg1, PaperQuery::Qg3] {
            let plan = QueryPlan::new(q.build(), &g);
            let ceci = Ceci::build(&g, &plan);
            let want = count_embeddings(&g, &plan, &ceci);
            let radius = plan
                .tree()
                .bfs_order()
                .iter()
                .map(|&u| plan.tree().depth(u))
                .max()
                .unwrap_or(0) as usize;
            let spec = PlanSpec {
                query: plan.query().clone(),
                root: plan.root(),
                order: plan.matching_order().to_vec(),
                sym: plan.symmetry_constraints().to_vec(),
                sym_complete: plan.symmetry_complete(),
                radius,
            };
            let total: u64 = plan
                .initial_candidates(plan.root())
                .iter()
                .map(|&p| exec_pivot(&g, &spec, p))
                .sum();
            assert_eq!(total, want, "{}", q.name());
        }
    }

    #[test]
    fn mmap_store_counts_match_heap_store() {
        let g = data();
        let dir = std::env::temp_dir().join("ceci_shard_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ceci");
        save_binary(&g, &path).unwrap();
        let mapped = MappedCsr::open(&path).unwrap();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        let radius = plan
            .tree()
            .bfs_order()
            .iter()
            .map(|&u| plan.tree().depth(u))
            .max()
            .unwrap_or(0) as usize;
        let spec = PlanSpec {
            query: plan.query().clone(),
            root: plan.root(),
            order: plan.matching_order().to_vec(),
            sym: plan.symmetry_constraints().to_vec(),
            sym_complete: plan.symmetry_complete(),
            radius,
        };
        for &p in plan.initial_candidates(plan.root()).iter().take(12) {
            assert_eq!(exec_pivot(&g, &spec, p), exec_pivot(&mapped, &spec, p));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bind_reuse_accepts_connections_and_allows_rebind() {
        let listener = bind_reuse("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || listener.accept().map(|_| ()));
        TcpStream::connect(addr).unwrap();
        t.join().unwrap().unwrap();
        // The port had an accepted (now closed) connection; SO_REUSEADDR
        // lets a fresh listener take the same port immediately.
        let again = bind_reuse(&addr.to_string()).unwrap();
        assert_eq!(again.local_addr().unwrap().port(), addr.port());
    }
}
