//! `ceci-service`: a concurrent subgraph-query service over TCP.
//!
//! The serving layer wraps the CECI matching engine (build-once index,
//! enumerate-many) in the machinery a long-running query server needs:
//!
//! * a **graph registry** of named, immutable CSR graphs with
//!   replace-on-`LOAD` epochs ([`registry`]),
//! * an **index cache** memoizing frozen CECI structures by
//!   `(graph epoch, canonical query hash)` under an LRU byte budget
//!   ([`cache`]) — repeated query templates skip the BFS filter / reverse
//!   refinement entirely,
//! * a **bounded worker pool** with admission control: a full queue answers
//!   `BUSY` instead of building invisible backlog ([`pool`]),
//! * an **event-driven server core** (on by default; `--no-event-loop`
//!   falls back to thread-per-connection): one epoll readiness loop owns
//!   every connection as a buffered state machine with a bounded write
//!   queue, scaling to 10k+ mostly-idle connections — backpressure
//!   degrades to `BUSY` (admission, connection cap) and slow-reader
//!   disconnects before memory does ([`server`]),
//! * **per-request deadlines** threaded into enumeration as cooperative
//!   cancellation (`ceci_core::CancelToken`), returning partial counts with
//!   `status=DEADLINE_EXCEEDED` ([`server`]),
//! * a **multi-query optimization layer**: a label-pair admission filter
//!   answering provably-zero MATCHes before any build, single-flight
//!   deduplication of concurrent identical builds ([`cache`]),
//!   shared-prefix batched execution over a frontier cache ([`pool`]), and
//!   leaf-level redundant-extension pruning — all per-request bypassable
//!   with `MATCH ... RAW` for differential verification,
//! * a **streaming-mutation layer**: `ADDEDGE`/`DELEDGE`/`BATCH` verbs
//!   mutate a loaded graph through a delta overlay over the frozen CSR
//!   (compacted at a configurable threshold), cached indexes are
//!   **repaired** from per-batch dirty endpoints instead of rebuilt
//!   ([`registry`], `ceci_stream`), and `REGISTER`ed **continuous
//!   queries** emit per-batch embedding-count deltas (`EVENT DELTA`)
//!   to their connection ([`server`]),
//! * an **adaptive execution layer** (on by default, `--no-adaptive` to
//!   disable): cache-miss builds score a plan portfolio under the
//!   random-walk cost model and pick the cheapest order, the winning
//!   estimate sizes the parallel strategy and worker count, observed
//!   depth profiles pin per-depth intersection kernels on repeat queries
//!   ([`cache::PlanFeedback`]), and `MATCH ... DEADLINE` degrades to an
//!   estimator answer (`mode=APPROX`) or `ERR E_INFEASIBLE` when the
//!   exact run cannot finish in time (`EXACT` opts out; `ESTIMATE`
//!   answers the cardinality question directly),
//! * a line-oriented **text protocol** ([`protocol`]) and lock-free
//!   **metrics** surfaced via `STATS` ([`metrics`]),
//! * a blocking **client** doubling as a closed-loop load generator
//!   ([`client`]).
//!
//! Everything is std-only: no async runtime, no external crates. Two bins
//! ship with the crate: `ceci-serve` (the daemon) and `ceci-client` (one
//! -shot commands, interactive piping, and `--bench-local` load baseline).

pub mod cache;
pub mod client;
pub mod coord;
mod event_loop;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shard;

pub use cache::{
    CachedIndex, Flight, FlightGuard, FlightProbe, FlightWait, IndexCache, PlanFeedback, Probe,
};
pub use client::{run_load, Client, LoadConfig, LoadReport, Response, RetryOutcome, RetryPolicy};
pub use coord::{
    scatter_match, spawn_heartbeat, validate_shards, CoordConfig, CoordError, HeartbeatHandle,
    ResultBoard, ScatterReport, ShardLiveness, ShardSet, ShardStatus,
};
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use pool::{Admission, FrontierCache, FrontierOutcome, PoolHandle, SharedFrontier, WorkerPool};
pub use protocol::{parse_request, ChaosCommand, ErrorCode, MatchStatus, ParseError, Request};
pub use registry::{BatchOutcome, ContinuousRegistry, DirtyRecord, GraphEntry, GraphRegistry};
pub use server::{start, start_with_state, ServeConfig, ServerHandle, ServerState, ShutdownReport};
pub use shard::{bind_reuse, start_shard, GraphStore, PlanSpec, ShardConfig, ShardHandle};
