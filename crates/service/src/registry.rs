//! The graph registry: named, immutable, reference-counted data graphs.
//!
//! `LOAD` replaces a name atomically — in-flight `MATCH` requests keep their
//! `Arc<Graph>` and finish against the old snapshot while new requests see
//! the replacement. Every load stamps the entry with a globally unique,
//! monotonically increasing *epoch*; the index cache keys on it, so stale
//! indexes built against a replaced graph can never be served (and are
//! swept eagerly on replacement).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ceci_graph::Graph;

/// Global epoch source: unique across all registries in the process, which
/// keeps cache keys unambiguous even under registry replacement in tests.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One loaded graph plus its identity metadata.
#[derive(Debug)]
pub struct GraphEntry {
    /// The immutable data graph (shared with in-flight requests).
    pub graph: Arc<Graph>,
    /// Unique load stamp; bumped on every (re)load of the name.
    pub epoch: u64,
}

/// A concurrent name → graph map with replace-on-load semantics.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Arc<GraphEntry>>>,
}

impl GraphRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) `name`, returning the new entry and, when a
    /// graph was replaced, the epoch of the entry that was displaced (so the
    /// caller can evict its cached indexes).
    pub fn insert(&self, name: &str, graph: Graph) -> (Arc<GraphEntry>, Option<u64>) {
        let entry = Arc::new(GraphEntry {
            graph: Arc::new(graph),
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        });
        let old = self
            .graphs
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::clone(&entry));
        (entry, old.map(|e| e.epoch))
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("registry lock poisoned").len()
    }

    /// True when no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::{GraphBuilder, LabelId};

    fn tiny(label: u32) -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(LabelId(label));
        let c = b.add_vertex(LabelId(label));
        b.add_edge(a, c);
        b.build()
    }

    #[test]
    fn insert_and_get() {
        let r = GraphRegistry::new();
        assert!(r.is_empty());
        let (e, old) = r.insert("g", tiny(0));
        assert!(old.is_none());
        assert_eq!(r.len(), 1);
        let got = r.get("g").unwrap();
        assert_eq!(got.epoch, e.epoch);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn reload_bumps_epoch_and_reports_displaced() {
        let r = GraphRegistry::new();
        let (e1, _) = r.insert("g", tiny(0));
        let (e2, old) = r.insert("g", tiny(1));
        assert!(e2.epoch > e1.epoch, "epochs must be monotone");
        assert_eq!(old, Some(e1.epoch));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("g").unwrap().epoch, e2.epoch);
    }

    #[test]
    fn inflight_arc_survives_replacement() {
        let r = GraphRegistry::new();
        r.insert("g", tiny(0));
        let held = r.get("g").unwrap();
        r.insert("g", tiny(1));
        // The old snapshot is still alive and readable.
        assert_eq!(held.graph.num_vertices(), 2);
    }
}
