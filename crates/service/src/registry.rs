//! The graph registry: named, reference-counted data graphs with a
//! streaming-mutation overlay.
//!
//! `LOAD` replaces a name atomically — in-flight `MATCH` requests keep
//! their `Arc<Graph>` snapshot and finish against the old graph while new
//! requests see the replacement. Every load stamps the entry with a
//! globally unique, monotonically increasing *epoch*; the index cache keys
//! on it, so stale indexes built against a replaced graph can never be
//! served (and are swept eagerly on replacement).
//!
//! ## Streaming mutations
//!
//! `ADDEDGE` / `DELEDGE` / `BATCH` mutate a loaded graph *between* epochs:
//! each applied batch bumps the entry's **sub-epoch** and publishes a fresh
//! immutable snapshot (`base` CSR + [`DeltaOverlay`] committed into a new
//! CSR). Readers always see a consistent `(snapshot, sub_epoch)` pair;
//! mutations never touch a snapshot a reader already holds.
//!
//! The overlay is compacted (becomes the new `base`, with an exact
//! label-pair index rebuild) once its pending net mutations reach the
//! configured threshold; between compactions the label-pair admission index
//! is *maintained* — endpoint maxima are raised on adds, deletions keep a
//! sound overestimate — so the filter never rejects a satisfiable query.
//!
//! Each applied batch is appended to a bounded **dirty log** of touched
//! endpoints. The index cache uses it to repair a stale cached index
//! forward across `(old sub-epoch, current]` instead of rebuilding; when
//! the log has been truncated past the needed range,
//! [`GraphEntry::dirty_endpoints_since`] answers `None` and the caller
//! falls back to a full rebuild.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use ceci_graph::{DeltaOverlay, Graph, VertexId};
use ceci_query::QueryPlan;
use ceci_stream::StreamIndex;
use std::collections::HashMap;

use crate::event_loop::SharedWriter;

/// Global epoch source: unique across all registries in the process, which
/// keeps cache keys unambiguous even under registry replacement in tests.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One applied mutation batch in the dirty log.
#[derive(Clone, Debug)]
pub struct DirtyRecord {
    /// The sub-epoch this batch produced (first applied batch = 1).
    pub sub_epoch: u64,
    /// Distinct endpoints of every applied edge mutation in the batch.
    pub endpoints: Vec<VertexId>,
    /// Net edges added by the batch.
    pub added: usize,
    /// Net edges deleted by the batch.
    pub deleted: usize,
}

/// Mutable streaming state of one loaded graph, guarded by the entry lock.
#[derive(Debug)]
struct StreamState {
    /// Last compacted CSR (exact label-pair index).
    base: Arc<Graph>,
    /// Net mutations since `base`.
    overlay: DeltaOverlay,
    /// Current immutable snapshot (`base` ⊕ `overlay`), shared with readers.
    current: Arc<Graph>,
    /// Applied-batch counter; 0 right after `LOAD`.
    sub_epoch: u64,
    /// Bounded log of applied batches, oldest first.
    dirty_log: VecDeque<DirtyRecord>,
}

/// Outcome of one applied (or empty) mutation batch.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Sub-epoch after the batch (unchanged when nothing applied).
    pub sub_epoch: u64,
    /// Net edges added (mutations already present were dropped).
    pub added: Vec<(VertexId, VertexId)>,
    /// Net edges deleted (mutations of absent edges were dropped).
    pub deleted: Vec<(VertexId, VertexId)>,
    /// Distinct touched endpoints of the applied mutations.
    pub endpoints: Vec<VertexId>,
    /// Whether this batch triggered an overlay compaction.
    pub compacted: bool,
    /// Net overlay mutations still pending after the batch.
    pub pending: usize,
    /// Snapshot *before* the batch (for delta enumeration).
    pub old_graph: Arc<Graph>,
    /// Snapshot *after* the batch (`== old_graph` when nothing applied).
    pub new_graph: Arc<Graph>,
}

impl BatchOutcome {
    /// Total mutations the batch actually applied.
    pub fn applied(&self) -> usize {
        self.added.len() + self.deleted.len()
    }
}

/// One loaded graph plus its identity metadata and streaming state.
#[derive(Debug)]
pub struct GraphEntry {
    /// Unique load stamp; bumped on every (re)load of the name.
    pub epoch: u64,
    stream: RwLock<StreamState>,
}

impl GraphEntry {
    /// The current immutable snapshot.
    pub fn graph(&self) -> Arc<Graph> {
        Arc::clone(&self.stream.read().expect("stream lock poisoned").current)
    }

    /// The current mutation sub-epoch (0 right after `LOAD`).
    pub fn sub_epoch(&self) -> u64 {
        self.stream.read().expect("stream lock poisoned").sub_epoch
    }

    /// A consistent `(snapshot, sub_epoch)` pair under one lock
    /// acquisition — the pair every request must key its caches on.
    pub fn snapshot(&self) -> (Arc<Graph>, u64) {
        let st = self.stream.read().expect("stream lock poisoned");
        (Arc::clone(&st.current), st.sub_epoch)
    }

    /// Net overlay mutations pending compaction.
    pub fn pending(&self) -> usize {
        self.stream
            .read()
            .expect("stream lock poisoned")
            .overlay
            .pending()
    }

    /// Distinct endpoints touched by every batch in
    /// `(from_sub_epoch, current]`, or `None` when the dirty log no longer
    /// covers that range (repair must fall back to a rebuild). An up-to-date
    /// caller gets `Some(empty)`.
    pub fn dirty_endpoints_since(&self, from_sub_epoch: u64) -> Option<Vec<VertexId>> {
        let st = self.stream.read().expect("stream lock poisoned");
        if from_sub_epoch >= st.sub_epoch {
            return Some(Vec::new());
        }
        // The log must contain every batch with sub_epoch > from_sub_epoch;
        // its records are contiguous, so checking the oldest suffices.
        match st.dirty_log.front() {
            Some(first) if first.sub_epoch <= from_sub_epoch + 1 => {
                let mut endpoints: Vec<VertexId> = st
                    .dirty_log
                    .iter()
                    .filter(|r| r.sub_epoch > from_sub_epoch)
                    .flat_map(|r| r.endpoints.iter().copied())
                    .collect();
                endpoints.sort_unstable();
                endpoints.dedup();
                Some(endpoints)
            }
            _ => None,
        }
    }

    /// Applies one mutation batch atomically: edge adds/deletes go through
    /// the overlay (net semantics — re-adding a pending delete cancels it),
    /// an applied batch publishes a fresh snapshot, bumps the sub-epoch,
    /// maintains the label-pair admission index, logs the dirty endpoints
    /// (log bounded by `dirty_log_cap`), and compacts the overlay into a new
    /// base once `compact_threshold` net mutations are pending.
    ///
    /// Returns `Err` when any endpoint is out of range for the graph; no
    /// mutation is applied in that case.
    pub fn apply_batch(
        &self,
        adds: &[(VertexId, VertexId)],
        dels: &[(VertexId, VertexId)],
        compact_threshold: usize,
        dirty_log_cap: usize,
    ) -> Result<BatchOutcome, String> {
        let mut st = self.stream.write().expect("stream lock poisoned");
        let n = st.current.num_vertices();
        if let Some(&(a, b)) = adds
            .iter()
            .chain(dels.iter())
            .find(|&&(a, b)| a.index() >= n || b.index() >= n)
        {
            return Err(format!(
                "edge ({}, {}) out of range for a graph of {n} vertices",
                a.index(),
                b.index()
            ));
        }
        let old_graph = Arc::clone(&st.current);
        let mut applied_adds = Vec::new();
        let mut applied_dels = Vec::new();
        let mut endpoints: Vec<VertexId> = Vec::new();
        {
            let st = &mut *st;
            for &(a, b) in adds {
                if st.overlay.add_edge(&st.base, a, b) {
                    applied_adds.push((a, b));
                    endpoints.extend([a, b]);
                }
            }
            for &(a, b) in dels {
                if st.overlay.delete_edge(&st.base, a, b) {
                    applied_dels.push((a, b));
                    endpoints.extend([a, b]);
                }
            }
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        if applied_adds.is_empty() && applied_dels.is_empty() {
            return Ok(BatchOutcome {
                sub_epoch: st.sub_epoch,
                added: applied_adds,
                deleted: applied_dels,
                endpoints,
                compacted: false,
                pending: st.overlay.pending(),
                new_graph: Arc::clone(&old_graph),
                old_graph,
            });
        }
        let mut fresh = st.overlay.commit(&st.base);
        let compacted = st.overlay.pending() >= compact_threshold.max(1);
        if compacted {
            // Exact rebuild at compaction: the fresh CSR has no label-pair
            // index yet, so this computes it from scratch.
            fresh.build_label_pair_index();
        } else if let Some(lpi) = old_graph.label_pair_index() {
            // Maintained between compactions: raise the endpoint maxima on
            // the new adjacency. Deletions keep stale maxima — a sound
            // overestimate for the admission filter.
            let mut lpi = lpi.clone();
            for &v in &endpoints {
                lpi.absorb_vertex(&fresh, v);
            }
            fresh.set_label_pair_index(lpi);
        }
        let fresh = Arc::new(fresh);
        st.current = Arc::clone(&fresh);
        if compacted {
            st.base = Arc::clone(&fresh);
            st.overlay.clear();
        }
        st.sub_epoch += 1;
        let sub_epoch = st.sub_epoch;
        st.dirty_log.push_back(DirtyRecord {
            sub_epoch,
            endpoints: endpoints.clone(),
            added: applied_adds.len(),
            deleted: applied_dels.len(),
        });
        while st.dirty_log.len() > dirty_log_cap.max(1) {
            st.dirty_log.pop_front();
        }
        Ok(BatchOutcome {
            sub_epoch: st.sub_epoch,
            added: applied_adds,
            deleted: applied_dels,
            endpoints,
            compacted,
            pending: st.overlay.pending(),
            old_graph,
            new_graph: fresh,
        })
    }
}

/// A concurrent name → graph map with replace-on-load semantics.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Arc<GraphEntry>>>,
}

impl GraphRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) `name`, returning the new entry and, when a
    /// graph was replaced, the epoch of the entry that was displaced (so the
    /// caller can evict its cached indexes).
    pub fn insert(&self, name: &str, graph: Graph) -> (Arc<GraphEntry>, Option<u64>) {
        let graph = Arc::new(graph);
        let entry = Arc::new(GraphEntry {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            stream: RwLock::new(StreamState {
                base: Arc::clone(&graph),
                overlay: DeltaOverlay::new(),
                current: graph,
                sub_epoch: 0,
                dirty_log: VecDeque::new(),
            }),
        });
        let old = self
            .graphs
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), Arc::clone(&entry));
        (entry, old.map(|e| e.epoch))
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("registry lock poisoned").len()
    }

    /// True when no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One registered continuous query: its live (maintainable) index plus the
/// running embedding total and the connection to notify per batch.
pub(crate) struct ContinuousQuery {
    /// Registry name of the graph the query watches.
    pub(crate) graph: String,
    /// Load epoch the registration is pinned to; a re-`LOAD` drops it.
    pub(crate) epoch: u64,
    /// Mutation sub-epoch the stream tables currently reflect.
    pub(crate) sub_epoch: u64,
    /// The (graph-stable) matching plan the index maintains.
    pub(crate) plan: Arc<QueryPlan>,
    /// Maintainable candidate tables, patched in place per batch.
    pub(crate) stream: StreamIndex,
    /// Running embedding total; updated by the delta identity per batch.
    pub(crate) total: u64,
    /// Where `EVENT DELTA` lines go.
    pub(crate) sink: SharedWriter,
}

/// Continuous-query registrations by handle name. The mutation notifier
/// holds the lock across apply-batch + notify so events reach every
/// registration in strict sub-epoch order; lock acquisition recovers from
/// poisoning (a panicking notifier must not take the registry down with
/// it — the map itself stays consistent).
#[derive(Default)]
pub struct ContinuousRegistry {
    inner: Mutex<HashMap<String, ContinuousQuery>>,
}

impl ContinuousRegistry {
    /// Locks the registration map, recovering from poisoning.
    pub(crate) fn lock(&self) -> MutexGuard<'_, HashMap<String, ContinuousQuery>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when `writer` is the event sink of a live registration (such
    /// a connection legitimately idles between pushed events and is exempt
    /// from the idle read timeout).
    pub(crate) fn has_sink(&self, writer: &SharedWriter) -> bool {
        self.lock().values().any(|cq| Arc::ptr_eq(&cq.sink, writer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::{vid, GraphBuilder, LabelId};

    fn tiny(label: u32) -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(LabelId(label));
        let c = b.add_vertex(LabelId(label));
        b.add_edge(a, c);
        b.build()
    }

    /// A path 0–1–2–3 with one label.
    fn path4() -> Graph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(LabelId(0))).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[2], v[3]);
        b.build()
    }

    #[test]
    fn insert_and_get() {
        let r = GraphRegistry::new();
        assert!(r.is_empty());
        let (e, old) = r.insert("g", tiny(0));
        assert!(old.is_none());
        assert_eq!(r.len(), 1);
        let got = r.get("g").unwrap();
        assert_eq!(got.epoch, e.epoch);
        assert_eq!(got.sub_epoch(), 0);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn reload_bumps_epoch_and_reports_displaced() {
        let r = GraphRegistry::new();
        let (e1, _) = r.insert("g", tiny(0));
        let (e2, old) = r.insert("g", tiny(1));
        assert!(e2.epoch > e1.epoch, "epochs must be monotone");
        assert_eq!(old, Some(e1.epoch));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("g").unwrap().epoch, e2.epoch);
    }

    #[test]
    fn inflight_arc_survives_replacement() {
        let r = GraphRegistry::new();
        r.insert("g", tiny(0));
        let held = r.get("g").unwrap();
        r.insert("g", tiny(1));
        // The old snapshot is still alive and readable.
        assert_eq!(held.graph().num_vertices(), 2);
    }

    #[test]
    fn batch_bumps_sub_epoch_and_publishes_snapshot() {
        let r = GraphRegistry::new();
        let (e, _) = r.insert("g", path4());
        let before = e.graph();
        let out = e
            .apply_batch(&[(vid(0), vid(3))], &[], 1_000_000, 8)
            .unwrap();
        assert_eq!(out.sub_epoch, 1);
        assert_eq!(out.added.len(), 1);
        assert!(out.deleted.is_empty());
        assert!(!out.compacted);
        assert_eq!(e.sub_epoch(), 1);
        // Old snapshot untouched; new snapshot has the edge.
        assert!(!before.has_edge(vid(0), vid(3)));
        assert!(e.graph().has_edge(vid(0), vid(3)));
        assert_eq!(e.graph().num_edges(), 4);
    }

    #[test]
    fn noop_batch_does_not_bump() {
        let r = GraphRegistry::new();
        let (e, _) = r.insert("g", path4());
        // Adding an existing edge and deleting a missing one: both no-ops.
        let out = e
            .apply_batch(&[(vid(0), vid(1))], &[(vid(0), vid(3))], 1_000_000, 8)
            .unwrap();
        assert_eq!(out.applied(), 0);
        assert_eq!(out.sub_epoch, 0);
        assert_eq!(e.sub_epoch(), 0);
    }

    #[test]
    fn out_of_range_rejected_without_effect() {
        let r = GraphRegistry::new();
        let (e, _) = r.insert("g", path4());
        assert!(e
            .apply_batch(&[(vid(0), vid(99))], &[], 1_000_000, 8)
            .is_err());
        assert_eq!(e.sub_epoch(), 0);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn compaction_clears_overlay_and_rebuilds_exact() {
        let r = GraphRegistry::new();
        let (e, _) = r.insert("g", path4());
        let out = e.apply_batch(&[(vid(0), vid(2))], &[], 1, 8).unwrap();
        assert!(out.compacted);
        assert_eq!(out.pending, 0);
        assert_eq!(e.pending(), 0);
        // The compacted snapshot carries an exact label-pair index.
        assert!(e.graph().label_pair_index().is_some());
        // Further batches build on the new base.
        let out2 = e
            .apply_batch(&[], &[(vid(0), vid(2))], 1_000_000, 8)
            .unwrap();
        assert_eq!(out2.deleted.len(), 1);
        assert!(!e.graph().has_edge(vid(0), vid(2)));
    }

    #[test]
    fn dirty_log_tracks_and_truncates() {
        let r = GraphRegistry::new();
        let (e, _) = r.insert("g", path4());
        e.apply_batch(&[(vid(0), vid(2))], &[], 1_000_000, 2)
            .unwrap();
        e.apply_batch(&[(vid(0), vid(3))], &[], 1_000_000, 2)
            .unwrap();
        // Fully covered: endpoints of batches 1..=2.
        let d = e.dirty_endpoints_since(0).unwrap();
        assert_eq!(d, vec![vid(0), vid(2), vid(3)]);
        assert_eq!(e.dirty_endpoints_since(2).unwrap(), Vec::<VertexId>::new());
        // A third batch pushes batch 1 out of the capped log.
        e.apply_batch(&[(vid(1), vid(3))], &[], 1_000_000, 2)
            .unwrap();
        assert!(e.dirty_endpoints_since(0).is_none(), "log truncated");
        assert_eq!(
            e.dirty_endpoints_since(1).unwrap(),
            vec![vid(0), vid(1), vid(3)]
        );
    }

    #[test]
    fn maintained_label_pairs_stay_sound_on_add() {
        let r = GraphRegistry::new();
        let mut g = path4();
        g.build_label_pair_index();
        let (e, _) = r.insert("g", g);
        // New edge raises vertex 1's same-label neighbor count to 3.
        e.apply_batch(&[(vid(1), vid(3))], &[], 1_000_000, 8)
            .unwrap();
        let snap = e.graph();
        let lpi = snap.label_pair_index().unwrap();
        assert!(lpi.max_count(ceci_graph::lid(0), ceci_graph::lid(0)) >= 3);
    }
}
